"""Legacy setup shim.

The offline target environment lacks the ``wheel`` package, so PEP 517
editable installs fail with ``invalid command 'bdist_wheel'``.  Keeping a
``setup.py`` (and no ``[build-system]`` table in pyproject.toml) lets
``pip install -e .`` fall back to ``setup.py develop``, which works with a
bare setuptools.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "PRIMA: privacy policy coverage and refinement for healthcare "
        "(reproduction of Bhatti & Grandison 2007)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
