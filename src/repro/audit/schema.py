"""The audit-trail schema of Section 4.2.

The paper fixes an audit entry as the 7-tuple ``{(time, t), (op, X),
(user, u), (data, d), (purpose, p), (authorized, a), (status, s)}`` where
``op`` is 0 (disallow) / 1 (allow) and ``status`` is 0 (exception-based
access) / 1 (regular access).  This module centralises those constants and
the sqlmini column layout every other audit component shares.
"""

from __future__ import annotations

from enum import IntEnum

from repro.sqlmini.schema import Column, TableSchema
from repro.sqlmini.types import SqlType


class AccessOp(IntEnum):
    """The ``op`` attribute: was the request allowed?"""

    DENY = 0
    ALLOW = 1


class AccessStatus(IntEnum):
    """The ``status`` attribute: how was the purpose recorded?

    ``REGULAR`` means the user chose a purpose from the sanctioned list;
    ``EXCEPTION`` means the purpose was manually entered — the
    break-the-glass path.
    """

    EXCEPTION = 0
    REGULAR = 1


#: Attribute names of the audit schema, in the paper's order.
AUDIT_ATTRIBUTES: tuple[str, ...] = (
    "time",
    "op",
    "user",
    "data",
    "purpose",
    "authorized",
    "status",
)

#: The attributes that form a policy rule when an entry is lifted into
#: ``P_AL`` (Section 5 analyses over exactly this subset).
RULE_ATTRIBUTES: tuple[str, ...] = ("data", "purpose", "authorized")


#: Secondary indexes for the hot audit columns: equality-heavy attributes
#: get hash indexes (miner practice lookups, HDB consent checks), ``time``
#: gets an ordered index for retention windows and range scans.
AUDIT_INDEX_SPECS: tuple[tuple[str, str], ...] = (
    ("user", "hash"),
    ("data", "hash"),
    ("purpose", "hash"),
    ("time", "ordered"),
)


def create_audit_indexes(table) -> None:
    """Create the standard audit-column indexes on ``table`` (idempotent)."""
    for column, kind in AUDIT_INDEX_SPECS:
        table.create_index(column, kind=kind)


def audit_table_schema(name: str = "audit_log") -> TableSchema:
    """Build the sqlmini schema for an audit-trail table."""
    return TableSchema(
        name,
        (
            Column("time", SqlType.INTEGER, nullable=False),
            Column("op", SqlType.INTEGER, nullable=False),
            Column("user", SqlType.TEXT, nullable=False),
            Column("data", SqlType.TEXT, nullable=False),
            Column("purpose", SqlType.TEXT, nullable=False),
            Column("authorized", SqlType.TEXT, nullable=False),
            Column("status", SqlType.INTEGER, nullable=False),
        ),
    )
