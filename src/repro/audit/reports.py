"""The compliance report — the artifact a privacy officer files.

One call assembles everything PRIMA knows about the current state of a
deployment into a plain-text report: both coverage numbers, the coverage
trend over time, the weakest roles and data categories, the gap
explanations, the exception triage, and the refinement candidates
awaiting review.  This is the "continuous, proactive process" Section 4.2
says audit logs should feed, instead of being read only "when someone
raises a red flag".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.audit.classify import ClassificationReport, classify_exceptions
from repro.audit.log import AuditLog
from repro.coverage.engine import (
    CoverageReport,
    EntryCoverageReport,
    compute_coverage,
    compute_entry_coverage,
)
from repro.coverage.gaps import GapReport, analyse_gaps
from repro.coverage.trends import (
    AttributeCoverage,
    WindowPoint,
    coverage_by_attribute,
    coverage_series,
)
from repro.errors import AuditError
from repro.mining.patterns import Pattern
from repro.policy.policy import Policy
from repro.refinement.engine import RefinementConfig, refine
from repro.vocab.vocabulary import Vocabulary


@dataclass(frozen=True)
class ComplianceReport:
    """Everything one reporting run produced."""

    policy_name: str
    log_name: str
    entries: int
    exception_rate: float
    set_coverage: CoverageReport
    entry_coverage: EntryCoverageReport
    trend: tuple[WindowPoint, ...]
    weakest_roles: tuple[AttributeCoverage, ...]
    weakest_data: tuple[AttributeCoverage, ...]
    gaps: GapReport
    triage: ClassificationReport
    candidates: tuple[Pattern, ...]

    def render(self, max_items: int = 5) -> str:
        """Render the full plain-text report."""
        lines = [
            f"PRIMA compliance report — policy {self.policy_name!r} "
            f"over log {self.log_name!r}",
            "=" * 72,
            f"audit entries            : {self.entries}",
            f"break-the-glass rate     : {self.exception_rate:.1%}",
            f"coverage (Definition 9)  : {self.set_coverage.ratio:.1%}",
            f"coverage (entry-weighted): {self.entry_coverage.ratio:.1%}",
            "",
            "coverage trend (entry-weighted per window):",
        ]
        for point in self.trend:
            bar = "#" * round(point.entry_coverage * 40)
            lines.append(
                f"  t{point.start:>6}-{point.end:<6} {point.entry_coverage:6.1%} {bar}"
            )
        lines.append("")
        lines.append("least-covered roles:")
        for item in self.weakest_roles[:max_items]:
            lines.append(
                f"  {item.value:20s} {item.entry_coverage:6.1%} "
                f"({item.matched}/{item.entries})"
            )
        lines.append("least-covered data categories:")
        for item in self.weakest_data[:max_items]:
            lines.append(
                f"  {item.value:20s} {item.entry_coverage:6.1%} "
                f"({item.matched}/{item.entries})"
            )
        lines.append("")
        lines.append(
            f"exception triage: {len(self.triage.practice)} practice, "
            f"{len(self.triage.violations)} suspected violations"
        )
        lines.append("")
        if self.candidates:
            lines.append("refinement candidates awaiting review:")
            for pattern in self.candidates[:max_items]:
                lines.append(f"  - {pattern}")
            if len(self.candidates) > max_items:
                lines.append(
                    f"  ... and {len(self.candidates) - max_items} more"
                )
        else:
            lines.append("refinement candidates awaiting review: none")
        if self.gaps.deviations:
            lines.append("")
            lines.append("sample policy deviations:")
            for deviation in self.gaps.deviations[:max_items]:
                lines.append(f"  - {deviation.describe()}")
        return "\n".join(lines)


def compliance_report(
    policy: Policy,
    log: AuditLog,
    vocabulary: Vocabulary,
    window_size: int | None = None,
    refinement: RefinementConfig | None = None,
) -> ComplianceReport:
    """Assemble the full report for ``policy`` over ``log``.

    ``window_size`` defaults to a tenth of the log's time span (at least
    one tick), giving a ten-point trend.
    """
    if len(log) == 0:
        raise AuditError("cannot report on an empty audit log")
    audit_policy = log.to_policy()
    set_report = compute_coverage(policy, audit_policy, vocabulary)
    entry_report = compute_entry_coverage(policy, iter(audit_policy), vocabulary)
    first, last = log.time_range()
    chosen_window = window_size or max(1, (last - first + 1) // 10)
    trend = coverage_series(policy, log, vocabulary, chosen_window)
    roles = coverage_by_attribute(policy, log, vocabulary, "authorized")
    data = coverage_by_attribute(policy, log, vocabulary, "data")
    gaps = analyse_gaps(set_report, policy, vocabulary)
    triage = classify_exceptions(log)
    refinement_result = refine(policy, log, vocabulary, refinement)
    return ComplianceReport(
        policy_name=policy.name,
        log_name=log.name,
        entries=len(log),
        exception_rate=log.exception_rate(),
        set_coverage=set_report,
        entry_coverage=entry_report,
        trend=trend,
        weakest_roles=roles,
        weakest_data=data,
        gaps=gaps,
        triage=triage,
        candidates=refinement_result.useful_patterns,
    )
