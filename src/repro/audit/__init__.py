"""Audit trails (Section 4.2 of the paper).

Public surface:

- :class:`~repro.audit.entry.AuditEntry` and the
  :class:`~repro.audit.schema.AccessOp` /
  :class:`~repro.audit.schema.AccessStatus` flags.
- :class:`~repro.audit.log.AuditLog` plus :func:`make_entry`.
- :func:`~repro.audit.classify.classify_exceptions` — violation vs
  informal-practice separation.
- :mod:`repro.audit.io` — CSV / JSONL persistence.
"""

from repro.audit.classify import (
    ClassificationReport,
    ClassifiedEntry,
    ClassifierConfig,
    classify_exceptions,
    validate_entry_vocabulary,
)
from repro.audit.entry import AuditEntry
from repro.audit.log import AuditLog, make_entry
from repro.audit.schema import (
    AUDIT_ATTRIBUTES,
    RULE_ATTRIBUTES,
    AccessOp,
    AccessStatus,
    audit_table_schema,
)

__all__ = [
    "AUDIT_ATTRIBUTES",
    "AccessOp",
    "AccessStatus",
    "AuditEntry",
    "AuditLog",
    "ClassificationReport",
    "ClassifiedEntry",
    "ClassifierConfig",
    "RULE_ATTRIBUTES",
    "audit_table_schema",
    "classify_exceptions",
    "make_entry",
    "validate_entry_vocabulary",
]
