"""Audit entries — one row of the Section 4.2 schema."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.audit.schema import AUDIT_ATTRIBUTES, RULE_ATTRIBUTES, AccessOp, AccessStatus
from repro.errors import AuditError
from repro.policy.rule import Rule
from repro.vocab.tree import canonical


@dataclass(frozen=True, slots=True)
class AuditEntry:
    """One audited access.

    ``time`` is a monotonically meaningful integer tick (the paper's
    ``t_j``); real deployments would use wall-clock timestamps, but the
    algorithms only ever order and window on it.

    ``truth`` is **not** part of the paper's schema: the synthetic workload
    generator stamps each exception entry with its ground truth
    (``"practice"`` or ``"violation"``) so experiment E9 can score the
    classifier.  It is excluded from rows, serialisation and rule lifting.
    """

    time: int
    op: AccessOp
    user: str
    data: str
    purpose: str
    authorized: str
    status: AccessStatus
    truth: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.time < 0:
            raise AuditError(f"audit time must be non-negative, got {self.time}")
        object.__setattr__(self, "op", AccessOp(self.op))
        object.__setattr__(self, "status", AccessStatus(self.status))
        for attribute in ("user", "data", "purpose", "authorized"):
            value = getattr(self, attribute)
            if not isinstance(value, str) or not value.strip():
                raise AuditError(f"audit {attribute} must be a non-empty string")
            object.__setattr__(self, attribute, canonical(value))

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    @property
    def is_exception(self) -> bool:
        """True for break-the-glass accesses (``status == 0``)."""
        return self.status is AccessStatus.EXCEPTION

    @property
    def is_allowed(self) -> bool:
        return self.op is AccessOp.ALLOW

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_rule(self, attributes: tuple[str, ...] = RULE_ATTRIBUTES) -> Rule:
        """Lift this entry into a ground policy rule over ``attributes``.

        Section 3's ``P_AL`` treats each entry as a rule over the
        ``(data, purpose, authorized)`` subset by default.
        """
        pairs = []
        for attribute in attributes:
            if attribute not in AUDIT_ATTRIBUTES:
                raise AuditError(f"unknown audit attribute {attribute!r}")
            pairs.append((attribute, str(getattr(self, attribute))))
        return Rule.from_pairs(pairs)

    def as_row(self) -> tuple:
        """Render as a sqlmini row matching :func:`audit_table_schema`."""
        return (
            self.time,
            int(self.op),
            self.user,
            self.data,
            self.purpose,
            self.authorized,
            int(self.status),
        )

    @classmethod
    def from_row(cls, row: tuple) -> "AuditEntry":
        """Rebuild from a sqlmini row (truth is not stored in rows)."""
        if len(row) != len(AUDIT_ATTRIBUTES):
            raise AuditError(
                f"audit rows have {len(AUDIT_ATTRIBUTES)} values, got {len(row)}"
            )
        time, op, user, data, purpose, authorized, status = row
        return cls(
            time=time,
            op=AccessOp(op),
            user=user,
            data=data,
            purpose=purpose,
            authorized=authorized,
            status=AccessStatus(status),
        )

    def to_dict(self) -> dict:
        """JSON-ready mapping (schema attributes only)."""
        payload = {attr: getattr(self, attr) for attr in AUDIT_ATTRIBUTES}
        payload["op"] = int(self.op)
        payload["status"] = int(self.status)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "AuditEntry":
        try:
            return cls(
                time=int(payload["time"]),
                op=AccessOp(int(payload["op"])),
                user=payload["user"],
                data=payload["data"],
                purpose=payload["purpose"],
                authorized=payload["authorized"],
                status=AccessStatus(int(payload["status"])),
                truth=str(payload.get("truth", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise AuditError(f"malformed audit entry payload: {exc}") from exc

    def with_truth(self, truth: str) -> "AuditEntry":
        """Copy of this entry with the evaluation-only truth label set."""
        return replace(self, truth=truth)
