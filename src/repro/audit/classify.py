"""Separating violations from informal practice (Section 4.2/4.3).

The paper notes that audit logs mix "attempts to break into the system"
with "undocumented, informal clinical practice", and that the refinement
process must differentiate them.  Algorithm 3 as printed only checks the
status flag; the paper concedes that anything better "may require more
sophisticated algorithms".  This module implements the obvious next step:
a transparent, threshold-based scorer over the signals available in the
Section 4.2 schema.

Signals (all computed from the log itself — no external ground truth):

``support``
    How many times the entry's ``(data, purpose, authorized)`` combination
    occurs among exceptions.  Recurring combinations look like practice;
    one-offs look suspicious.
``distinct users``
    How many different users produced the combination.  The paper's own
    default condition (``COUNT(DISTINCT user) > 1``) encodes the same
    intuition: one individual repeating an unusual access is a red flag,
    several independent staff members doing it is workflow.
``regular echo``
    Whether the same combination also occurs as *regular* access.  If the
    sanctioned path is sometimes used for the combination, the exception
    entries are almost certainly informal practice, not an attack.

Entries are scored against :class:`ClassifierConfig` thresholds; an entry
is classed as suspected violation when it fails the support and
distinct-user tests and has no regular echo.  Denied requests (op = 0) are
always violations by definition.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

from repro.audit.entry import AuditEntry
from repro.audit.log import AuditLog
from repro.audit.schema import RULE_ATTRIBUTES
from repro.errors import AuditError
from repro.vocab.vocabulary import Vocabulary


def validate_entry_vocabulary(
    entry: AuditEntry, index: int, vocabulary: Vocabulary
) -> None:
    """Reject entries whose role or purpose the vocabulary never defined.

    A typo'd role or purpose in the trail would otherwise sail through
    classification as a permanently-suspicious one-off; fail loudly
    instead, naming the offending entry so the operator can find it.
    Attributes without a vocabulary tree are not checked.
    """
    for attribute, value in (
        ("authorized", entry.authorized),
        ("purpose", entry.purpose),
    ):
        tree = vocabulary.tree_for(attribute)
        if tree is not None and value not in tree:
            raise AuditError(
                f"audit entry #{index} (time={entry.time}, "
                f"user={entry.user!r}) carries unknown {attribute} value "
                f"{value!r}: not a node of the {attribute!r} vocabulary tree"
            )


@dataclass(frozen=True, slots=True)
class ClassifierConfig:
    """Thresholds for the violation/practice separation.

    ``min_support`` and ``min_distinct_users`` mirror the ``f`` and ``c``
    parameters of Algorithm 4: combinations at or above both look like
    practice.  ``trust_regular_echo`` short-circuits to practice when the
    combination also occurs through the sanctioned path.
    """

    min_support: int = 3
    min_distinct_users: int = 2
    trust_regular_echo: bool = True


@dataclass(frozen=True, slots=True)
class ClassifiedEntry:
    """One exception entry with its verdict and evidence."""

    entry: AuditEntry
    verdict: str  # "practice" | "violation"
    support: int
    distinct_users: int
    regular_echo: bool


@dataclass(frozen=True, slots=True)
class ClassificationReport:
    """The classifier output plus accuracy when ground truth exists."""

    classified: tuple[ClassifiedEntry, ...]

    @property
    def practice(self) -> tuple[AuditEntry, ...]:
        return tuple(c.entry for c in self.classified if c.verdict == "practice")

    @property
    def violations(self) -> tuple[AuditEntry, ...]:
        return tuple(c.entry for c in self.classified if c.verdict == "violation")

    def confusion(self) -> dict[str, int]:
        """tp/fp/tn/fn against the entries' ``truth`` labels.

        Positive class = violation.  Entries without a truth label are
        skipped, so logs mixing labelled and unlabelled data still score.
        """
        counts = {"tp": 0, "fp": 0, "tn": 0, "fn": 0}
        for item in self.classified:
            truth = item.entry.truth
            if truth not in ("violation", "practice"):
                continue
            if item.verdict == "violation":
                counts["tp" if truth == "violation" else "fp"] += 1
            else:
                counts["fn" if truth == "violation" else "tn"] += 1
        return counts

    def precision(self) -> float:
        """Flagged-violation precision against ground truth."""
        c = self.confusion()
        denominator = c["tp"] + c["fp"]
        return c["tp"] / denominator if denominator else 0.0

    def recall(self) -> float:
        """Labelled-violation recall against ground truth."""
        c = self.confusion()
        denominator = c["tp"] + c["fn"]
        return c["tp"] / denominator if denominator else 0.0


def classify_exceptions(
    log: AuditLog,
    config: ClassifierConfig | None = None,
    vocabulary: Vocabulary | None = None,
) -> ClassificationReport:
    """Split the log's exception entries into practice and violations.

    With a ``vocabulary``, every entry's role and purpose is first checked
    against the vocabulary trees; an unknown value raises
    :class:`~repro.errors.AuditError` naming the offending entry, instead
    of silently classifying garbage.
    """
    cfg = config or ClassifierConfig()
    if vocabulary is not None:
        for index, entry in enumerate(log):
            validate_entry_vocabulary(entry, index, vocabulary)
    exceptions = log.exceptions()
    support: Counter = Counter()
    users: defaultdict = defaultdict(set)
    for entry in exceptions:
        rule = entry.to_rule(RULE_ATTRIBUTES)
        support[rule] += 1
        users[rule].add(entry.user)
    regular_rules = {
        entry.to_rule(RULE_ATTRIBUTES) for entry in log.regular()
    }

    classified: list[ClassifiedEntry] = []
    for entry in exceptions:
        rule = entry.to_rule(RULE_ATTRIBUTES)
        entry_support = support[rule]
        entry_users = len(users[rule])
        echo = rule in regular_rules
        looks_like_practice = (
            entry_support >= cfg.min_support
            and entry_users >= cfg.min_distinct_users
        ) or (cfg.trust_regular_echo and echo)
        classified.append(
            ClassifiedEntry(
                entry=entry,
                verdict="practice" if looks_like_practice else "violation",
                support=entry_support,
                distinct_users=entry_users,
                regular_echo=echo,
            )
        )
    for entry in log.denials():
        classified.append(
            ClassifiedEntry(
                entry=entry,
                verdict="violation",
                support=0,
                distinct_users=0,
                regular_echo=False,
            )
        )
    return ClassificationReport(classified=tuple(classified))
