"""CSV and JSONL persistence for audit logs.

CSV uses the paper's column order (Table 1) and integer encodings for
``op`` and ``status``.  JSONL writes one entry object per line; the
evaluation-only ``truth`` label survives the JSONL round trip but is
deliberately dropped by CSV (which models the production schema).

Both loaders report malformed input as :class:`~repro.errors.AuditError`
carrying the file path and line number — truncated rows, wrong arity and
non-integer ``time``/``op``/``status`` values never surface as bare
``ValueError``s.  (For crash-safe binary persistence see
:mod:`repro.store`.)
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.audit.entry import AuditEntry
from repro.audit.log import AuditLog
from repro.audit.schema import AUDIT_ATTRIBUTES
from repro.errors import AuditError


def save_csv(log: AuditLog, path: str | Path) -> Path:
    """Write ``log`` as CSV with a header row; returns the path."""
    target = Path(path)
    with target.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(AUDIT_ATTRIBUTES)
        for entry in log:
            writer.writerow(entry.as_row())
    return target


def load_csv(path: str | Path, name: str | None = None) -> AuditLog:
    """Read a CSV written by :func:`save_csv`."""
    source = Path(path)
    log = AuditLog(name=name or source.stem)
    with source.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or tuple(h.strip().lower() for h in header) != AUDIT_ATTRIBUTES:
            raise AuditError(
                f"{source} does not look like an audit CSV "
                f"(expected header {AUDIT_ATTRIBUTES})"
            )
        for row in reader:
            line_number = reader.line_num
            if not row:
                continue
            if len(row) != len(AUDIT_ATTRIBUTES):
                raise AuditError(
                    f"{source}:{line_number}: expected {len(AUDIT_ATTRIBUTES)} "
                    f"fields ({', '.join(AUDIT_ATTRIBUTES)}), got {len(row)}"
                )
            time, op, user, data, purpose, authorized, status = row
            try:
                entry = AuditEntry.from_row(
                    (int(time), int(op), user, data, purpose, authorized, int(status))
                )
            except ValueError as exc:
                raise AuditError(
                    f"{source}:{line_number}: malformed audit row: {exc}"
                ) from exc
            except AuditError as exc:
                raise AuditError(f"{source}:{line_number}: {exc}") from exc
            log.append(entry)
    return log


def save_jsonl(log: AuditLog, path: str | Path, include_truth: bool = True) -> Path:
    """Write ``log`` as JSON-lines; returns the path."""
    target = Path(path)
    with target.open("w", encoding="utf-8") as handle:
        for entry in log:
            payload = entry.to_dict()
            if include_truth and entry.truth:
                payload["truth"] = entry.truth
            handle.write(json.dumps(payload) + "\n")
    return target


def load_jsonl(path: str | Path, name: str | None = None) -> AuditLog:
    """Read a JSONL file written by :func:`save_jsonl`."""
    source = Path(path)
    log = AuditLog(name=name or source.stem)
    with source.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise AuditError(
                    f"{source}:{line_number}: invalid JSON: {exc}"
                ) from exc
            log.append(AuditEntry.from_dict(payload))
    return log
