"""Audit logs: ordered collections of audit entries.

An :class:`AuditLog` is the concrete ``P_AL`` source.  It supports the
conversions every other layer needs: lifting into a
:class:`~repro.policy.policy.Policy` (Section 3's ``P_AL``), materialising
as a sqlmini table (Algorithm 5 runs SQL over it), and slicing by time,
status or predicate (training windows, Filter, retention).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable, Iterable, Iterator

from repro.audit.entry import AuditEntry
from repro.audit.schema import (
    RULE_ATTRIBUTES,
    AccessOp,
    AccessStatus,
    audit_table_schema,
    create_audit_indexes,
)
from repro.errors import AuditError
from repro.policy.policy import Policy, PolicySource
from repro.sqlmini.database import Database
from repro.sqlmini.table import Table


class AuditLog:
    """An append-only, time-ordered audit trail."""

    def __init__(self, entries: Iterable[AuditEntry] = (), name: str = "audit_log") -> None:
        self.name = name
        self._entries: list[AuditEntry] = []
        self._last_time = -1
        for entry in entries:
            self.append(entry)

    # ------------------------------------------------------------------
    # collection protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[AuditEntry]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> AuditEntry:
        return self._entries[index]

    @property
    def entries(self) -> tuple[AuditEntry, ...]:
        return tuple(self._entries)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def append(self, entry: AuditEntry) -> None:
        """Append one entry; times must be non-decreasing."""
        if not isinstance(entry, AuditEntry):
            raise AuditError(f"audit logs hold AuditEntry objects, got {entry!r}")
        if entry.time < self._last_time:
            raise AuditError(
                f"audit entries must be time-ordered: {entry.time} after {self._last_time}"
            )
        self._last_time = entry.time
        self._entries.append(entry)

    def extend(self, entries: Iterable[AuditEntry]) -> None:
        """Append every entry in order (same time rules as append).

        The batch is validated *before* any entry lands, so ``extend`` is
        all-or-nothing: a mid-iterable entry that is not an
        :class:`AuditEntry` or violates time ordering raises
        :class:`~repro.errors.AuditError` and leaves the log unchanged.
        """
        batch = list(entries)
        last_time = self._last_time
        for entry in batch:
            if not isinstance(entry, AuditEntry):
                raise AuditError(
                    f"audit logs hold AuditEntry objects, got {entry!r}"
                )
            if entry.time < last_time:
                raise AuditError(
                    f"audit entries must be time-ordered: {entry.time} after "
                    f"{last_time}"
                )
            last_time = entry.time
        self._entries.extend(batch)
        self._last_time = last_time

    def sync(self) -> None:
        """Flush to stable storage — a no-op for the in-memory log.

        Present so sinks are interchangeable: the decision service calls
        ``log.sync()`` on drain regardless of whether the trail is this
        in-memory log or a :class:`~repro.store.durable.DurableAuditLog`.
        """

    # ------------------------------------------------------------------
    # slicing
    # ------------------------------------------------------------------
    def window(self, start: int, end: int) -> "AuditLog":
        """Entries with ``start <= time < end`` (a training window)."""
        return AuditLog(
            (e for e in self._entries if start <= e.time < end),
            name=f"{self.name}[{start}:{end}]",
        )

    def where(self, predicate: Callable[[AuditEntry], bool]) -> "AuditLog":
        """Entries satisfying ``predicate`` (order preserved)."""
        return AuditLog(
            (e for e in self._entries if predicate(e)), name=self.name
        )

    def exceptions(self) -> "AuditLog":
        """The break-the-glass subset (allowed, status = exception)."""
        return self.where(lambda e: e.is_exception and e.is_allowed)

    def regular(self) -> "AuditLog":
        """The sanctioned subset (allowed, status = regular)."""
        return self.where(lambda e: not e.is_exception and e.is_allowed)

    def denials(self) -> "AuditLog":
        """Requests the enforcement layer refused (op = deny)."""
        return self.where(lambda e: not e.is_allowed)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def distinct_users(self) -> tuple[str, ...]:
        """Sorted distinct user ids appearing in the log."""
        return tuple(sorted({entry.user for entry in self._entries}))

    def time_range(self) -> tuple[int, int]:
        """(first, last) entry times; raises on an empty log."""
        if not self._entries:
            raise AuditError(f"audit log {self.name!r} is empty")
        return self._entries[0].time, self._entries[-1].time

    def exception_rate(self) -> float:
        """Fraction of allowed accesses that went through the exception
        path — the paper's headline symptom."""
        allowed = [e for e in self._entries if e.is_allowed]
        if not allowed:
            raise AuditError(f"audit log {self.name!r} has no allowed accesses")
        return sum(1 for e in allowed if e.is_exception) / len(allowed)

    def rule_histogram(
        self, attributes: tuple[str, ...] = RULE_ATTRIBUTES
    ) -> Counter:
        """Count entries per lifted ground rule."""
        return Counter(entry.to_rule(attributes) for entry in self._entries)

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_policy(
        self, attributes: tuple[str, ...] = RULE_ATTRIBUTES
    ) -> Policy:
        """Lift the log into the paper's ``P_AL`` (duplicates preserved)."""
        return Policy(
            (entry.to_rule(attributes) for entry in self._entries),
            source=PolicySource.AUDIT_LOG,
            name=f"P_AL({self.name})",
        )

    def to_table(
        self,
        database: Database,
        table_name: str | None = None,
        index: bool = False,
    ) -> Table:
        """Materialise the log as a sqlmini table and return it.

        ``index=True`` additionally creates the standard audit-column
        indexes (bulk-built after the insert) so repeated point/range
        queries against the table use seeks instead of scans.
        """
        schema = audit_table_schema(table_name or self.name)
        table = database.create_table(schema)
        for entry in self._entries:
            table.insert(entry.as_row())
        if index:
            create_audit_indexes(table)
        return table

    def __repr__(self) -> str:
        return f"AuditLog(name={self.name!r}, entries={len(self._entries)})"


def make_entry(
    time: int,
    user: str,
    data: str,
    purpose: str,
    authorized: str,
    status: AccessStatus | int = AccessStatus.REGULAR,
    op: AccessOp | int = AccessOp.ALLOW,
    truth: str = "",
) -> AuditEntry:
    """Keyword-friendly :class:`AuditEntry` constructor used all over the
    tests and examples."""
    return AuditEntry(
        time=time,
        op=AccessOp(op),
        user=user,
        data=data,
        purpose=purpose,
        authorized=authorized,
        status=AccessStatus(status),
        truth=truth,
    )
