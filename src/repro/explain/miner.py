"""Learning template weights from the trail — no labels required.

A fired template is only evidence of legitimacy if legitimate traffic
fires it more often than suspect traffic does.  We have no labels at
mining time, but the 7-attribute schema gives a free proxy: *regular*
accesses went through the sanctioned path (legitimate by construction),
while *exception* accesses are the mixed class under investigation.  For
each template ``t`` the miner estimates, with Laplace smoothing ``α``::

    p_t = P(t fires | regular)    = (fires_regular + α) / (R + 2α)
    q_t = P(t fires | exception)  = (fires_exception + α) / (E + 2α)

and scores an entry with the Naive-Bayes log-likelihood ratio

    score = Σ_t  fired ? log(p_t / q_t) : log((1-p_t) / (1-q_t))

squashed to a ``strength`` in (0, 1) by the logistic function.  A
template that fires equally on both classes (e.g. ``on_shift`` when
everyone works their shift) gets weights near zero and self-neutralises;
a template that separates (treatment relations) earns a large positive
fired-weight.  Crucially the ``truth`` labels the corpus persists are
**never consulted** — they exist only so experiments can grade the
result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro import obs
from repro.audit.entry import AuditEntry
from repro.audit.log import AuditLog
from repro.errors import ExplainError
from repro.explain.templates import (
    DEFAULT_TEMPLATES,
    ExplanationContext,
    ExplanationTemplate,
)


@dataclass(frozen=True, slots=True)
class TemplateWeight:
    """Learned evidence weights for one template."""

    name: str
    fired_weight: float
    absent_weight: float
    regular_rate: float
    exception_rate: float

    def to_dict(self) -> dict:
        """JSON-ready encoding."""
        return {
            "name": self.name,
            "fired_weight": self.fired_weight,
            "absent_weight": self.absent_weight,
            "regular_rate": self.regular_rate,
            "exception_rate": self.exception_rate,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TemplateWeight":
        """Rebuild a weight from a :meth:`to_dict` encoding."""
        try:
            return cls(
                name=payload["name"],
                fired_weight=float(payload["fired_weight"]),
                absent_weight=float(payload["absent_weight"]),
                regular_rate=float(payload["regular_rate"]),
                exception_rate=float(payload["exception_rate"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ExplainError(f"malformed template weight payload: {exc}") from exc


class TemplateWeights:
    """The learned weight table plus the scoring rule."""

    def __init__(
        self,
        weights: tuple[TemplateWeight, ...],
        templates: tuple[ExplanationTemplate, ...] = DEFAULT_TEMPLATES,
    ) -> None:
        by_name = {template.name: template for template in templates}
        for weight in weights:
            if weight.name not in by_name:
                raise ExplainError(
                    f"weight for unknown template {weight.name!r}"
                )
        self.weights = weights
        self._templates = tuple(by_name[weight.name] for weight in weights)

    def score(self, entry: AuditEntry, context: ExplanationContext) -> float:
        """Naive-Bayes log-likelihood ratio (regular vs exception)."""
        total = 0.0
        for template, weight in zip(self._templates, self.weights):
            if template.fires(entry, context):
                total += weight.fired_weight
            else:
                total += weight.absent_weight
        return total

    def strength(self, entry: AuditEntry, context: ExplanationContext) -> float:
        """The score squashed to (0, 1) — higher means more explainable."""
        return 1.0 / (1.0 + math.exp(-self.score(entry, context)))

    def fired_names(
        self, entry: AuditEntry, context: ExplanationContext
    ) -> tuple[str, ...]:
        """Names of the templates that fire for ``entry``."""
        return tuple(
            template.name
            for template in self._templates
            if template.fires(entry, context)
        )

    def to_dict(self) -> dict:
        """JSON-ready encoding of the weight table."""
        return {
            "format": 1,
            "weights": [weight.to_dict() for weight in self.weights],
        }

    @classmethod
    def from_dict(
        cls,
        payload: dict,
        templates: tuple[ExplanationTemplate, ...] = DEFAULT_TEMPLATES,
    ) -> "TemplateWeights":
        """Rebuild a weight table from a :meth:`to_dict` encoding."""
        try:
            weights = tuple(
                TemplateWeight.from_dict(item) for item in payload["weights"]
            )
        except (KeyError, TypeError) as exc:
            raise ExplainError(f"malformed template weights payload: {exc}") from exc
        return cls(weights, templates=templates)


def mine_template_weights(
    log: AuditLog,
    context: ExplanationContext,
    templates: tuple[ExplanationTemplate, ...] = DEFAULT_TEMPLATES,
    smoothing: float = 0.5,
) -> TemplateWeights:
    """Learn :class:`TemplateWeights` from ``log`` (labels never read)."""
    if smoothing <= 0:
        raise ExplainError(f"smoothing must be positive, got {smoothing}")
    if not templates:
        raise ExplainError("at least one explanation template is required")
    reg = obs.get_registry()
    with reg.span("repro_explain_mine_seconds"):
        regular = log.regular()
        exceptions = log.exceptions()
        if not len(regular) or not len(exceptions):
            raise ExplainError(
                "weight mining needs both regular and exception traffic "
                f"(got {len(regular)} regular, {len(exceptions)} exceptions)"
            )
        weights: list[TemplateWeight] = []
        for template in templates:
            fires_regular = sum(
                1 for entry in regular if template.fires(entry, context)
            )
            fires_exception = sum(
                1 for entry in exceptions if template.fires(entry, context)
            )
            p = (fires_regular + smoothing) / (len(regular) + 2 * smoothing)
            q = (fires_exception + smoothing) / (len(exceptions) + 2 * smoothing)
            weights.append(
                TemplateWeight(
                    name=template.name,
                    fired_weight=math.log(p / q),
                    absent_weight=math.log((1.0 - p) / (1.0 - q)),
                    regular_rate=fires_regular / len(regular),
                    exception_rate=fires_exception / len(exceptions),
                )
            )
    reg.counter("repro_explain_weights_mined_total").inc()
    return TemplateWeights(tuple(weights), templates=templates)
