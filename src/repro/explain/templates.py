"""Explanation templates over the audit trail ⋈ clinical state.

Fabbri & LeFevre's insight: most legitimate accesses can be *explained*
by a short join path through database state ("the user treated this
patient").  An :class:`ExplanationTemplate` is one such parameterised
join, evaluated per audit entry against a
:class:`~repro.explain.relations.ClinicalState` and a trail-derived
:class:`ExplanationContext`.  :data:`DEFAULT_TEMPLATES` ships the six
templates the corpus scenarios exercise:

- ``treatment_relationship`` — a care relationship covers the accessed
  category;
- ``work_assignment`` — an operational assignment covers it;
- ``referral_received`` — the user received a referral involving it;
- ``on_shift`` — the access fell inside the user's rostered shift;
- ``role_purpose_affinity`` — the stated purpose sits in the documented
  envelope of the user's role;
- ``department_data_echo`` — the user's own department routinely
  accesses this category through the *sanctioned* path (computed from
  the trail's regular traffic, not from any label).

Templates are pure predicates; how much evidential weight a fired
template carries is learned by :mod:`repro.explain.miner` — uninformative
templates self-neutralise instead of needing curation.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.audit.entry import AuditEntry
from repro.audit.log import AuditLog
from repro.errors import ExplainError
from repro.explain.relations import ClinicalState


class ExplanationContext:
    """Per-trail evaluation context for templates.

    Bundles the joinable :class:`ClinicalState` with indexes derived from
    the trail itself — currently the set of ``(department, data)`` pairs
    observed in *regular* (sanctioned) traffic, which powers the
    department-echo template.  Build it once per trail; evaluation is
    then O(1) per (entry, template).
    """

    def __init__(self, state: ClinicalState, log: AuditLog | None = None) -> None:
        self.state = state
        self._department_regular: set[tuple[str, str]] = set()
        if log is not None:
            for entry in log.regular():
                department = state.department_of(entry.user)
                if department is not None:
                    self._department_regular.add((department, entry.data))

    def department_echo(self, entry: AuditEntry) -> bool:
        """True iff the user's department touches this data routinely."""
        department = self.state.department_of(entry.user)
        if department is None:
            return False
        return (department, entry.data) in self._department_regular


@dataclass(frozen=True, slots=True)
class ExplanationTemplate:
    """One explanation join: a named predicate over (entry, context)."""

    name: str
    description: str
    predicate: Callable[[AuditEntry, ExplanationContext], bool]

    def fires(self, entry: AuditEntry, context: ExplanationContext) -> bool:
        """Evaluate the template for ``entry`` under ``context``."""
        return bool(self.predicate(entry, context))


def _treatment(entry: AuditEntry, context: ExplanationContext) -> bool:
    return context.state.has_treatment(entry.user, entry.data)


def _assignment(entry: AuditEntry, context: ExplanationContext) -> bool:
    return context.state.has_assignment(entry.user, entry.data)


def _referral(entry: AuditEntry, context: ExplanationContext) -> bool:
    return context.state.has_referral(entry.user, entry.data)


def _on_shift(entry: AuditEntry, context: ExplanationContext) -> bool:
    return context.state.on_shift(entry.user, entry.time)


def _role_purpose(entry: AuditEntry, context: ExplanationContext) -> bool:
    return context.state.plausible_purpose(entry.authorized, entry.purpose)


def _department_echo(entry: AuditEntry, context: ExplanationContext) -> bool:
    return context.department_echo(entry)


#: The built-in template set, in evaluation order.
DEFAULT_TEMPLATES: tuple[ExplanationTemplate, ...] = (
    ExplanationTemplate(
        name="treatment_relationship",
        description="user has a care relationship covering the data category",
        predicate=_treatment,
    ),
    ExplanationTemplate(
        name="work_assignment",
        description="user holds an operational assignment covering the category",
        predicate=_assignment,
    ),
    ExplanationTemplate(
        name="referral_received",
        description="user received a referral whose work-up involves the category",
        predicate=_referral,
    ),
    ExplanationTemplate(
        name="on_shift",
        description="access fell inside the user's rostered shift",
        predicate=_on_shift,
    ),
    ExplanationTemplate(
        name="role_purpose_affinity",
        description="stated purpose is in the documented envelope of the role",
        predicate=_role_purpose,
    ),
    ExplanationTemplate(
        name="department_data_echo",
        description="user's department routinely accesses the category sanctioned",
        predicate=_department_echo,
    ),
)


def template_by_name(name: str) -> ExplanationTemplate:
    """Look up a built-in template; raises :class:`ExplainError`."""
    for template in DEFAULT_TEMPLATES:
        if template.name == name:
            return template
    raise ExplainError(
        f"unknown explanation template {name!r}; built-ins: "
        f"{[template.name for template in DEFAULT_TEMPLATES]}"
    )
