"""Explanation-ranked triage of refinement candidates.

The paper hands every mined candidate to a privacy officer; this module
orders that queue.  :func:`triage_patterns` ranks mined
:class:`~repro.mining.patterns.Pattern` candidates by aggregate
explanation strength (from an
:class:`~repro.explain.scoring.ExplanationIndex`) and assigns each a
verdict: ``adopt`` above the auto-accept threshold, ``review`` in the
middle band, ``investigate`` below — so the human starts with the
candidates most likely to be real violations, or skips the top of the
queue entirely.

The evaluation half grades a ranking against the corpus's injected
ground truth.  A candidate's truth is the **majority truth label of its
supporting exception entries** (``practice`` = legitimate workflow that
should be adopted, ``violation`` = injected misuse that must not be).
Rankings are compared with standard information-retrieval machinery —
precision/recall sweeps, interpolated precision on a recall grid,
average precision — treating ``practice`` candidates as the positive
class.  Ground truth flows only into grading, never into ranking.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.errors import ExplainError
from repro.explain.scoring import ExplanationIndex
from repro.mining.patterns import Pattern

#: Triage verdicts, strongest first.
TRIAGE_VERDICTS: tuple[str, ...] = ("adopt", "review", "investigate")


@dataclass(frozen=True, slots=True)
class TriageThresholds:
    """Strength cut-offs for the three triage verdicts."""

    auto_accept: float = 0.75
    review: float = 0.4

    def __post_init__(self) -> None:
        if not 0.0 <= self.review <= self.auto_accept <= 1.0:
            raise ExplainError(
                "thresholds must satisfy 0 <= review <= auto_accept <= 1, "
                f"got review={self.review}, auto_accept={self.auto_accept}"
            )

    def verdict(self, strength: float) -> str:
        """Map a strength to its triage verdict."""
        if strength >= self.auto_accept:
            return "adopt"
        if strength >= self.review:
            return "review"
        return "investigate"


@dataclass(frozen=True, slots=True)
class TriageCandidate:
    """One mined candidate with its triage outcome.

    ``truth`` is evaluation-only metadata (majority ground-truth label of
    the supporting entries, ``unknown`` when unlabelled); it never
    influences ``strength`` or ``verdict``.
    """

    pattern: Pattern
    strength: float
    verdict: str
    truth: str = "unknown"

    def to_dict(self) -> dict:
        """JSON-ready encoding (rule as the policy DSL)."""
        from repro.policy.parser import format_rule

        return {
            "rule": format_rule(self.pattern.rule),
            "support": self.pattern.support,
            "distinct_users": self.pattern.distinct_users,
            "strength": self.strength,
            "verdict": self.verdict,
            "truth": self.truth,
        }


def candidate_truth(index: ExplanationIndex, pattern: Pattern) -> str:
    """Majority ground-truth label of the entries supporting ``pattern``."""
    votes = {"practice": 0, "violation": 0}
    for explanation in index.explanations_for(pattern.rule):
        if explanation.entry.truth in votes:
            votes[explanation.entry.truth] += 1
    if votes["practice"] == votes["violation"] == 0:
        return "unknown"
    return "violation" if votes["violation"] > votes["practice"] else "practice"


def explanation_ranking(
    patterns: tuple[Pattern, ...], index: ExplanationIndex
) -> tuple[Pattern, ...]:
    """Patterns ordered by descending explanation strength.

    The sort is stable: equal-strength candidates keep their incoming
    (miner) order, so triage output is deterministic.
    """
    return tuple(
        sorted(patterns, key=lambda pattern: -index.strength(pattern.rule))
    )


def support_ranking(patterns: tuple[Pattern, ...]) -> tuple[Pattern, ...]:
    """The paper's baseline: patterns by descending support (stable)."""
    return tuple(sorted(patterns, key=lambda pattern: -pattern.support))


def ranking_flags(
    ranked: tuple[Pattern, ...], index: ExplanationIndex
) -> tuple[bool, ...]:
    """Per-position positives (``truth == "practice"``) for a ranking."""
    return tuple(
        candidate_truth(index, pattern) == "practice" for pattern in ranked
    )


def precision_recall_points(
    flags: tuple[bool, ...],
) -> tuple[tuple[float, float], ...]:
    """(recall, precision) after each ranking prefix.

    Raises :class:`ExplainError` when the ranking holds no positives —
    precision/recall is undefined there.
    """
    positives = sum(flags)
    if positives == 0:
        raise ExplainError("ranking holds no positive candidates to score")
    points: list[tuple[float, float]] = []
    hits = 0
    for position, flag in enumerate(flags, start=1):
        if flag:
            hits += 1
        points.append((hits / positives, hits / position))
    return tuple(points)


def interpolated_precision(
    points: tuple[tuple[float, float], ...], grid: tuple[float, ...]
) -> tuple[float, ...]:
    """Interpolated precision at each grid recall level.

    Uses the standard IR interpolation: the maximum precision achieved at
    any recall >= the grid level (0.0 when the ranking never reaches it).
    """
    values: list[float] = []
    for level in grid:
        reachable = [
            precision for recall, precision in points if recall >= level
        ]
        values.append(max(reachable) if reachable else 0.0)
    return tuple(values)


def average_precision(flags: tuple[bool, ...]) -> float:
    """Mean precision at the rank of each positive candidate."""
    positives = sum(flags)
    if positives == 0:
        raise ExplainError("ranking holds no positive candidates to score")
    total = 0.0
    hits = 0
    for position, flag in enumerate(flags, start=1):
        if flag:
            hits += 1
            total += hits / position
    return total / positives


@dataclass
class TriageReport:
    """The full triage outcome for one mined candidate set."""

    candidates: tuple[TriageCandidate, ...]
    thresholds: TriageThresholds

    def by_verdict(self, verdict: str) -> tuple[TriageCandidate, ...]:
        """Candidates carrying ``verdict`` (ranked order preserved)."""
        if verdict not in TRIAGE_VERDICTS:
            raise ExplainError(
                f"verdict must be one of {TRIAGE_VERDICTS}, got {verdict!r}"
            )
        return tuple(
            candidate
            for candidate in self.candidates
            if candidate.verdict == verdict
        )

    def counts(self) -> dict[str, int]:
        """Candidate counts per verdict."""
        return {
            verdict: len(self.by_verdict(verdict)) for verdict in TRIAGE_VERDICTS
        }

    def to_dict(self) -> dict:
        """JSON-ready encoding of the ranked queue."""
        return {
            "format": 1,
            "thresholds": {
                "auto_accept": self.thresholds.auto_accept,
                "review": self.thresholds.review,
            },
            "counts": self.counts(),
            "candidates": [candidate.to_dict() for candidate in self.candidates],
        }


def triage_patterns(
    patterns: tuple[Pattern, ...],
    index: ExplanationIndex,
    thresholds: TriageThresholds | None = None,
) -> TriageReport:
    """Rank ``patterns`` by explanation strength and assign verdicts."""
    chosen = thresholds or TriageThresholds()
    reg = obs.get_registry()
    with reg.span("repro_explain_triage_seconds"):
        ranked = explanation_ranking(patterns, index)
        candidates = tuple(
            TriageCandidate(
                pattern=pattern,
                strength=index.strength(pattern.rule),
                verdict=chosen.verdict(index.strength(pattern.rule)),
                truth=candidate_truth(index, pattern),
            )
            for pattern in ranked
        )
    reg.counter("repro_explain_candidates_triaged_total").inc(len(candidates))
    return TriageReport(candidates=candidates, thresholds=chosen)
