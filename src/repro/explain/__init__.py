"""repro.explain — explanation-based auditing (Fabbri & LeFevre).

Turns the paper's weakest step — manual review of mined candidates —
into a scored, ranked queue: join the 7-attribute audit trail with
clinical state (:mod:`repro.explain.relations`), evaluate explanation
templates per exception access (:mod:`repro.explain.templates`), learn
how much evidence each template carries without touching ground-truth
labels (:mod:`repro.explain.miner`), aggregate per candidate rule
(:mod:`repro.explain.scoring`), and rank + grade the triage queue
(:mod:`repro.explain.triage`).  The
:class:`~repro.refine_daemon.gate.ExplanationGate` plugs the result into
the online refinement daemon's review pipeline.

Typical use::

    context = ExplanationContext(state, log)
    weights = mine_template_weights(log, context)
    index = build_index(log, context, weights)
    report = triage_patterns(patterns, index)
"""

from repro.explain.miner import (
    TemplateWeight,
    TemplateWeights,
    mine_template_weights,
)
from repro.explain.relations import ClinicalState, hour_in_shift
from repro.explain.scoring import (
    ExplanationIndex,
    ScoredExplanation,
    build_index,
    score_exceptions,
)
from repro.explain.templates import (
    DEFAULT_TEMPLATES,
    ExplanationContext,
    ExplanationTemplate,
    template_by_name,
)
from repro.explain.triage import (
    TRIAGE_VERDICTS,
    TriageCandidate,
    TriageReport,
    TriageThresholds,
    average_precision,
    candidate_truth,
    explanation_ranking,
    interpolated_precision,
    precision_recall_points,
    ranking_flags,
    support_ranking,
    triage_patterns,
)

__all__ = [
    "DEFAULT_TEMPLATES",
    "TRIAGE_VERDICTS",
    "ClinicalState",
    "ExplanationContext",
    "ExplanationIndex",
    "ExplanationTemplate",
    "ScoredExplanation",
    "TemplateWeight",
    "TemplateWeights",
    "TriageCandidate",
    "TriageReport",
    "TriageThresholds",
    "average_precision",
    "build_index",
    "candidate_truth",
    "explanation_ranking",
    "hour_in_shift",
    "interpolated_precision",
    "mine_template_weights",
    "precision_recall_points",
    "ranking_flags",
    "score_exceptions",
    "support_ranking",
    "template_by_name",
    "triage_patterns",
]
