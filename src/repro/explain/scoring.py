"""Attaching scored explanations to exception accesses.

:func:`score_exceptions` walks the break-the-glass subset of a trail and
attaches a :class:`ScoredExplanation` to every entry: which templates
fired, the Naive-Bayes score, and the logistic ``strength`` in (0, 1).
:class:`ExplanationIndex` then aggregates those per lifted candidate rule
— mean strength over the entries supporting the rule — which is the
quantity triage and the :class:`~repro.refine_daemon.gate.ExplanationGate`
rank by.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.audit.entry import AuditEntry
from repro.audit.log import AuditLog
from repro.audit.schema import RULE_ATTRIBUTES
from repro.errors import ExplainError
from repro.explain.miner import TemplateWeights
from repro.explain.templates import ExplanationContext
from repro.policy.rule import Rule


@dataclass(frozen=True, slots=True)
class ScoredExplanation:
    """One exception access with its mined explanation."""

    entry: AuditEntry
    fired: tuple[str, ...]
    score: float
    strength: float

    def summary(self) -> str:
        """One human-readable line: who, what, and why (or why not)."""
        explanation = ", ".join(self.fired) if self.fired else "no explanation"
        return (
            f"{self.entry.user} -> {self.entry.data}/{self.entry.purpose}"
            f" [{explanation}] strength={self.strength:.3f}"
        )


def score_exceptions(
    log: AuditLog,
    context: ExplanationContext,
    weights: TemplateWeights,
) -> tuple[ScoredExplanation, ...]:
    """Score every allowed exception access in ``log``."""
    reg = obs.get_registry()
    with reg.span("repro_explain_score_seconds"):
        scored = tuple(
            ScoredExplanation(
                entry=entry,
                fired=weights.fired_names(entry, context),
                score=weights.score(entry, context),
                strength=weights.strength(entry, context),
            )
            for entry in log.exceptions()
        )
    reg.counter("repro_explain_entries_scored_total").inc(len(scored))
    return scored


class ExplanationIndex:
    """Aggregate explanation strength per candidate rule.

    A candidate's strength is the *mean* entry strength over its
    supporting exceptions — means (not sums) so heavily-supported misuse
    cannot out-score lightly-supported legitimate practice, which is the
    exact failure mode of support-only ranking.
    """

    def __init__(
        self,
        scored: tuple[ScoredExplanation, ...],
        attributes: tuple[str, ...] = RULE_ATTRIBUTES,
    ) -> None:
        self.attributes = attributes
        self._by_rule: dict[Rule, list[ScoredExplanation]] = {}
        for explanation in scored:
            rule = explanation.entry.to_rule(attributes)
            self._by_rule.setdefault(rule, []).append(explanation)

    def __len__(self) -> int:
        return len(self._by_rule)

    def __contains__(self, rule: Rule) -> bool:
        return rule in self._by_rule

    def rules(self) -> tuple[Rule, ...]:
        """The candidate rules with at least one scored exception."""
        return tuple(self._by_rule)

    def explanations_for(self, rule: Rule) -> tuple[ScoredExplanation, ...]:
        """The scored exceptions supporting ``rule`` (trail order)."""
        return tuple(self._by_rule.get(rule, ()))

    def strength(self, rule: Rule, default: float = 0.0) -> float:
        """Mean explanation strength of ``rule``'s supporting entries.

        ``default`` is returned for rules with no scored exceptions (a
        candidate the index never saw carries no evidence either way).
        """
        explanations = self._by_rule.get(rule)
        if not explanations:
            return default
        return sum(item.strength for item in explanations) / len(explanations)

    def support(self, rule: Rule) -> int:
        """How many scored exceptions support ``rule``."""
        return len(self._by_rule.get(rule, ()))


def build_index(
    log: AuditLog,
    context: ExplanationContext,
    weights: TemplateWeights,
    attributes: tuple[str, ...] = RULE_ATTRIBUTES,
) -> ExplanationIndex:
    """Score ``log``'s exceptions and index them by candidate rule."""
    if not isinstance(attributes, tuple) or not attributes:
        raise ExplainError("attributes must be a non-empty tuple")
    return ExplanationIndex(
        score_exceptions(log, context, weights), attributes=attributes
    )
