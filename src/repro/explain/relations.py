"""Clinical/operational relations the explanation templates join against.

Fabbri & LeFevre's explanation-based auditing derives *explanations* for an
access from database state: "the user treated this patient", "the access
happened during the user's shift".  Our audit schema is the paper's
7-attribute tuple — it has no patient column — so the joinable state is
keyed on what the trail does carry: ``user``, ``data`` (a leaf category),
``purpose`` (a leaf), ``authorized`` (the role) and ``time`` (a tick with a
recoverable hour).  :class:`ClinicalState` holds those relations:

``treatments``
    ``(user, data_leaf)`` — the user has an active care relationship whose
    chart falls under that data category (the hdb treatment/appointment
    analog, projected onto the audit schema).
``assignments``
    ``(user, data_leaf)`` — an operational work assignment (technical or
    administrative staff) covering the category.
``referrals``
    ``(to_user, data_leaf)`` — the user *received* a referral whose
    work-up involves the category.
``shifts``
    ``user -> (start_hour, end_hour)`` daily rostered shift, end exclusive
    and wrapping (``(23, 7)`` is the night shift).
``role_purposes``
    ``(role, purpose_leaf)`` — the plausible purpose envelope of a role,
    extracted from the documented rulebook.
``departments``
    ``user -> department`` — the org chart, used by the department-echo
    template.

The corpus scenario engine accrues these relations as it emits traffic, so
legitimate accesses are *explainable* while injected misuse is not — the
separation the triage experiment (E23) measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExplainError


def hour_in_shift(start: int, end: int, hour: int) -> bool:
    """True iff ``hour`` falls inside the daily window ``[start, end)``.

    The window wraps past midnight when ``end <= start`` (a ``(23, 7)``
    night shift contains hours 23, 0..6).
    """
    if not (0 <= start < 24 and 0 <= end < 24 and 0 <= hour < 24):
        raise ExplainError(
            f"shift hours must be in [0, 24): start={start} end={end} hour={hour}"
        )
    if start < end:
        return start <= hour < end
    return hour >= start or hour < end


@dataclass
class ClinicalState:
    """The joinable hdb-side state for explanation mining.

    ``ticks_per_hour`` declares how audit-entry ticks map back to wall
    hours (``hour = tick // ticks_per_hour % 24``), matching the
    shift-structured workload's timestamping scheme.
    """

    ticks_per_hour: int = 1
    treatments: set[tuple[str, str]] = field(default_factory=set)
    assignments: set[tuple[str, str]] = field(default_factory=set)
    referrals: set[tuple[str, str]] = field(default_factory=set)
    shifts: dict[str, tuple[int, int]] = field(default_factory=dict)
    role_purposes: set[tuple[str, str]] = field(default_factory=set)
    departments: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.ticks_per_hour < 1:
            raise ExplainError(
                f"ticks_per_hour must be >= 1, got {self.ticks_per_hour}"
            )

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def add_treatment(self, user: str, data: str) -> None:
        """Record a care relationship covering data category ``data``."""
        self.treatments.add((user, data))

    def add_assignment(self, user: str, data: str) -> None:
        """Record an operational work assignment covering ``data``."""
        self.assignments.add((user, data))

    def add_referral(self, to_user: str, data: str) -> None:
        """Record that ``to_user`` received a referral involving ``data``."""
        self.referrals.add((to_user, data))

    def set_shift(self, user: str, start: int, end: int) -> None:
        """Roster ``user`` on the daily shift ``[start, end)`` (wrapping)."""
        if not (0 <= start < 24 and 0 <= end < 24):
            raise ExplainError(f"shift hours must be in [0, 24): ({start}, {end})")
        self.shifts[user] = (start, end)

    def add_role_purpose(self, role: str, purpose: str) -> None:
        """Record ``purpose`` as part of ``role``'s plausible envelope."""
        self.role_purposes.add((role, purpose))

    def set_department(self, user: str, department: str) -> None:
        """Record ``user``'s org-chart department."""
        self.departments[user] = department

    # ------------------------------------------------------------------
    # joins
    # ------------------------------------------------------------------
    def hour_of(self, tick: int) -> int:
        """Recover the wall hour encoded in an audit-entry tick."""
        return (tick // self.ticks_per_hour) % 24

    def has_treatment(self, user: str, data: str) -> bool:
        """True iff a care relationship covers ``(user, data)``."""
        return (user, data) in self.treatments

    def has_assignment(self, user: str, data: str) -> bool:
        """True iff a work assignment covers ``(user, data)``."""
        return (user, data) in self.assignments

    def has_referral(self, user: str, data: str) -> bool:
        """True iff ``user`` received a referral involving ``data``."""
        return (user, data) in self.referrals

    def on_shift(self, user: str, tick: int) -> bool:
        """True iff ``tick`` falls inside ``user``'s rostered shift.

        Users without a rostered shift are never on shift (the template
        simply does not fire for them).
        """
        shift = self.shifts.get(user)
        if shift is None:
            return False
        return hour_in_shift(shift[0], shift[1], self.hour_of(tick))

    def plausible_purpose(self, role: str, purpose: str) -> bool:
        """True iff ``purpose`` sits in ``role``'s documented envelope."""
        return (role, purpose) in self.role_purposes

    def department_of(self, user: str) -> str | None:
        """Return ``user``'s department, or ``None`` if unrostered."""
        return self.departments.get(user)

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready encoding with deterministically sorted relations."""
        return {
            "format": 1,
            "ticks_per_hour": self.ticks_per_hour,
            "treatments": sorted(list(pair) for pair in self.treatments),
            "assignments": sorted(list(pair) for pair in self.assignments),
            "referrals": sorted(list(pair) for pair in self.referrals),
            "shifts": {
                user: list(window)
                for user, window in sorted(self.shifts.items())
            },
            "role_purposes": sorted(list(pair) for pair in self.role_purposes),
            "departments": dict(sorted(self.departments.items())),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ClinicalState":
        """Rebuild the state from a :meth:`to_dict` encoding."""
        try:
            state = cls(ticks_per_hour=int(payload["ticks_per_hour"]))
            state.treatments = {tuple(pair) for pair in payload["treatments"]}
            state.assignments = {tuple(pair) for pair in payload["assignments"]}
            state.referrals = {tuple(pair) for pair in payload["referrals"]}
            for user, window in payload["shifts"].items():
                state.set_shift(user, int(window[0]), int(window[1]))
            state.role_purposes = {tuple(pair) for pair in payload["role_purposes"]}
            state.departments = dict(payload["departments"])
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            raise ExplainError(f"malformed clinical-state payload: {exc}") from exc
        return state

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ClinicalState(treatments={len(self.treatments)}, "
            f"assignments={len(self.assignments)}, "
            f"referrals={len(self.referrals)}, shifts={len(self.shifts)})"
        )
