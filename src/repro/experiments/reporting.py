"""Plain-text reporting used by the benchmark harnesses.

Every experiment prints its results as fixed-width ASCII tables so bench
output is self-describing (`pytest benchmarks/ --benchmark-only -s` shows
the same rows EXPERIMENTS.md records).
"""

from __future__ import annotations

from collections.abc import Sequence


def format_cell(value: object) -> str:
    """Render one value: floats get 4 significant decimals, ratios keep %."""
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Render an ASCII table with a header rule."""
    rendered = [[format_cell(value) for value in row] for row in rows]
    widths = [
        max(len(header), *(len(row[index]) for row in rendered)) if rendered else len(header)
        for index, header in enumerate(headers)
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_percent(value: float) -> str:
    """Render a ratio as a one-decimal percentage."""
    return f"{value:.1%}"


def format_series(label: str, values: Sequence[float]) -> str:
    """Render a one-line numeric series (for figure-style results)."""
    rendered = ", ".join(f"{value:.3f}" for value in values)
    return f"{label}: [{rendered}]"
