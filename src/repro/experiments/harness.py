"""Simulation harnesses for the synthetic experiments (E3, E6, E7).

These functions build the standard experimental fixtures — a hospital, an
initial partially-documented policy store, an enforced clinical database —
so that benches and tests share one definition of each workload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.audit.log import AuditLog
from repro.audit.schema import AccessStatus
from repro.errors import AccessDeniedError
from repro.hdb.control_center import HdbControlCenter
from repro.hdb.enforcement import TableBinding
from repro.mining.patterns import MiningConfig
from repro.policy.store import PolicyStore
from repro.refinement.engine import RefinementConfig
from repro.refinement.loop import LoopResult, RefinementLoop
from repro.refinement.review import ReviewPolicy
from repro.vocab.builtin import healthcare_vocabulary
from repro.vocab.vocabulary import Vocabulary
from repro.workload.generator import SyntheticHospitalEnvironment, WorkloadConfig
from repro.workload.hospital import HospitalModel, build_hospital


@dataclass(frozen=True)
class LoopExperimentSetup:
    """Everything a refinement-loop experiment needs."""

    vocabulary: Vocabulary
    hospital: HospitalModel
    store: PolicyStore
    environment: SyntheticHospitalEnvironment


def standard_loop_setup(
    documented_fraction: float = 0.4,
    accesses_per_round: int = 5000,
    noise_rate: float = 0.05,
    violation_rate: float = 0.02,
    seed: int = 7,
    departments: int = 3,
    staff_per_role: int = 4,
) -> LoopExperimentSetup:
    """The E3 fixture: a hospital whose store documents part of reality."""
    vocabulary = healthcare_vocabulary()
    hospital = build_hospital(
        vocabulary,
        departments=departments,
        staff_per_role=staff_per_role,
        seed=seed,
    )
    store = hospital.documented_store(documented_fraction, random.Random(seed))
    environment = SyntheticHospitalEnvironment(
        hospital,
        WorkloadConfig(
            accesses_per_round=accesses_per_round,
            noise_rate=noise_rate,
            violation_rate=violation_rate,
            seed=seed,
        ),
    )
    return LoopExperimentSetup(
        vocabulary=vocabulary,
        hospital=hospital,
        store=store,
        environment=environment,
    )


class ReplayEnvironment:
    """A :class:`~repro.refinement.loop.ClinicalEnvironment` that replays
    recorded traffic instead of simulating fresh rounds.

    Built from per-round windows (any iterables of audit entries), it
    returns them verbatim regardless of the policy store it is handed —
    the tool for comparing two refinement pipelines over the *same*
    trail, e.g. the online daemon against the offline loop in
    ``tests/test_refine_daemon_sim.py``.
    """

    def __init__(self, windows) -> None:
        self.windows = [
            window
            if isinstance(window, AuditLog)
            else AuditLog(tuple(window), name=f"replay-{index}")
            for index, window in enumerate(windows)
        ]

    def simulate_round(self, round_index: int, store: PolicyStore) -> AuditLog:
        """The recorded window for ``round_index`` (store is ignored)."""
        if round_index >= len(self.windows):
            from repro.errors import RefinementError

            raise RefinementError(
                f"replay has {len(self.windows)} recorded rounds, "
                f"round {round_index} was requested"
            )
        return self.windows[round_index]


def run_refinement_loop(
    setup: LoopExperimentSetup,
    review: ReviewPolicy,
    rounds: int = 8,
    min_support: int = 5,
    min_distinct_users: int = 2,
    refine_on_cumulative: bool = True,
    cumulative_log=None,
    workers: int = 1,
) -> LoopResult:
    """Drive the closed loop for E3 (and its review-policy ablation).

    ``cumulative_log`` optionally supplies the history sink — pass a
    :class:`~repro.store.durable.DurableAuditLog` to persist every round's
    traffic and refine straight off disk (the CLI's ``--store-dir``).
    ``workers > 1`` shards every round's refine across a process pool
    (:mod:`repro.parallel`); results are identical to the serial loop.
    """
    execution = None
    if workers > 1:
        from repro.parallel.execution import ExecutionPolicy

        execution = ExecutionPolicy(workers=workers)
    loop = RefinementLoop(
        environment=setup.environment,
        store=setup.store,
        vocabulary=setup.vocabulary,
        review=review,
        config=RefinementConfig(
            mining=MiningConfig(
                min_support=min_support, min_distinct_users=min_distinct_users
            )
        ),
        refine_on_cumulative=refine_on_cumulative,
        cumulative_log=cumulative_log,
        execution=execution,
    )
    return loop.run(rounds)


@dataclass(frozen=True)
class ClinicalDbSetup:
    """The E6 fixture: an enforced clinical database with demo traffic."""

    control_center: HdbControlCenter
    table: str
    rows: int


#: Column → data-category binding of the demo ``patients`` table.
PATIENT_COLUMNS: dict[str, str] = {
    "name": "name",
    "address": "address",
    "gender": "gender",
    "birth_date": "birth_date",
    "prescription": "prescription",
    "referral": "referral",
    "lab_results": "lab_results",
    "psychiatry": "psychiatry",
    "insurance": "insurance",
}

#: The demo deployment's sanctioned rules (shared by E6, E18 and the
#: ``repro serve`` default engine so served and in-process decisions are
#: comparable by construction).
DEMO_RULES: tuple[str, ...] = (
    "ALLOW nurse TO USE medical_records FOR treatment",
    "ALLOW nurse TO USE demographic FOR treatment",
    "ALLOW physician TO USE clinical FOR treatment",
    "ALLOW physician TO USE clinical FOR diagnosis",
    "ALLOW clerk TO USE demographic FOR billing",
    "ALLOW clerk TO USE insurance FOR billing",
    "ALLOW registrar TO USE demographic FOR registration",
)


def clinical_db_setup(
    rows: int = 1000,
    seed: int = 7,
    audit_log=None,
    rules: tuple[str, ...] | list[str] | None = None,
) -> ClinicalDbSetup:
    """Build an enforced patients table with ``rows`` synthetic records.

    ``audit_log`` optionally replaces the in-memory trail (pass a
    :class:`~repro.store.durable.DurableAuditLog` for write-through
    persistence); ``rules`` replaces :data:`DEMO_RULES`.
    """
    rng = random.Random(seed)
    vocabulary = healthcare_vocabulary()
    center = HdbControlCenter(vocabulary, audit_log=audit_log)
    columns = ", ".join(f"{column} TEXT" for column in PATIENT_COLUMNS)
    center.database.execute(
        f"CREATE TABLE patients (pid TEXT NOT NULL, {columns})"
    )
    table = center.database.table("patients")
    for index in range(rows):
        record = [f"p{index:06d}"]
        record.extend(
            f"{column}-{rng.randrange(10_000)}" for column in PATIENT_COLUMNS
        )
        table.insert(record)
    table.create_index("pid")
    center.bind_table(TableBinding("patients", "pid", dict(PATIENT_COLUMNS)))
    center.define_rules(list(rules if rules is not None else DEMO_RULES))
    return ClinicalDbSetup(control_center=center, table="patients", rows=rows)


@dataclass(frozen=True)
class EnforcementReplayStats:
    """What happened when audit traffic was replayed through enforcement."""

    replayed: int
    allowed: int
    denied: int
    masked: int
    skipped: int

    def summary(self) -> str:
        """One line suitable for CLI output."""
        return (
            f"enforcement replay: {self.replayed} queries "
            f"({self.allowed} allowed, {self.denied} denied, "
            f"{self.masked} with masking; {self.skipped} entries skipped)"
        )


def replay_through_enforcement(
    log: AuditLog,
    sample_size: int = 200,
    rows: int = 200,
    seed: int = 7,
) -> EnforcementReplayStats:
    """Replay a sample of audit entries as enforced SQL queries.

    The synthetic hospital fabricates audit entries directly (it models the
    *outcome* of enforcement, not the mechanism), so a simulation alone never
    exercises the active-enforcement path.  This helper closes that gap for
    telemetry and demos: it builds the E6 clinical database and re-issues a
    sample of the log's accesses as ``SELECT`` queries through the control
    center, so enforcement decision counters and query-rewrite metrics
    reflect the simulated workload.

    Entries whose data category has no column in the demo ``patients`` table
    are skipped (and counted in :attr:`EnforcementReplayStats.skipped`).
    """
    setup = clinical_db_setup(rows=rows, seed=seed)
    column_for = {category: column for column, category in PATIENT_COLUMNS.items()}
    entries = list(log)
    replayable = [entry for entry in entries if entry.data in column_for]
    skipped = len(entries) - len(replayable)
    if sample_size < len(replayable):
        replayable = random.Random(seed).sample(replayable, sample_size)
    allowed = denied = masked = 0
    for entry in replayable:
        sql = f"SELECT {column_for[entry.data]} FROM patients LIMIT 3"
        try:
            outcome = setup.control_center.run(
                user=entry.user,
                role=entry.authorized,
                purpose=entry.purpose,
                sql=sql,
                exception=entry.status is AccessStatus.EXCEPTION,
                truth=entry.truth,
            )
        except AccessDeniedError:
            denied += 1
        else:
            allowed += 1
            if outcome.categories_masked:
                masked += 1
    return EnforcementReplayStats(
        replayed=allowed + denied,
        allowed=allowed,
        denied=denied,
        masked=masked,
        skipped=skipped,
    )
