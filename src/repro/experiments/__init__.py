"""Experiment harnesses and paper-example reproductions.

Public surface:

- :func:`~repro.experiments.paper.reproduce_figure3` /
  :func:`reproduce_table1` — the paper's worked examples (E1, E2).
- :func:`~repro.experiments.harness.standard_loop_setup` /
  :func:`run_refinement_loop` / :func:`clinical_db_setup` — shared
  fixtures for the synthetic experiments.
- :mod:`repro.experiments.sweeps` — E4 (thresholds), E5 (SQL vs
  Apriori), E9 (violation separation).
- :mod:`repro.experiments.reporting` — ASCII tables for bench output.
"""

from repro.experiments.harness import (
    ClinicalDbSetup,
    LoopExperimentSetup,
    clinical_db_setup,
    run_refinement_loop,
    standard_loop_setup,
)
from repro.experiments.paper import (
    Figure3Result,
    Table1Result,
    reproduce_figure3,
    reproduce_table1,
)
from repro.experiments.reporting import format_percent, format_series, format_table
from repro.experiments.sweeps import (
    MiningComparison,
    SweepPoint,
    ViolationPoint,
    mining_comparison,
    planted_correlation_log,
    threshold_sweep,
    violation_sweep,
)

__all__ = [
    "ClinicalDbSetup",
    "Figure3Result",
    "LoopExperimentSetup",
    "MiningComparison",
    "SweepPoint",
    "Table1Result",
    "ViolationPoint",
    "clinical_db_setup",
    "format_percent",
    "format_series",
    "format_table",
    "mining_comparison",
    "planted_correlation_log",
    "reproduce_figure3",
    "reproduce_table1",
    "run_refinement_loop",
    "standard_loop_setup",
    "threshold_sweep",
    "violation_sweep",
]
