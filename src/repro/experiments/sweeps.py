"""Parameter sweeps and comparisons (E4, E5, E9).

The paper concedes its mining criterion "is clearly subjective"; these
sweeps quantify the subjectivity:

- :func:`threshold_sweep` (E4): how pattern count, precision and recall of
  the miner respond to ``f`` and the distinct-user condition.
- :func:`mining_comparison` (E5): SQL GROUP BY vs Apriori on a log with a
  planted cross-role correlation that full-width grouping cannot see.
- :func:`violation_sweep` (E9): classifier precision/recall as the
  injected violation rate grows.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.audit.classify import ClassifierConfig, classify_exceptions
from repro.audit.log import AuditLog, make_entry
from repro.audit.schema import AccessStatus
from repro.mining.apriori import AprioriPatternMiner
from repro.mining.patterns import MiningConfig, Pattern
from repro.mining.sql_patterns import SqlPatternMiner
from repro.policy.rule import Rule
from repro.refinement.filtering import filter_practice
from repro.workload.generator import SyntheticHospitalEnvironment


# ----------------------------------------------------------------------
# E4: threshold sensitivity
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SweepPoint:
    """One (f, c) cell of the E4 sweep.

    Mined patterns are classified against the hospital's ground truth:

    - ``workflow_found`` — patterns that are genuine recurring practices
      (members of the hospital's true workflow);
    - ``violation_found`` — patterns formed by injected snooping;
    - ``noise_found`` — patterns formed by one-off idiosyncratic accesses
      that happened to repeat.

    ``workflow_recall`` divides ``workflow_found`` by the number of true
    workflow rules that actually surfaced as exceptions in the log (a
    miner cannot find what never occurred).
    """

    min_support: int
    min_distinct_users: int
    patterns_found: int
    workflow_found: int
    violation_found: int
    noise_found: int
    workflow_recall: float


def threshold_sweep(
    log: AuditLog,
    workflow_rules: set[Rule],
    support_values: tuple[int, ...] = (2, 3, 5, 10, 20),
    user_values: tuple[int, ...] = (1, 2, 3),
) -> tuple[SweepPoint, ...]:
    """Mine ``log`` at every (f, c) combination and classify the output.

    ``workflow_rules`` is the hospital's true workflow (e.g.
    ``set(hospital.practice_rules())``).  The log must carry truth labels
    (the synthetic generator stamps them) so injected violations can be
    told apart from noise.
    """
    practice_log = filter_practice(log)
    violation_rules = {
        entry.to_rule()
        for entry in log
        if entry.truth == "violation" and entry.is_exception
    }
    observable = {
        entry.to_rule() for entry in practice_log
    } & workflow_rules
    miner = SqlPatternMiner()
    points: list[SweepPoint] = []
    for min_support in support_values:
        for min_users in user_values:
            config = MiningConfig(
                min_support=min_support, min_distinct_users=min_users
            )
            patterns = miner.mine(practice_log, config)
            mined_rules = {pattern.rule for pattern in patterns}
            workflow_found = mined_rules & workflow_rules
            violation_found = (mined_rules - workflow_rules) & violation_rules
            noise_found = mined_rules - workflow_rules - violation_rules
            points.append(
                SweepPoint(
                    min_support=min_support,
                    min_distinct_users=min_users,
                    patterns_found=len(patterns),
                    workflow_found=len(workflow_found),
                    violation_found=len(violation_found),
                    noise_found=len(noise_found),
                    workflow_recall=(
                        len(workflow_found) / len(observable) if observable else 0.0
                    ),
                )
            )
    return tuple(points)


# ----------------------------------------------------------------------
# E5: SQL analytics vs Apriori
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MiningComparison:
    """E5 outputs for one log."""

    sql_patterns: tuple[Pattern, ...]
    apriori_patterns: tuple[Pattern, ...]
    correlations: tuple[str, ...]
    planted_pair_found_by_sql: bool
    planted_pair_found_by_apriori: bool
    sql_seconds: float
    apriori_seconds: float


def planted_correlation_log(
    per_role_support: int = 4,
    roles: tuple[str, ...] = ("nurse", "registrar", "clerk"),
    background_entries: int = 60,
    seed: int = 11,
) -> AuditLog:
    """A practice log hiding a cross-role correlation.

    The pair ``(referral, registration)`` occurs ``per_role_support``
    times for each role — below the default ``f = 5`` individually, so
    full-width GROUP BY mining sees nothing, while the pair's total
    support (``per_role_support * len(roles)``) is well above threshold
    and Apriori's size-2 itemsets expose it.
    """
    rng = random.Random(seed)
    entries = []
    tick = 1
    for role in roles:
        for index in range(per_role_support):
            entries.append(
                make_entry(
                    time=tick,
                    user=f"{role}_{index % 3}",
                    data="referral",
                    purpose="registration",
                    authorized=role,
                    status=AccessStatus.EXCEPTION,
                    truth="practice",
                )
            )
            tick += 1
    data_pool = ("prescription", "lab_results", "address", "insurance")
    purpose_pool = ("treatment", "billing", "diagnosis")
    for index in range(background_entries):
        entries.append(
            make_entry(
                time=tick,
                user=f"user_{rng.randrange(20)}",
                data=rng.choice(data_pool),
                purpose=rng.choice(purpose_pool),
                authorized=rng.choice(roles),
                status=AccessStatus.EXCEPTION,
                truth="practice",
            )
        )
        tick += 1
    return AuditLog(entries, name="planted_correlation")


def mining_comparison(
    log: AuditLog, config: MiningConfig | None = None
) -> MiningComparison:
    """Run both miners on ``log`` and check for the planted pair."""
    cfg = config or MiningConfig()
    sql_miner = SqlPatternMiner()
    apriori_miner = AprioriPatternMiner()

    started = time.perf_counter()
    sql_patterns = sql_miner.mine(log, cfg)
    sql_seconds = time.perf_counter() - started

    started = time.perf_counter()
    apriori_patterns = apriori_miner.mine(log, cfg)
    correlations = apriori_miner.correlations(log, cfg)
    apriori_seconds = time.perf_counter() - started

    pair = frozenset({("data", "referral"), ("purpose", "registration")})
    in_sql = any(
        pattern.rule.value_of("data") == "referral"
        and pattern.rule.value_of("purpose") == "registration"
        for pattern in sql_patterns
    )
    in_apriori = any(itemset.items == pair for itemset in correlations)
    return MiningComparison(
        sql_patterns=sql_patterns,
        apriori_patterns=apriori_patterns,
        correlations=tuple(str(itemset) for itemset in correlations),
        planted_pair_found_by_sql=in_sql,
        planted_pair_found_by_apriori=in_apriori,
        sql_seconds=sql_seconds,
        apriori_seconds=apriori_seconds,
    )


# ----------------------------------------------------------------------
# E9: violation separation quality
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ViolationPoint:
    """One violation-rate cell of the E9 sweep."""

    violation_rate: float
    exceptions: int
    labelled_violations: int
    precision: float
    recall: float


def violation_sweep(
    make_environment,
    rates: tuple[float, ...] = (0.01, 0.05, 0.10, 0.20),
    classifier: ClassifierConfig | None = None,
) -> tuple[ViolationPoint, ...]:
    """Score the classifier across injected violation rates.

    ``make_environment`` is a callable ``rate -> (environment, store)``;
    the sweep simulates one round per rate and classifies its exceptions.
    """
    points: list[ViolationPoint] = []
    for rate in rates:
        environment, store = make_environment(rate)
        assert isinstance(environment, SyntheticHospitalEnvironment)
        log = environment.simulate_round(0, store)
        report = classify_exceptions(log, classifier)
        labelled = sum(
            1 for entry in log if entry.truth == "violation" and entry.is_exception
        )
        points.append(
            ViolationPoint(
                violation_rate=rate,
                exceptions=len(log.exceptions()),
                labelled_violations=labelled,
                precision=report.precision(),
                recall=report.recall(),
            )
        )
    return tuple(points)
