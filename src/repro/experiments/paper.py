"""Exact reproduction of the paper's worked examples (E1 and E2).

These functions pin the only quantitative claims the paper makes:

- **E1 / Figure 3**: the store range has 8 ground rules (1a–1c, 2, 3a–3d),
  the audit policy has 6, the overlap is 3, coverage is 50 %.
- **E2 / Table 1 + Section 5**: entry coverage over the ten-entry trail is
  3/10 = 30 %; Filter keeps the seven exception entries (t3, t4, t6–t10);
  mining with f = 5 and more-than-one distinct user extracts exactly
  ``Referral:Registration:Nurse``; pruning keeps it; adopting it lifts
  entry coverage to 8/10.

Note on the two coverage numbers: Definition 9 is set-valued, and on the
deduplicated Table 1 rules it yields 3/6 = 50 % — the paper's 30 % counts
*entries*, so ``reproduce_table1`` reports both (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.coverage.engine import (
    CoverageReport,
    EntryCoverageReport,
    compute_coverage,
    compute_entry_coverage,
)
from repro.coverage.gaps import GapReport, analyse_gaps
from repro.mining.patterns import Pattern
from repro.refinement.engine import RefinementResult, refine
from repro.workload.scenarios import (
    figure3_audit_policy,
    figure3_policy,
    figure3_policy_store,
    figure3_vocabulary,
    table1_audit_log,
)


@dataclass(frozen=True)
class Figure3Result:
    """E1 outputs."""

    store_range_size: int
    audit_range_size: int
    overlap_size: int
    coverage: float
    gaps: GapReport
    report: CoverageReport


def reproduce_figure3() -> Figure3Result:
    """Run the Section 3.3 example; expected coverage is exactly 0.5."""
    vocabulary = figure3_vocabulary()
    policy_store = figure3_policy()
    audit_policy = figure3_audit_policy()
    report = compute_coverage(policy_store, audit_policy, vocabulary)
    gaps = analyse_gaps(report, policy_store, vocabulary)
    return Figure3Result(
        store_range_size=report.covering.cardinality,
        audit_range_size=report.reference.cardinality,
        overlap_size=report.overlap.cardinality,
        coverage=report.ratio,
        gaps=gaps,
        report=report,
    )


@dataclass(frozen=True)
class Table1Result:
    """E2 outputs."""

    entry_coverage_before: EntryCoverageReport
    set_coverage_before: CoverageReport
    practice_size: int
    patterns: tuple[Pattern, ...]
    useful_patterns: tuple[Pattern, ...]
    entry_coverage_after: EntryCoverageReport
    set_coverage_after: CoverageReport
    refinement: RefinementResult


def reproduce_table1() -> Table1Result:
    """Run the Section 5 use case end to end.

    Expected: entry coverage 0.30 before, one useful pattern
    (``referral:registration:nurse``, support 5, three distinct users),
    entry coverage 0.80 after adopting it.
    """
    vocabulary = figure3_vocabulary()
    store = figure3_policy_store()
    log = table1_audit_log()

    result = refine(store.policy(), log, vocabulary)
    for pattern in result.useful_patterns:
        store.add(
            pattern.rule,
            added_by="section-5",
            origin="refinement",
            note=f"support={pattern.support}",
        )
    audit_policy = log.to_policy()
    after_policy = store.policy()
    entry_after = compute_entry_coverage(after_policy, iter(audit_policy), vocabulary)
    set_after = compute_coverage(after_policy, audit_policy, vocabulary)
    return Table1Result(
        entry_coverage_before=result.entry_coverage,
        set_coverage_before=result.coverage,
        practice_size=len(result.practice),
        patterns=result.patterns,
        useful_patterns=result.useful_patterns,
        entry_coverage_after=entry_after,
        set_coverage_after=set_after,
        refinement=result,
    )
