"""The active-registry switch: one global default, swappable per scope.

Instrumented components resolve :func:`get_registry` (usually once, at
construction) instead of importing a singleton, so benchmarks and tests
can run the same code instrumented or dark:

- :func:`set_registry` swaps the process default;
- :func:`use_registry` swaps it for one ``with`` block (the E15 overhead
  benchmark's A/B mechanism);
- :func:`span` is the module-level timer that binds to whatever registry
  is active *when the block runs*, making it safe as a decorator on
  functions defined at import time.

The default is a live :class:`~repro.obs.registry.MetricsRegistry`:
telemetry is on out of the box (E15 shows it within noise of disabled)
and switched off by installing
:data:`~repro.obs.registry.NULL_REGISTRY`.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from contextlib import contextmanager
from functools import wraps

from repro.obs.registry import MetricsRegistry, Span

#: the process-default registry, live unless replaced
_DEFAULT_REGISTRY = MetricsRegistry()
_active: MetricsRegistry = _DEFAULT_REGISTRY


def get_registry() -> MetricsRegistry:
    """The currently active registry (the default unless swapped)."""
    return _active


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the active one; returns the previous one."""
    global _active
    previous = _active
    _active = registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Make ``registry`` active inside the ``with`` block, then restore.

    Components constructed inside the block capture ``registry``;
    components constructed outside keep whatever they captured — swap
    *before* building the pipeline under measurement.
    """
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


class _LateBoundSpan:
    """A span that resolves the active registry at enter/call time."""

    __slots__ = ("_name", "_labels", "_inner")

    def __init__(self, name: str, labels: dict) -> None:
        self._name = name
        self._labels = labels
        self._inner: object | None = None

    def __enter__(self):
        """Open a span on whatever registry is active right now."""
        self._inner = get_registry().span(self._name, **self._labels)
        return self._inner.__enter__()

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Close the underlying span."""
        inner, self._inner = self._inner, None
        return inner.__exit__(exc_type, exc, tb)

    def __call__(self, fn: Callable) -> Callable:
        """Decorator form: each call re-resolves the active registry."""

        @wraps(fn)
        def wrapper(*args, **kwargs):
            with get_registry().span(self._name, **self._labels):
                return fn(*args, **kwargs)

        return wrapper


def span(name: str, **labels: object) -> _LateBoundSpan:
    """Module-level ``span(name, **labels)`` bound to the active registry.

    Usable both ways::

        with obs.span("repro_refinement_stage", stage="prune"):
            ...

        @obs.span("repro_coverage_compute", kind="set")
        def compute(...): ...
    """
    return _LateBoundSpan(name, dict(labels))


__all__ = ["get_registry", "set_registry", "use_registry", "span", "Span"]
