"""Metric primitives: counters, gauges, and log-scale histograms.

These are deliberately dependency-free, single-process, single-threaded
instruments in the Prometheus data model:

:class:`Counter`
    A monotonically increasing total (``repro_*_total`` by convention).
:class:`Gauge`
    A value that can go up and down (sizes, cache occupancy).
:class:`Histogram`
    A distribution over **fixed log-scale buckets**: durations and
    cardinalities both span orders of magnitude, so buckets are spaced
    geometrically (powers of two by default) rather than linearly.

Instruments are handed out and keyed by the
:class:`~repro.obs.registry.MetricsRegistry`; this module also defines the
*snapshot* helpers — the plain-``dict`` serialisation of a registry that
the exposition layer (:mod:`repro.obs.exposition`) and the per-round
metric deltas of the refinement loop both consume.
"""

from __future__ import annotations

import math
import re
from bisect import bisect_left

from repro.errors import ObservabilityError

#: Default histogram bucket upper bounds: powers of two from ~1 µs to 32 s,
#: tuned for the ``*_seconds`` span histograms.  Observations above the
#: last bound land in the implicit ``+Inf`` bucket.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(2.0**e for e in range(-20, 6))

#: Bucket bounds for cardinality-style histograms (range sizes, row
#: counts): powers of two from 1 to 2^20.
CARDINALITY_BUCKETS: tuple[float, ...] = tuple(2.0**e for e in range(0, 21))

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def validate_name(name: str) -> str:
    """Check ``name`` against the Prometheus metric-name grammar.

    The repo's naming scheme is ``repro_<pkg>_<name>`` with counters
    suffixed ``_total`` and span histograms suffixed ``_seconds`` (see
    DESIGN.md §8); this only enforces the character set.
    """
    if not _NAME_RE.match(name):
        raise ObservabilityError(f"invalid metric name {name!r}")
    return name


def validate_labels(labels: dict[str, object]) -> dict[str, str]:
    """Validate label names and coerce label values to strings."""
    out: dict[str, str] = {}
    for key, value in labels.items():
        if not _LABEL_RE.match(key):
            raise ObservabilityError(f"invalid label name {key!r}")
        out[key] = str(value)
    return out


def log_buckets(start: float, stop: float, base: float = 2.0) -> tuple[float, ...]:
    """Geometric bucket bounds from ``start`` up to and including ``stop``.

    ``log_buckets(1, 1024)`` gives the powers of two 1, 2, …, 1024 —
    the shape every histogram in this repo uses, per the "fixed
    log-scale buckets" design rule.
    """
    if start <= 0 or stop < start or base <= 1.0:
        raise ObservabilityError(
            f"log_buckets needs 0 < start <= stop and base > 1, "
            f"got start={start}, stop={stop}, base={base}"
        )
    count = int(math.floor(math.log(stop / start, base) + 1e-9)) + 1
    bounds = tuple(start * base**i for i in range(count))
    if bounds[-1] < stop:
        bounds = bounds + (stop,)
    return bounds


def format_sample(name: str, labels: dict[str, str]) -> str:
    """Render ``name{k="v",…}`` — the key used by snapshots and deltas."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (>= 0) to the counter; negative amounts raise."""
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name} cannot decrease (inc({amount}))"
            )
        self._value += amount

    @property
    def value(self) -> float:
        """The current total."""
        return self._value


class Gauge:
    """A value that can move in both directions."""

    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: dict[str, str]) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self._value = float(value)

    def inc(self, amount: float = 1) -> None:
        """Move the gauge up by ``amount``."""
        self._value += amount

    def dec(self, amount: float = 1) -> None:
        """Move the gauge down by ``amount``."""
        self._value -= amount

    @property
    def value(self) -> float:
        """The current level."""
        return self._value


class Histogram:
    """A distribution over fixed log-scale buckets.

    Observations at or below a bound count into that bucket; anything
    above the last bound lands in the implicit ``+Inf`` overflow bucket.
    Zero and negative observations (a timer's floor) count into the first
    bucket rather than raising — telemetry must never take down the
    instrumented path.
    """

    __slots__ = ("name", "labels", "bounds", "_counts", "_sum", "_count",
                 "_exemplars")

    def __init__(
        self,
        name: str,
        labels: dict[str, str],
        bounds: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ObservabilityError(
                f"histogram {name} needs ascending, non-empty bucket bounds"
            )
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in bounds)
        self._counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self._sum = 0.0
        self._count = 0
        # per-bucket (trace_id, value) of the last exemplared observation;
        # lazily allocated so exemplar-free histograms pay nothing
        self._exemplars: dict[int, tuple[str, float]] | None = None

    def observe(self, value: float, exemplar: str | None = None) -> None:
        """Record one observation.

        ``exemplar`` (a trace id, when a trace is active at the call
        site) is kept per bucket — last writer wins — linking each
        latency bucket to one concrete request that landed in it.
        """
        index = bisect_left(self.bounds, value)
        self._counts[index] += 1
        self._sum += value
        self._count += 1
        if exemplar is not None:
            if self._exemplars is None:
                self._exemplars = {}
            self._exemplars[index] = (exemplar, value)

    @property
    def count(self) -> int:
        """Total number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def cumulative_buckets(self) -> list[tuple[float | str, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs, ending ``+Inf``."""
        out: list[tuple[float | str, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self._counts):
            running += count
            out.append((bound, running))
        out.append(("+Inf", running + self._counts[-1]))
        return out

    def exemplars(self) -> list[dict]:
        """Per-bucket exemplars as ``{le, trace_id, value}`` (may be empty)."""
        if not self._exemplars:
            return []
        out = []
        for index in sorted(self._exemplars):
            trace_id, value = self._exemplars[index]
            le: float | str = (
                self.bounds[index] if index < len(self.bounds) else "+Inf"
            )
            out.append({"le": le, "trace_id": trace_id, "value": value})
        return out


def sample_delta(
    before: dict[str, float], after: dict[str, float]
) -> dict[str, float]:
    """Per-sample difference between two monotone sample maps.

    Samples absent from ``before`` count from zero; unchanged samples are
    dropped, so the result is exactly "what this interval contributed" —
    the per-round metrics delta :class:`~repro.refinement.loop.RoundReport`
    carries.
    """
    return {
        key: value - before.get(key, 0.0)
        for key, value in after.items()
        if value != before.get(key, 0.0)
    }


def estimate_quantile(
    cumulative: list[tuple[float | str, int]] | list[dict], q: float
) -> float | None:
    """Estimate the ``q``-quantile from cumulative histogram buckets.

    ``cumulative`` is either :meth:`Histogram.cumulative_buckets` output
    or the snapshot form (``[{"le": …, "count": …}, …]``).  Buckets are
    log-scaled in this repo, so interpolation inside a bucket is
    **geometric** — ``lo * (hi/lo)**fraction`` — matching the bucket
    spacing; the first finite bucket interpolates linearly from zero and
    the overflow bucket returns its lower bound (the estimate cannot
    exceed what was measured).  Returns None on an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ObservabilityError(f"quantile must be within [0, 1], got {q}")
    pairs: list[tuple[float | str, int]] = [
        (b["le"], b["count"]) if isinstance(b, dict) else (b[0], b[1])
        for b in cumulative
    ]
    if not pairs:
        return None
    total = pairs[-1][1]
    if total == 0:
        return None
    target = q * total
    previous_bound = 0.0
    previous_count = 0
    for bound, count in pairs:
        if count >= target and count > previous_count:
            if isinstance(bound, str):  # the +Inf overflow bucket
                return previous_bound
            fraction = (target - previous_count) / (count - previous_count)
            if previous_bound <= 0.0:
                return bound * fraction
            return previous_bound * (bound / previous_bound) ** fraction
        if not isinstance(bound, str):
            previous_bound = bound
        previous_count = count
    return previous_bound
