"""The metrics registry: instrument factory, collectors, spans, snapshots.

One :class:`MetricsRegistry` holds every instrument of a process (or of an
experiment, when tests and benchmarks swap in a private registry via
:func:`~repro.obs.runtime.use_registry`).  Three access patterns coexist:

direct
    ``registry.counter("repro_x_total", kind="set").inc()`` — for
    decision-bearing, once-per-operation call sites.
collectors
    Hot paths (the grounder's memo probes, the SQL executor's row scans)
    keep **plain Python ints** and register a collector that flushes the
    delta into real counters at snapshot time, so steady-state
    instrumentation costs nothing per call.  Collectors are weakly
    referenced: a dropped component unregisters itself by dying.
spans
    ``with registry.span("repro_pkg_op", stage="x"):`` times a block into
    the ``repro_pkg_op_seconds`` histogram, emits a structured event when
    a sink is attached, and debug-logs under ``repro.obs.span``.

:class:`NullRegistry` is the disabled twin: every factory returns a shared
no-op instrument and ``enabled`` is False, so instrumented code can guard
hot extras with a single attribute check (``if reg.enabled: ...``).
"""

from __future__ import annotations

import logging
import time
import weakref
from collections.abc import Callable
from functools import wraps

from repro.errors import ObservabilityError
from repro.obs import trace as _trace
from repro.obs.events import JsonlEventSink
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    format_sample,
    validate_labels,
    validate_name,
)

_SPAN_LOGGER = logging.getLogger("repro.obs.span")


class Span:
    """A context-manager *and* decorator timing one named operation.

    On exit the elapsed wall time is observed into the
    ``<name>_seconds`` histogram carrying the span's labels; if the
    registry has an event sink attached, a ``span`` event is emitted; and
    a debug line goes to the ``repro.obs.span`` logger (visible under the
    CLI's ``--verbose``).  Exceptions propagate — the duration is recorded
    either way, with ``error`` set on the event.

    When a trace root is active (:mod:`repro.obs.trace`), the span also
    becomes a **child span** of the enclosing one — the PR 2 timers are
    the span tree — and the histogram observation carries the trace id
    as its bucket exemplar.  Untraced, the extra cost is a single
    context-variable read on enter.
    """

    __slots__ = ("_registry", "_name", "_labels", "_started", "_trace")

    def __init__(self, registry: "MetricsRegistry", name: str, labels: dict) -> None:
        self._registry = registry
        self._name = name
        self._labels = labels
        self._started = 0.0
        self._trace = None

    def __enter__(self) -> "Span":
        """Start the timer (and a trace child span, when traced)."""
        self._trace = _trace.enter_child(self._name, self._labels)
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Stop the timer; record histogram, trace span, event, log."""
        elapsed = time.perf_counter() - self._started
        registry = self._registry
        handle, self._trace = self._trace, None
        exemplar = None
        if handle is not None:
            exemplar = _trace.exit_child(
                handle, exc_type.__name__ if exc_type is not None else None
            )
        registry.histogram(self._name + "_seconds", **self._labels).observe(
            elapsed, exemplar
        )
        if registry.event_sink is not None:
            registry.event(
                "span",
                name=self._name,
                seconds=round(elapsed, 9),
                error=exc_type.__name__ if exc_type is not None else None,
                **self._labels,
            )
        if _SPAN_LOGGER.isEnabledFor(logging.DEBUG):
            labels = "".join(
                f" {key}={value}" for key, value in sorted(self._labels.items())
            )
            _SPAN_LOGGER.debug(
                "span=%s seconds=%.6f%s", self._name, elapsed, labels
            )
        return False

    def __call__(self, fn: Callable) -> Callable:
        """Decorator form: each call runs inside a fresh span."""

        @wraps(fn)
        def wrapper(*args, **kwargs):
            with type(self)(self._registry, self._name, self._labels):
                return fn(*args, **kwargs)

        return wrapper


class MetricsRegistry:
    """Process-local home of every counter, gauge, histogram and span."""

    #: the one-attribute-check guard instrumented call sites use
    enabled = True

    def __init__(self) -> None:
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}
        self._kinds: dict[str, str] = {}  # metric name -> instrument kind
        self._collectors: list = []  # WeakMethod | weakref.ref | callable
        #: optional structured event sink (see :mod:`repro.obs.events`)
        self.event_sink: JsonlEventSink | None = None

    # ------------------------------------------------------------------
    # instrument factories (get-or-create, keyed by name + labels)
    # ------------------------------------------------------------------
    def _key(self, name: str, kind: str, labels: dict) -> tuple[tuple, dict]:
        validate_name(name)
        clean = validate_labels(labels)
        seen = self._kinds.setdefault(name, kind)
        if seen != kind:
            raise ObservabilityError(
                f"metric {name!r} already registered as a {seen}, not a {kind}"
            )
        return (name, tuple(sorted(clean.items()))), clean

    def counter(self, name: str, **labels: object) -> Counter:
        """Return the counter ``name`` for this label set, creating it once."""
        key, clean = self._key(name, "counter", labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(name, clean)
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        """Return the gauge ``name`` for this label set, creating it once."""
        key, clean = self._key(name, "gauge", labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(name, clean)
        return instrument

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: object,
    ) -> Histogram:
        """Return the histogram ``name`` for this label set, creating it once.

        ``buckets`` is honoured on first creation only; later calls for
        the same series return the existing instrument unchanged.
        """
        key, clean = self._key(name, "histogram", labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(name, clean, buckets)
        return instrument

    # ------------------------------------------------------------------
    # spans and events
    # ------------------------------------------------------------------
    def span(self, name: str, **labels: object) -> Span:
        """Time a block into ``<name>_seconds`` (context manager/decorator)."""
        validate_name(name)
        return Span(self, name, validate_labels(labels))

    def event(self, event: str, **fields: object) -> None:
        """Emit one structured event to the attached sink (no-op without one)."""
        if self.event_sink is not None:
            self.event_sink.emit(event, **fields)

    def attach_sink(self, sink: JsonlEventSink | None) -> None:
        """Attach (or with ``None`` detach) the structured event sink."""
        self.event_sink = sink

    # ------------------------------------------------------------------
    # collectors: pull-style flushing for hot-path components
    # ------------------------------------------------------------------
    def register_collector(self, collector: Callable[[], None]) -> None:
        """Register a zero-argument callable run before every snapshot.

        Bound methods are held via :class:`weakref.WeakMethod` so
        registering never extends a component's lifetime; dead collectors
        are pruned on the next :meth:`collect`.
        """
        if hasattr(collector, "__self__"):
            self._collectors.append(weakref.WeakMethod(collector))
        else:
            self._collectors.append(collector)

    def collect(self) -> None:
        """Run every live collector, pruning the dead ones."""
        live = []
        for entry in self._collectors:
            fn = entry() if isinstance(entry, weakref.WeakMethod) else entry
            if fn is None:
                continue
            fn()
            live.append(entry)
        self._collectors = live

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Collect, then serialise every instrument to a JSON-able dict.

        The schema (``counters`` / ``gauges`` / ``histograms`` lists with
        ``name``, ``labels`` and values; histogram buckets cumulative,
        ending at ``+Inf``) is what ``--metrics-out`` writes and what
        :func:`repro.obs.exposition.render_prometheus` renders.
        """
        self.collect()

        def ordered(instruments: dict) -> list:
            return [instruments[key] for key in sorted(instruments)]

        return {
            "counters": [
                {"name": c.name, "labels": c.labels, "value": c.value}
                for c in ordered(self._counters)
            ],
            "gauges": [
                {"name": g.name, "labels": g.labels, "value": g.value}
                for g in ordered(self._gauges)
            ],
            "histograms": [
                {
                    "name": h.name,
                    "labels": h.labels,
                    "count": h.count,
                    "sum": h.sum,
                    "buckets": [
                        {"le": le, "count": count}
                        for le, count in h.cumulative_buckets()
                    ],
                    **(
                        {"exemplars": exemplars}
                        if (exemplars := h.exemplars())
                        else {}
                    ),
                }
                for h in ordered(self._histograms)
            ],
        }

    def sample_values(self) -> dict[str, float]:
        """Flat map of every *monotone* sample (after collecting).

        Counters appear under their rendered name; histograms contribute
        ``<name>_count`` and ``<name>_sum``.  Gauges are excluded — deltas
        of non-monotone series are not meaningful.  Feed two of these to
        :func:`repro.obs.metrics.sample_delta` for interval attribution.
        """
        self.collect()
        out: dict[str, float] = {}
        for counter in self._counters.values():
            out[format_sample(counter.name, counter.labels)] = counter.value
        for histogram in self._histograms.values():
            base = format_sample(histogram.name, histogram.labels)
            out[base + "#count"] = float(histogram.count)
            out[base + "#sum"] = histogram.sum
        return out


class _NullCounter(Counter):
    """A counter that ignores every increment."""

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        """Discard the increment."""


class _NullGauge(Gauge):
    """A gauge that ignores every movement."""

    __slots__ = ()

    def set(self, value: float) -> None:
        """Discard the value."""

    def inc(self, amount: float = 1) -> None:
        """Discard the movement."""

    def dec(self, amount: float = 1) -> None:
        """Discard the movement."""


class _NullHistogram(Histogram):
    """A histogram that ignores every observation."""

    __slots__ = ()

    def observe(self, value: float, exemplar: str | None = None) -> None:
        """Discard the observation."""


class _NullSpan:
    """A stateless, reusable span that measures nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        """Do nothing."""
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Do nothing; let exceptions propagate."""
        return False

    def __call__(self, fn: Callable) -> Callable:
        """Decorator form: return ``fn`` untouched (zero overhead)."""
        return fn


class NullRegistry(MetricsRegistry):
    """The disabled registry: every instrument is a shared no-op.

    ``enabled`` is False, so instrumented call sites skip their extras
    with one attribute check; anything that does call through lands on
    singletons whose mutators are empty methods.  Snapshots are empty and
    collectors are never retained.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("null", {})
        self._null_gauge = _NullGauge("null", {})
        self._null_histogram = _NullHistogram("null", {}, (1.0,))
        self._null_span = _NullSpan()

    def counter(self, name: str, **labels: object) -> Counter:
        """Return the shared no-op counter."""
        return self._null_counter

    def gauge(self, name: str, **labels: object) -> Gauge:
        """Return the shared no-op gauge."""
        return self._null_gauge

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: object,
    ) -> Histogram:
        """Return the shared no-op histogram."""
        return self._null_histogram

    def span(self, name: str, **labels: object) -> _NullSpan:  # type: ignore[override]
        """Return the shared no-op span."""
        return self._null_span

    def register_collector(self, collector: Callable[[], None]) -> None:
        """Drop the collector; a disabled registry never pulls."""

    def event(self, event: str, **fields: object) -> None:
        """Discard the event."""


#: The process-wide disabled registry; pass to
#: :func:`repro.obs.runtime.use_registry` to switch instrumentation off.
NULL_REGISTRY = NullRegistry()
