"""Distributed tracing: parented spans, sampling, and the trace store.

PR 2's ``obs.span`` timers answer *how long*; this module makes them
answer *which request*.  A :class:`Tracer` opens one **root span** per
unit of work (a served request, a daemon poll) and publishes it through a
:mod:`contextvars` variable; every ``obs.span`` that runs while a root is
active automatically becomes a **child span** of whatever span encloses
it — no call-site changes, the PR 2 instrumentation *is* the span tree.
Context variables are task-local under asyncio and thread-local in plain
threads, so concurrent requests on one event loop and the refinement
daemon on its own thread never cross their traces.

Wire format: the W3C ``traceparent`` shape
``00-<32 hex trace id>-<16 hex span id>-<2 hex flags>``
(:func:`format_traceparent` / :func:`parse_traceparent`).  A client that
stamps it into a frame's ``trace`` field (or the HTTP header) links the
server's trace to its own; the server generates a fresh id otherwise.
Trace ids **never** enter response bodies unless the client sent one —
responses must stay byte-identical with tracing on or off (E20).

Sampling: head sampling decides *recording* upfront — every
``sample_every``-th root (and every root with a remote parent: the
caller asked to follow it) records its full child-span tree; the rest
are **skeleton roots** that cost one allocation and two clock reads
(GC pressure from per-request garbage, not CPU in the tracer, is what
shows up in E20).  Retention in the bounded
ring-buffer :class:`TraceStore` is then:

- every recorded root (the head sample);
- always-keep overrides — an error escaped the root, the root ran longer
  than ``slow_threshold`` seconds, or the code marked the trace
  (:func:`mark_keep`: load shedding, deadline expiry, a mining round
  that adopted rules).  A kept skeleton retains root timing, error,
  keep reasons and annotations — degraded but never lost.

Decision provenance follows recording (:func:`recording_trace_id`), so
the ledger only holds records whose traces can actually be looked up.

The active tracer follows the registry's swap pattern:
:func:`get_tracer` / :func:`set_tracer` / :func:`use_tracer`, with
:data:`NULL_TRACER` as the disabled twin (roots become shared no-ops and
``obs.span`` pays a single context-variable read).
"""

from __future__ import annotations

import os
import re
import threading
import time
from collections import deque
from collections.abc import Iterator
from contextlib import contextmanager
from contextvars import ContextVar
from itertools import count

from repro.errors import ObservabilityError

#: The one traceparent version this repo speaks (the W3C one).
TRACEPARENT_VERSION = "00"

#: Strict shape of an accepted ``trace`` field / ``traceparent`` header.
TRACEPARENT_RE = re.compile(r"^00-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$")


# Ids are a per-process random base plus a shared counter, not urandom
# per call: id generation sits on every span open, and a getrandom
# syscall there is measurable at E20's request rates.  The multiplier is
# odd, so counter -> id is a bijection mod 2**64 (no collisions) while
# ids stay visually unordered.
_ID_BASE = os.urandom(8).hex()
_ID_COUNTER = count(1)
_ID_MIX = 0x9E3779B97F4A7C15


def new_trace_id() -> str:
    """A fresh 128-bit trace id as 32 lowercase hex digits.

    Unique across processes via the random per-process base, unique
    within the process via the counter."""
    return _ID_BASE + f"{(next(_ID_COUNTER) * _ID_MIX) & (2**64 - 1):016x}"


def new_span_id() -> str:
    """A fresh 64-bit span id as 16 lowercase hex digits (unique within
    the process, which is all span-tree edges need)."""
    return f"{(next(_ID_COUNTER) * _ID_MIX) & (2**64 - 1):016x}"


class TraceContext:
    """One point in a trace: ids only, no timing.

    ``parent_id`` is the span id of the caller's span (empty for a trace
    root); :meth:`child` derives the context a callee would run under.
    """

    __slots__ = ("trace_id", "span_id", "parent_id")

    def __init__(self, trace_id: str, span_id: str, parent_id: str = "") -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id

    def child(self) -> "TraceContext":
        """A fresh context one level below this one."""
        return TraceContext(self.trace_id, new_span_id(), self.span_id)

    def to_traceparent(self) -> str:
        """Render as a ``traceparent`` string (sampled flag set)."""
        return format_traceparent(self.trace_id, self.span_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TraceContext(trace_id={self.trace_id!r}, "
            f"span_id={self.span_id!r}, parent_id={self.parent_id!r})"
        )


def format_traceparent(trace_id: str, span_id: str, sampled: bool = True) -> str:
    """``00-<trace_id>-<span_id>-<flags>`` with the sampled bit."""
    return f"{TRACEPARENT_VERSION}-{trace_id}-{span_id}-{'01' if sampled else '00'}"


def parse_traceparent(value: str) -> TraceContext:
    """Parse a ``traceparent`` string into a :class:`TraceContext`.

    Strict: anything but version ``00`` with lowercase-hex ids of the
    exact widths raises :class:`~repro.errors.ObservabilityError` — the
    protocol layer maps that onto ``BAD_REQUEST`` for frames, while the
    HTTP shim (per the W3C spec) ignores a malformed header and starts a
    fresh trace.
    """
    match = TRACEPARENT_RE.match(value) if isinstance(value, str) else None
    if match is None:
        raise ObservabilityError(
            f"not a traceparent (want '00-<32 hex>-<16 hex>-<2 hex>'): {value!r}"
        )
    trace_id, span_id, _flags = match.groups()
    return TraceContext(trace_id, span_id)


# ----------------------------------------------------------------------
# the active-span context
# ----------------------------------------------------------------------


class _SpanHandle:
    """One open span: where it hangs in the tree plus its start time."""

    __slots__ = ("builder", "span_id", "parent_id", "name", "labels",
                 "started", "token")

    #: child spans only ever open under a recording root
    recording = True

    def __init__(self, builder: "TraceBuilder", span_id: str, parent_id: str,
                 name: str, labels: dict) -> None:
        self.builder = builder
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.labels = labels
        self.started = time.perf_counter()
        self.token = None

    @property
    def trace_id(self) -> str:
        """The id of the trace this span belongs to."""
        return self.builder.trace_id


#: The innermost open span of the current task/thread (None = untraced).
#: Holds a :class:`_RootSpan` at root level, a :class:`_SpanHandle` below.
_ACTIVE: ContextVar["_SpanHandle | _RootSpan | None"] = ContextVar(
    "repro_trace_active", default=None
)


def current() -> "TraceBuilder | None":
    """The trace being built in this context, or None (one var read)."""
    handle = _ACTIVE.get()
    return handle.builder if handle is not None else None


def current_trace_id() -> str | None:
    """The active trace id, or None — what histogram exemplars carry."""
    handle = _ACTIVE.get()
    return handle.trace_id if handle is not None else None


def recording_trace_id() -> str | None:
    """The active trace id *if the trace is recording*, else None.

    The gate in front of decision-provenance records: skeleton roots
    (unsampled head traffic) skip the per-decision provenance work, so
    the ledger only ever holds records whose traces are retrievable.
    """
    handle = _ACTIVE.get()
    if handle is None or not handle.recording:
        return None
    return handle.builder.trace_id


def enter_child(name: str, labels: dict) -> _SpanHandle | None:
    """Open a child span under the active one; None when untraced.

    This is the hook :class:`repro.obs.registry.Span` calls on enter —
    the single context-variable read is the entire untraced cost.
    Skeleton roots (head sampling said no) skip children entirely.
    """
    parent = _ACTIVE.get()
    if parent is None or not parent.recording:
        return None
    handle = _SpanHandle(
        parent.builder, new_span_id(), parent.span_id, name, labels
    )
    handle.token = _ACTIVE.set(handle)
    return handle


def exit_child(handle: _SpanHandle, error: str | None = None) -> str:
    """Close a child span opened by :func:`enter_child`; returns trace id."""
    _ACTIVE.reset(handle.token)
    builder = handle.builder
    builder.add(handle, time.perf_counter() - handle.started, error)
    return builder.trace_id


def record_span(
    name: str,
    started: float,
    elapsed: float,
    labels: dict | None = None,
    error: str | None = None,
) -> None:
    """Attach an already-timed interval as a child of the active span.

    For work measured with bare ``perf_counter`` calls (the server's
    admission-queue wait) rather than a context manager.  No-op when
    untraced or when the active root is a skeleton.
    """
    parent = _ACTIVE.get()
    if parent is None or not parent.recording:
        return
    handle = _SpanHandle(
        parent.builder, new_span_id(), parent.span_id, name, labels or {}
    )
    handle.started = started
    parent.builder.add(handle, elapsed, error)


def mark_keep(reason: str) -> None:
    """Force-retain the active trace (no-op when untraced).

    The always-keep override for outcomes sampling must not lose: load
    shedding, deadline expiry, a refinement round that adopted rules.
    """
    handle = _ACTIVE.get()
    if handle is not None:
        handle.builder.keep(reason)


def annotate(**fields: object) -> None:
    """Merge key/value annotations into the active trace (no-op untraced)."""
    handle = _ACTIVE.get()
    if handle is not None:
        handle.builder.annotations.update(fields)


# ----------------------------------------------------------------------
# building and retaining traces
# ----------------------------------------------------------------------


class TraceBuilder:
    """The mutable accumulator behind one root span."""

    __slots__ = ("trace_id", "name", "parent", "recording", "started",
                 "spans", "keep_reasons", "annotations")

    def __init__(self, trace_id: str, name: str, parent: str = "",
                 recording: bool = True) -> None:
        self.trace_id = trace_id
        self.name = name
        #: remote parent span id (from a client traceparent), if any
        self.parent = parent
        #: False for skeleton roots: child spans and provenance skipped
        self.recording = recording
        self.started = time.perf_counter()
        self.spans: list[dict] = []
        self.keep_reasons: list[str] = []
        self.annotations: dict = {}

    def add(self, handle: _SpanHandle, elapsed: float, error: str | None) -> None:
        """Record one finished span (offsets relative to the root start)."""
        self.spans.append(
            {
                "span_id": handle.span_id,
                "parent_id": handle.parent_id,
                "name": handle.name,
                "labels": handle.labels,
                "start_ms": round((handle.started - self.started) * 1000.0, 4),
                "duration_ms": round(elapsed * 1000.0, 4),
                "error": error,
            }
        )

    def keep(self, reason: str) -> None:
        """Mark this trace for retention regardless of head sampling."""
        if reason not in self.keep_reasons:
            self.keep_reasons.append(reason)

    def finish(self, duration: float, error: str | None) -> dict:
        """The immutable JSON-ready trace record.

        The wall-clock start is derived here (now minus duration) so the
        hot open path never pays ``time.time()`` for dropped traces.
        """
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "parent_id": self.parent,
            "start_unix": round(time.time() - duration, 6),
            "duration_ms": round(duration * 1000.0, 4),
            "error": error,
            "keep": list(self.keep_reasons),
            "annotations": dict(self.annotations),
            "spans": list(self.spans),
        }


class TraceStore:
    """Bounded, thread-safe ring buffer of retained traces."""

    def __init__(self, capacity: int = 512) -> None:
        if capacity <= 0:
            raise ObservabilityError(
                f"trace store capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self._traces: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def add(self, trace: dict) -> None:
        """Retain one finished trace (evicting the oldest at capacity)."""
        with self._lock:
            self._traces.append(trace)

    def __len__(self) -> int:
        return len(self._traces)

    def get(self, trace_id: str) -> dict | None:
        """The retained trace with this id, or None."""
        with self._lock:
            for trace in reversed(self._traces):
                if trace["trace_id"] == trace_id:
                    return trace
        return None

    def list(self, limit: int = 50) -> list[dict]:
        """Newest-first summaries (no span bodies)."""
        with self._lock:
            newest = list(self._traces)[-limit:][::-1] if limit > 0 else []
        return [self._summary(trace) for trace in newest]

    def slow(self, limit: int = 20) -> list[dict]:
        """Retained traces by descending duration (summaries)."""
        with self._lock:
            ordered = sorted(
                self._traces, key=lambda t: t["duration_ms"], reverse=True
            )
        return [self._summary(trace) for trace in ordered[:limit]]

    def clear(self) -> None:
        """Drop every retained trace."""
        with self._lock:
            self._traces.clear()

    @staticmethod
    def _summary(trace: dict) -> dict:
        summary = {key: value for key, value in trace.items() if key != "spans"}
        summary["spans"] = len(trace["spans"])
        return summary


class _RootSpan:
    """Context manager for one root span; decides retention on exit.

    Doubles as the root's active-span handle.  The skeleton fast path
    (head sampling said no) allocates exactly this one object per
    request — the builder, the ids and their containers materialise
    lazily, only if the trace turns out to be kept (error, slow, an
    explicit :func:`mark_keep`) or something asks for them.  Tracked
    allocations are what drive GC pressure under a loaded event loop,
    and GC is most of tracing's measurable overhead (E20), so the
    dropped-skeleton path must stay at one object and two clock reads.
    """

    __slots__ = ("_tracer", "name", "parent_id", "recording", "span_id",
                 "labels", "started", "token", "_builder", "_trace_id")

    def __init__(self, tracer: "Tracer", name: str, trace_id: str | None,
                 parent: str, sampled: bool) -> None:
        self._tracer = tracer
        self.name = name
        #: remote parent span id (from a client traceparent), if any
        self.parent_id = parent
        #: whether child spans and provenance are being collected
        self.recording = sampled
        self._trace_id = trace_id
        self._builder: TraceBuilder | None = None
        self.labels: dict | None = None
        self.started = 0.0
        self.token = None
        if sampled:
            self._builder = TraceBuilder(trace_id or new_trace_id(),
                                         name, parent)
            self.span_id = new_span_id()
        else:
            # skeletons defer the span id: nothing links to it unless
            # the trace ends up kept, and id generation is hot-path cost
            self.span_id = ""

    @property
    def trace_id(self) -> str:
        """The root's trace id (for response headers etc.), lazily made."""
        builder = self._builder
        if builder is not None:
            return builder.trace_id
        if self._trace_id is None:
            self._trace_id = new_trace_id()
        return self._trace_id

    @property
    def builder(self) -> TraceBuilder:
        """The trace accumulator, materialised on first need."""
        builder = self._builder
        if builder is None:
            builder = TraceBuilder(self.trace_id, self.name, self.parent_id,
                                   recording=False)
            builder.started = self.started
            self._builder = builder
        return builder

    def __enter__(self) -> "_RootSpan":
        self.started = time.perf_counter()
        builder = self._builder
        if builder is not None:
            builder.started = self.started
        self.token = _ACTIVE.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        _ACTIVE.reset(self.token)
        duration = time.perf_counter() - self.started
        error = exc_type.__name__ if exc_type is not None else None
        tracer = self._tracer
        keep = self.recording
        if keep:
            self._builder.keep("head")
        if error is not None:
            self.builder.keep("error")
            keep = True
        if duration >= tracer.slow_threshold:
            self.builder.keep("slow")
            keep = True
        builder = self._builder
        if not keep and builder is not None and builder.keep_reasons:
            keep = True  # an explicit mark_keep during the trace
        if keep:
            # ids and the root span dict are only materialised for
            # retained traces — dropped skeletons never pay for them
            builder = self.builder
            if not self.span_id:
                self.span_id = new_span_id()
            if self.labels is None:
                self.labels = {}
            builder.add(self, duration, error)
            tracer.kept += 1
            tracer.store.add(builder.finish(duration, error))
        else:
            tracer.dropped += 1
        return False


class Tracer:
    """Root-span factory plus the retention policy and store."""

    #: one-attribute guard, mirroring ``MetricsRegistry.enabled``
    enabled = True

    def __init__(
        self,
        sample_every: int = 64,
        slow_threshold: float = 0.050,
        capacity: int = 512,
        store: TraceStore | None = None,
    ) -> None:
        if sample_every <= 0:
            raise ObservabilityError(
                f"sample_every must be positive, got {sample_every}"
            )
        self.sample_every = sample_every
        self.slow_threshold = slow_threshold
        self.store = store if store is not None else TraceStore(capacity)
        # lock-free admission: next() on an itertools counter is atomic
        # under the GIL, so root creation never serialises on a lock
        self._count = count(1)
        self.started = 0
        self.kept = 0
        self.dropped = 0

    def trace(self, name: str, traceparent: str | None = None) -> _RootSpan:
        """Open a root span (a ``with`` block).

        ``traceparent`` links to a remote caller: the trace id is reused
        and the caller's span id becomes the root's parent.  A remote
        parent is always retained — the caller asked to follow this
        request by stamping it.
        """
        parent = ""
        trace_id = None
        if traceparent:
            context = parse_traceparent(traceparent)
            trace_id = context.trace_id
            parent = context.span_id
        index = next(self._count)
        self.started = index
        sampled = bool(parent) or (index - 1) % self.sample_every == 0
        return _RootSpan(self, name, trace_id, parent, sampled)

    def stats(self) -> dict:
        """JSON-ready tracer statistics (the ``stats`` op's ``trace``)."""
        return {
            "enabled": True,
            "started": self.started,
            "kept": self.kept,
            "dropped": self.dropped,
            "stored": len(self.store),
            "capacity": self.store.capacity,
            "sample_every": self.sample_every,
            "slow_threshold_ms": round(self.slow_threshold * 1000.0, 3),
        }


class _NullRoot:
    """A stateless no-op root span (never touches the context var)."""

    __slots__ = ()
    trace_id = ""
    span_id = ""
    recording = False

    def __enter__(self) -> "_NullRoot":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_ROOT = _NullRoot()


class NullTracer(Tracer):
    """The disabled tracer: roots are shared no-ops, nothing is stored."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(sample_every=1, capacity=1)

    def trace(self, name: str, traceparent: str | None = None) -> _NullRoot:  # type: ignore[override]
        """Return the shared no-op root."""
        return _NULL_ROOT

    def stats(self) -> dict:
        """Minimal disabled-tracer statistics."""
        return {"enabled": False, "started": 0, "kept": 0, "dropped": 0,
                "stored": 0, "capacity": 0, "sample_every": 0,
                "slow_threshold_ms": 0.0}


#: The process-wide disabled tracer.
NULL_TRACER = NullTracer()

#: the process-default tracer — live, like the default metrics registry
_DEFAULT_TRACER = Tracer()
_active_tracer: Tracer = _DEFAULT_TRACER


def get_tracer() -> Tracer:
    """The currently active tracer (the live default unless swapped)."""
    return _active_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the active one; returns the previous one."""
    global _active_tracer
    previous = _active_tracer
    _active_tracer = tracer
    return previous


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Make ``tracer`` active inside the ``with`` block, then restore.

    Components capture the tracer at construction (like the registry),
    so swap *before* building the server/daemon under measurement — the
    E20 A/B mechanism.
    """
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "TRACEPARENT_RE",
    "TraceBuilder",
    "TraceContext",
    "TraceStore",
    "Tracer",
    "annotate",
    "current",
    "current_trace_id",
    "enter_child",
    "exit_child",
    "format_traceparent",
    "get_tracer",
    "mark_keep",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
    "record_span",
    "recording_trace_id",
    "set_tracer",
    "use_tracer",
]
