"""Structured JSONL event log — the audit trail of the telemetry layer.

Metrics aggregate; events narrate.  A :class:`JsonlEventSink` attached to a
:class:`~repro.obs.registry.MetricsRegistry` receives one JSON object per
line for every span completion (and any explicit
:meth:`~repro.obs.registry.MetricsRegistry.event` call), so a failed run
leaves a machine-readable trace of what the pipeline did, in order —
PRIMA's own Compliance-Auditing idea turned on the pipeline itself.
"""

from __future__ import annotations

import io
import json
import threading
from pathlib import Path
from typing import IO


class JsonlEventSink:
    """Append-only JSON-lines event writer.

    Accepts either a filesystem path (opened for append, line-buffered by
    ``flush`` after every event so crashes lose nothing) or an existing
    text stream (handy for tests and in-memory capture).  Each event is
    one object: ``{"event": <name>, ...fields}``.

    Thread-safe: the decision service's event loop and the refinement
    daemon's poll thread may share one sink, so each event is serialised
    outside the lock and written as a **single locked write+flush** —
    lines can interleave between events but never within one.
    """

    def __init__(self, target: str | Path | IO[str]) -> None:
        if isinstance(target, (str, Path)):
            self._stream: IO[str] = open(target, "a", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self._lock = threading.Lock()
        self.events_written = 0

    def emit(self, event: str, **fields: object) -> None:
        """Write one event line and flush it (atomic per line)."""
        record: dict[str, object] = {"event": event}
        record.update(fields)
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        with self._lock:
            self._stream.write(line)
            self._stream.flush()
            self.events_written += 1

    def close(self) -> None:
        """Close the underlying stream if this sink opened it."""
        if self._owns_stream and not self._stream.closed:
            self._stream.close()

    def __enter__(self) -> "JsonlEventSink":
        """Context-manager support: ``with JsonlEventSink(path) as sink``."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Close the sink on block exit."""
        self.close()


def memory_sink() -> tuple[JsonlEventSink, io.StringIO]:
    """A sink writing to an in-memory buffer (for tests and inspection)."""
    buffer = io.StringIO()
    return JsonlEventSink(buffer), buffer
