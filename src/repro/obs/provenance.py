"""Decision provenance: *why* each served decision came out as it did.

The audit trail records *what* happened — the 7-attribute schema the
refinement miner consumes, unchanged since PR 0.  This module records
*why*, as an optional side-record per decision, without touching that
schema: which rule revisions matched each category, which snapshot
versions ``{policy, consent, vocab}`` decided, whether the decision
cache hit, how long the request queued and executed, and **which audit
entry indices** the decision appended.  That last link is what lets the
refinement daemon stamp an accepted candidate with the concrete
exception accesses (and their trace ids) that mined it — the
"explanation" the paper's human review step needs, per Fabbri &
LeFevre's explanation-based auditing.

Provenance is recorded only while a trace is active (see
:mod:`repro.obs.trace`): with the NULL tracer installed the whole layer
costs one context-variable read per decision, and the records share the
trace's sampling story.  A :class:`ProvenanceLedger` keeps a bounded
in-memory ring for entry-id → trace-id resolution plus an optional
JSONL spool (``PROVENANCE.jsonl`` next to the store manifest) so the
side-records survive the process.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path

#: File name of the provenance spool inside a store directory.
PROVENANCE_NAME = "PROVENANCE.jsonl"


@dataclass(frozen=True)
class DecisionProvenance:
    """One decision's compact why-record (JSON-ready via :meth:`to_dict`)."""

    trace_id: str
    op: str
    user: str
    role: str
    purpose: str
    #: the response code (``OK``/``DENIED``/``OVERLOADED``/``TIMEOUT``…)
    decision: str
    #: ``regular`` or ``exception`` (break-the-glass bypasses the policy)
    status: str = "regular"
    categories: tuple[str, ...] = ()
    #: category -> policy-store revision of the first covering rule, or
    #: None for a category nothing covered (the deny reason)
    matched_rules: dict = field(default_factory=dict)
    #: the snapshot stamp ``{snapshot, policy, consent, vocab}``
    versions: dict = field(default_factory=dict)
    #: ``hit`` / ``miss`` / ``off`` / ``bypass`` (exception short-circuit)
    cache: str = "off"
    queue_ms: float | None = None
    handle_ms: float | None = None
    #: global append indices of the audit entries this decision wrote
    entry_ids: tuple[int, ...] = ()
    #: milliseconds left of the request deadline when the decision was
    #: taken (what makes an OVERLOADED shed explainable)
    deadline_remaining_ms: float | None = None

    def to_dict(self) -> dict:
        """JSON-ready mapping (the ledger's record shape)."""
        return {
            "trace_id": self.trace_id,
            "op": self.op,
            "user": self.user,
            "role": self.role,
            "purpose": self.purpose,
            "decision": self.decision,
            "status": self.status,
            "categories": list(self.categories),
            "matched_rules": dict(self.matched_rules),
            "versions": dict(self.versions),
            "cache": self.cache,
            "queue_ms": self.queue_ms,
            "handle_ms": self.handle_ms,
            "entry_ids": list(self.entry_ids),
            "deadline_remaining_ms": self.deadline_remaining_ms,
        }


class ProvenanceLedger:
    """Bounded ring of decision side-records, optionally spooled to JSONL.

    Thread-safe: the server's event loop and the daemon's poll thread
    both read it.  The JSONL spool (when a path is given) is buffered —
    flushed every ``flush_every`` records and on :meth:`close` — so the
    hot path pays a dict append, not a syscall.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        capacity: int = 4096,
        flush_every: int = 64,
    ) -> None:
        from collections import deque

        self.path = Path(path) if path is not None else None
        self.capacity = capacity
        self._records: "deque[dict]" = deque(maxlen=capacity)
        self._buffer: list[dict] = []
        self._flush_every = max(1, flush_every)
        self._lock = threading.Lock()
        self.recorded = 0

    def record(self, provenance: "DecisionProvenance | dict") -> None:
        """Append one side-record (accepts the dataclass or a dict)."""
        record = (
            provenance.to_dict()
            if isinstance(provenance, DecisionProvenance)
            else dict(provenance)
        )
        with self._lock:
            self._records.append(record)
            self.recorded += 1
            if self.path is not None:
                self._buffer.append(record)
                if len(self._buffer) >= self._flush_every:
                    self._flush_locked()

    def recent(self, limit: int = 50) -> list[dict]:
        """Newest-first records."""
        with self._lock:
            return list(self._records)[-limit:][::-1] if limit > 0 else []

    def for_trace(self, trace_id: str) -> list[dict]:
        """Every retained record of one trace (oldest first)."""
        with self._lock:
            return [r for r in self._records if r["trace_id"] == trace_id]

    def trace_for_entries(self, entry_ids) -> dict[int, str]:
        """Map audit entry indices onto the trace ids that wrote them.

        Best-effort by design: only decisions inside the retained ring
        (i.e. taken while a trace was active, recently) resolve.  This
        is the lookup the refinement daemon uses to stamp candidates
        with evidence traces.
        """
        wanted = set(entry_ids)
        out: dict[int, str] = {}
        if not wanted:
            return out
        with self._lock:
            for record in self._records:
                for entry_id in record["entry_ids"]:
                    if entry_id in wanted:
                        out[entry_id] = record["trace_id"]
        return out

    def flush(self) -> None:
        """Write buffered records to the JSONL spool (no-op in memory)."""
        with self._lock:
            self._flush_locked()

    def _flush_locked(self) -> None:
        if self.path is None or not self._buffer:
            return
        lines = "".join(
            json.dumps(record, sort_keys=True, default=str) + "\n"
            for record in self._buffer
        )
        self._buffer.clear()
        with open(self.path, "a", encoding="utf-8") as stream:
            stream.write(lines)

    def close(self) -> None:
        """Flush any buffered spool records."""
        self.flush()

    def __len__(self) -> int:
        return len(self._records)


__all__ = ["PROVENANCE_NAME", "DecisionProvenance", "ProvenanceLedger"]
