"""repro.obs — the telemetry layer of the PRIMA reproduction.

PRIMA's thesis is that a privacy system must watch itself; this package
turns that lens on the pipeline: a dependency-free metrics registry
(counters, gauges, log-scale histograms), ``span`` timers that feed
histograms and an optional structured JSONL event log, Prometheus-text and
JSON snapshot exposition, and a no-op :class:`NullRegistry` so
instrumentation costs nothing when disabled (benchmark E15 holds the
instrumented pipeline within 5 % of dark).

Metric names follow ``repro_<pkg>_<name>`` with ``_total`` counters and
``_seconds`` span histograms — see DESIGN.md §8 for the full scheme and
the inventory of instrumented call sites.

Typical use::

    from repro import obs

    reg = obs.get_registry()
    with obs.use_registry(obs.MetricsRegistry()) as reg:   # private scope
        ...run the pipeline...
        print(obs.render_prometheus(reg.snapshot()))
"""

from repro.obs.events import JsonlEventSink, memory_sink
from repro.obs.exposition import (
    load_snapshot,
    render_prometheus,
    render_summary,
    save_snapshot,
)
from repro.obs.logsetup import StructuredFormatter, configure_logging, kv
from repro.obs.metrics import (
    CARDINALITY_BUCKETS,
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    estimate_quantile,
    format_sample,
    log_buckets,
    sample_delta,
)
from repro.obs.provenance import DecisionProvenance, ProvenanceLedger
from repro.obs.registry import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    Span,
)
from repro.obs.runtime import get_registry, set_registry, span, use_registry
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    TraceContext,
    TraceStore,
    Tracer,
    format_traceparent,
    get_tracer,
    parse_traceparent,
    set_tracer,
    use_tracer,
)

__all__ = [
    "CARDINALITY_BUCKETS",
    "DEFAULT_BUCKETS",
    "Counter",
    "DecisionProvenance",
    "Gauge",
    "Histogram",
    "JsonlEventSink",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "ProvenanceLedger",
    "Span",
    "StructuredFormatter",
    "TraceContext",
    "TraceStore",
    "Tracer",
    "configure_logging",
    "estimate_quantile",
    "format_sample",
    "format_traceparent",
    "get_registry",
    "get_tracer",
    "kv",
    "load_snapshot",
    "log_buckets",
    "memory_sink",
    "parse_traceparent",
    "render_prometheus",
    "render_summary",
    "sample_delta",
    "save_snapshot",
    "set_registry",
    "set_tracer",
    "span",
    "use_registry",
    "use_tracer",
]
