"""Structured stdlib-logging configuration for the CLI's ``--verbose``.

The pipeline logs under the ``repro.*`` logger namespace (round summaries
from the refinement loop, denials from enforcement, every span at debug).
By default nothing is emitted — the CLI prints only final numbers — but
``repro --verbose <command>`` routes the whole namespace through one
stderr handler with a structured ``timestamp level module key=value``
line format, which is what makes a failed run diagnosable.
"""

from __future__ import annotations

import logging
import sys
from typing import IO


class StructuredFormatter(logging.Formatter):
    """``timestamp level module message`` with ``key=value`` payloads.

    Messages produced by this repo already carry their variables as
    ``key=value`` tokens (see the span logger and the loop's round
    summaries), so the formatter only needs to prepend the envelope.
    """

    def __init__(self) -> None:
        super().__init__(
            fmt="%(asctime)s %(levelname)-7s %(name)s %(message)s",
            datefmt="%H:%M:%S",
        )


def kv(**fields: object) -> str:
    """Format fields as sorted ``key=value`` tokens for structured lines."""
    return " ".join(f"{key}={value}" for key, value in sorted(fields.items()))


def configure_logging(
    verbose: bool = False, stream: IO[str] | None = None
) -> logging.Logger:
    """Configure the ``repro`` logger namespace; returns its root logger.

    ``verbose=False`` keeps the library quiet (WARNING and above only);
    ``verbose=True`` opens the floodgates at DEBUG, including one line
    per completed span.  Calling again reconfigures idempotently — the
    previously installed handler is replaced, never duplicated.
    """
    logger = logging.getLogger("repro")
    logger.setLevel(logging.DEBUG if verbose else logging.WARNING)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler._repro_obs_handler = True  # type: ignore[attr-defined]
    handler.setFormatter(StructuredFormatter())
    logger.addHandler(handler)
    logger.propagate = False
    return logger
