"""Snapshot exposition: Prometheus text format and JSON files.

Snapshots (see :meth:`repro.obs.registry.MetricsRegistry.snapshot`) are
plain dicts, so they serialise with :mod:`json` directly; this module adds
the Prometheus text rendering (the format every scraper and most humans
already read) and the save/load helpers behind the CLI's
``--metrics-out PATH`` and ``repro metrics`` surfaces.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ObservabilityError


def _format_number(value: float) -> str:
    """Render ints without a trailing ``.0`` (Prometheus convention)."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _labels_text(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in sorted(merged.items()))
    return "{" + inner + "}"


def render_prometheus(snapshot: dict) -> str:
    """Render a snapshot dict in the Prometheus text exposition format.

    Counters and gauges become single samples; histograms expand to the
    conventional ``_bucket{le=…}`` / ``_sum`` / ``_count`` series.  One
    ``# TYPE`` header is emitted per metric name.
    """
    lines: list[str] = []
    typed: set[str] = set()

    def header(name: str, kind: str) -> None:
        if name not in typed:
            lines.append(f"# TYPE {name} {kind}")
            typed.add(name)

    for sample in snapshot.get("counters", []):
        header(sample["name"], "counter")
        lines.append(
            f"{sample['name']}{_labels_text(sample['labels'])} "
            f"{_format_number(sample['value'])}"
        )
    for sample in snapshot.get("gauges", []):
        header(sample["name"], "gauge")
        lines.append(
            f"{sample['name']}{_labels_text(sample['labels'])} "
            f"{_format_number(sample['value'])}"
        )
    for sample in snapshot.get("histograms", []):
        name = sample["name"]
        header(name, "histogram")
        for bucket in sample["buckets"]:
            le = bucket["le"]
            le_text = le if isinstance(le, str) else _format_number(float(le))
            lines.append(
                f"{name}_bucket{_labels_text(sample['labels'], {'le': le_text})} "
                f"{bucket['count']}"
            )
        lines.append(
            f"{name}_sum{_labels_text(sample['labels'])} "
            f"{_format_number(sample['sum'])}"
        )
        lines.append(
            f"{name}_count{_labels_text(sample['labels'])} {sample['count']}"
        )
    return "\n".join(lines) + ("\n" if lines else "")


def render_summary(snapshot: dict) -> str:
    """Human summary of a snapshot: percentiles instead of bucket dumps.

    Counters and gauges render one sample per line; every histogram
    renders as ``count / sum`` plus **p50 / p90 / p99 estimates** from
    log-bucket geometric interpolation
    (:func:`repro.obs.metrics.estimate_quantile`), with ``*_seconds``
    series scaled to milliseconds.  Bucket exemplars — the trace ids the
    tracing layer attaches to latency observations — are listed under
    the histogram so a slow bucket links straight to a
    ``repro trace show <id>`` invocation.
    """
    from repro.obs.metrics import estimate_quantile

    lines: list[str] = []

    def value_text(value: float) -> str:
        return _format_number(float(value))

    for kind in ("counters", "gauges"):
        samples = snapshot.get(kind, [])
        if samples:
            lines.append(f"# {kind}")
            for sample in samples:
                lines.append(
                    f"{sample['name']}{_labels_text(sample['labels'])} "
                    f"{value_text(sample['value'])}"
                )
    histograms = snapshot.get("histograms", [])
    if histograms:
        lines.append("# histograms (p50/p90/p99 via log-bucket interpolation)")
        for sample in histograms:
            name = sample["name"]
            seconds = name.endswith("_seconds")
            quantiles = []
            for q, tag in ((0.5, "p50"), (0.9, "p90"), (0.99, "p99")):
                estimate = estimate_quantile(sample["buckets"], q)
                if estimate is None:
                    quantiles.append(f"{tag}=n/a")
                elif seconds:
                    quantiles.append(f"{tag}={estimate * 1000.0:.3f}ms")
                else:
                    quantiles.append(f"{tag}={estimate:.3g}")
            total = sample["sum"]
            sum_text = f"{total * 1000.0:.3f}ms" if seconds else value_text(total)
            lines.append(
                f"{name}{_labels_text(sample['labels'])} "
                f"count={sample['count']} sum={sum_text} "
                + " ".join(quantiles)
            )
            for exemplar in sample.get("exemplars", []):
                le = exemplar["le"]
                le_text = le if isinstance(le, str) else _format_number(float(le))
                value = exemplar["value"]
                observed = f"{value * 1000.0:.3f}ms" if seconds else f"{value:.6g}"
                lines.append(
                    f"  exemplar le={le_text} value={observed} "
                    f"trace={exemplar['trace_id']}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def render_registry(registry=None) -> str:
    """Prometheus text for a *live* registry (collects, snapshots, renders).

    With no argument the process-active registry is used — this is the
    single call behind the decision service's ``GET /metrics`` endpoint.
    """
    if registry is None:
        from repro.obs.runtime import get_registry

        registry = get_registry()
    return render_prometheus(registry.snapshot())


def save_snapshot(snapshot: dict, path: str | Path) -> Path:
    """Write a snapshot as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_snapshot(path: str | Path) -> dict:
    """Read a snapshot JSON written by :func:`save_snapshot`."""
    try:
        snapshot = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ObservabilityError(f"{path} is not a metrics snapshot: {error}")
    if not isinstance(snapshot, dict):
        raise ObservabilityError(f"{path} is not a metrics snapshot (not an object)")
    return snapshot
