"""The closed refinement loop (Figure 2's process, made executable).

The paper describes refinement as ongoing: run the system, collect audit
entries, refine "at regular intervals or at the request of the
stakeholders", fold accepted rules back in, repeat.  :class:`RefinementLoop`
drives that cycle against any traffic source implementing
:class:`ClinicalEnvironment` (the synthetic hospital in
:mod:`repro.workload` is the main one) and records a
:class:`RoundReport` per round — the data series behind experiment E3.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Protocol

from repro.audit.log import AuditLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parallel.execution import ExecutionPolicy
    from repro.store.durable import DurableAuditLog
from repro.coverage.engine import compute_coverage, compute_entry_coverage
from repro.errors import RefinementError
from repro.obs.metrics import sample_delta
from repro.obs.runtime import get_registry
from repro.policy.grounding import Grounder
from repro.policy.store import PolicyStore
from repro.refinement.engine import RefinementConfig, RefinementResult, refine
from repro.refinement.review import ReviewPolicy
from repro.vocab.vocabulary import Vocabulary

_LOGGER = logging.getLogger("repro.refinement.loop")


class ClinicalEnvironment(Protocol):
    """A traffic source the loop can drive.

    Each call simulates one interval of clinical operation under the
    *current* policy store (enforcement consults it live, so freshly
    accepted rules immediately reduce exception traffic) and returns the
    audit entries generated during the interval.
    """

    def simulate_round(self, round_index: int, store: PolicyStore) -> AuditLog:
        """Produce one interval of audit traffic under ``store``."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class RoundReport:
    """Metrics of one refinement round."""

    round_index: int
    entries: int
    exception_rate: float
    coverage_before: float
    coverage_after: float
    entry_coverage_before: float
    entry_coverage_after: float
    patterns_mined: int
    patterns_useful: int
    rules_accepted: int
    store_size_after: int
    refinement: RefinementResult
    #: what this round contributed to every monotone telemetry sample
    #: (counter values, span-histogram counts/sums) under the registry
    #: active when the loop ran; empty under the null registry.  This is
    #: the series E3-style experiments chart cache behaviour and stage
    #: latency against.
    metrics: dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class LoopResult:
    """All rounds plus the final artifacts."""

    rounds: tuple[RoundReport, ...]
    store: PolicyStore
    cumulative_log: "AuditLog | DurableAuditLog"

    def coverage_series(self) -> tuple[float, ...]:
        """Set-coverage after each round (the E3 headline series)."""
        return tuple(r.coverage_after for r in self.rounds)

    def exception_rate_series(self) -> tuple[float, ...]:
        """Break-the-glass rate per round."""
        return tuple(r.exception_rate for r in self.rounds)

    def metrics_series(self, sample: str | None = None) -> tuple:
        """Per-round telemetry deltas (optionally one sample's series).

        With no argument, the tuple of per-round delta dicts; with a
        sample key (e.g. ``"repro_policy_grounder_cache_hits_total"``)
        the per-round numeric series for that sample, zero-filled where a
        round did not move it.
        """
        if sample is None:
            return tuple(r.metrics for r in self.rounds)
        return tuple(r.metrics.get(sample, 0.0) for r in self.rounds)


class RefinementLoop:
    """Run N rounds of operate → audit → refine → review → amend."""

    def __init__(
        self,
        environment: ClinicalEnvironment,
        store: PolicyStore,
        vocabulary: Vocabulary,
        review: ReviewPolicy,
        config: RefinementConfig | None = None,
        refine_on_cumulative: bool = True,
        cumulative_log: "AuditLog | DurableAuditLog | None" = None,
        execution: "ExecutionPolicy | None" = None,
    ) -> None:
        self.environment = environment
        self.store = store
        self.vocabulary = vocabulary
        self.review = review
        self.config = config or RefinementConfig()
        #: ``execution`` overrides the config's execution policy, so a
        #: caller can parallelise an existing configuration without
        #: rebuilding it: ``RefinementLoop(..., execution=
        #: ExecutionPolicy(workers=4))`` shards every round's refine.
        if execution is not None:
            self.config = replace(self.config, execution=execution)
        #: where the loop accumulates audit history: any AuditLog-protocol
        #: sink (a :class:`~repro.store.durable.DurableAuditLog` makes the
        #: whole loop run off disk — appends are crash-safe and refinement
        #: streams the history instead of holding it in RAM).  None means
        #: a fresh in-memory log per :meth:`run`.
        self.cumulative_log = cumulative_log
        # One grounder for the life of the loop: the store mostly persists
        # between rounds, so expansions memoised (and range masks interned)
        # in round N are free in round N+1.
        self._grounder = Grounder(vocabulary)
        #: refine over everything seen so far (True) or only the latest
        #: round's window (False) — the training-period choice the paper
        #: leaves to the deploying organisation.
        self.refine_on_cumulative = refine_on_cumulative

    def run(self, rounds: int) -> LoopResult:
        """Drive the loop for ``rounds`` intervals."""
        if rounds < 1:
            raise RefinementError(f"the loop needs at least one round, got {rounds}")
        cumulative = (
            self.cumulative_log
            if self.cumulative_log is not None
            else AuditLog(name="cumulative")
        )
        reports: list[RoundReport] = []
        reg = get_registry()
        samples_before = reg.sample_values() if reg.enabled else {}
        for round_index in range(rounds):
            with reg.span("repro_refinement_round"):
                with reg.span("repro_refinement_stage", stage="simulate"):
                    window = self.environment.simulate_round(round_index, self.store)
                if len(window) == 0:
                    raise RefinementError(
                        f"environment produced no audit entries in round {round_index}"
                    )
                cumulative.extend(window)
                target = cumulative if self.refine_on_cumulative else window
                result = refine(
                    self.store.policy(),
                    target,
                    self.vocabulary,
                    self.config,
                    grounder=self._grounder,
                )
                accepted = 0
                with reg.span("repro_refinement_stage", stage="review"):
                    for pattern in result.useful_patterns:
                        if self.review.accept(pattern):
                            accepted += self.store.add(
                                pattern.rule,
                                added_by="loop-review",
                                origin="refinement",
                                note=f"round={round_index}, support={pattern.support}",
                            )
                after = self._coverage_after(target)
            if reg.enabled:
                reg.counter("repro_refinement_rounds_total").inc()
                reg.counter("repro_refinement_rules_accepted_total").inc(accepted)
                reg.counter("repro_refinement_entries_total").inc(len(window))
                samples_after = reg.sample_values()
                round_metrics = sample_delta(samples_before, samples_after)
                samples_before = samples_after
            else:
                round_metrics = {}
            if _LOGGER.isEnabledFor(logging.INFO):
                _LOGGER.info(
                    "round=%d entries=%d exception_rate=%.3f coverage_after=%.3f "
                    "entry_coverage_after=%.3f patterns_mined=%d accepted=%d "
                    "store_size=%d",
                    round_index, len(window), window.exception_rate(), after[0],
                    after[1], len(result.patterns), accepted, len(self.store),
                )
            reports.append(
                RoundReport(
                    round_index=round_index,
                    entries=len(window),
                    exception_rate=window.exception_rate(),
                    coverage_before=result.coverage.ratio,
                    coverage_after=after[0],
                    entry_coverage_before=result.entry_coverage.ratio,
                    entry_coverage_after=after[1],
                    patterns_mined=len(result.patterns),
                    patterns_useful=len(result.useful_patterns),
                    rules_accepted=accepted,
                    store_size_after=len(self.store),
                    refinement=result,
                    metrics=round_metrics,
                )
            )
        return LoopResult(
            rounds=tuple(reports), store=self.store, cumulative_log=cumulative
        )

    def _coverage_after(self, log: "AuditLog | DurableAuditLog") -> tuple[float, float]:
        grounder = self._grounder
        policy = self.store.policy()
        audit_policy = log.to_policy(self.config.mining.attributes)
        set_report = compute_coverage(policy, audit_policy, self.vocabulary, grounder)
        entry_report = compute_entry_coverage(
            policy, iter(audit_policy), self.vocabulary, grounder
        )
        return set_report.ratio, entry_report.ratio
