"""Human review of mined patterns.

The paper is explicit that pruning is where automation stops: "human input
is prudent at this stage to determine which patterns are actually good
practice and which should be investigated or terminated."  This module
models that stage twice over:

- :class:`ReviewQueue` — the interactive artifact: mined patterns waiting
  for a privacy officer's accept / reject / investigate decision, with an
  auditable decision trail, and an ``apply`` step that pushes accepted
  rules into the policy store.
- :class:`ReviewPolicy` implementations — automated stand-ins used by the
  closed-loop experiments (E3 runs accept-all against threshold-gated
  review): :class:`AcceptAll`, :class:`ThresholdReview`,
  :class:`RejectAll`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Protocol

from repro.errors import RefinementError
from repro.mining.patterns import Pattern
from repro.policy.store import PolicyStore


class Decision(str, Enum):
    """Review outcomes a privacy officer can record."""

    PENDING = "pending"
    ACCEPTED = "accepted"
    REJECTED = "rejected"
    INVESTIGATE = "investigate"


@dataclass
class ReviewItem:
    """One pattern awaiting (or past) review."""

    pattern: Pattern
    decision: Decision = Decision.PENDING
    reviewer: str = ""
    note: str = ""


class ReviewQueue:
    """An auditable review queue over mined patterns."""

    def __init__(self, patterns: tuple[Pattern, ...] | list[Pattern] = ()) -> None:
        self._items: list[ReviewItem] = [ReviewItem(p) for p in patterns]

    def add(self, pattern: Pattern) -> ReviewItem:
        """Queue one more pattern for review."""
        item = ReviewItem(pattern)
        self._items.append(item)
        return item

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple[ReviewItem, ...]:
        return tuple(self._items)

    def pending(self) -> tuple[ReviewItem, ...]:
        """Items still awaiting a decision."""
        return tuple(i for i in self._items if i.decision is Decision.PENDING)

    def _find_pending(self, pattern: Pattern) -> ReviewItem:
        for item in self._items:
            if item.pattern == pattern and item.decision is Decision.PENDING:
                return item
        raise RefinementError(f"no pending review item for pattern {pattern}")

    def decide(
        self, pattern: Pattern, decision: Decision, reviewer: str, note: str = ""
    ) -> ReviewItem:
        """Record a decision on a pending pattern."""
        if decision is Decision.PENDING:
            raise RefinementError("a review decision cannot be 'pending'")
        item = self._find_pending(pattern)
        item.decision = decision
        item.reviewer = reviewer
        item.note = note
        return item

    def accept(self, pattern: Pattern, reviewer: str, note: str = "") -> ReviewItem:
        """Record an ACCEPTED decision."""
        return self.decide(pattern, Decision.ACCEPTED, reviewer, note)

    def reject(self, pattern: Pattern, reviewer: str, note: str = "") -> ReviewItem:
        """Record a REJECTED decision."""
        return self.decide(pattern, Decision.REJECTED, reviewer, note)

    def investigate(self, pattern: Pattern, reviewer: str, note: str = "") -> ReviewItem:
        """Flag a pattern for investigation (possible violation)."""
        return self.decide(pattern, Decision.INVESTIGATE, reviewer, note)

    def apply(self, store: PolicyStore) -> int:
        """Push accepted patterns into ``store``; returns rules added.

        Idempotent: rules already active in the store count as unchanged.
        """
        added = 0
        for item in self._items:
            if item.decision is Decision.ACCEPTED:
                added += store.add(
                    item.pattern.rule,
                    added_by=item.reviewer or "review-queue",
                    origin="refinement",
                    note=item.note
                    or f"support={item.pattern.support}, users={item.pattern.distinct_users}",
                )
        return added


class ReviewPolicy(Protocol):
    """Automated review used by the closed-loop driver."""

    def accept(self, pattern: Pattern) -> bool:
        """Decide whether to adopt one useful pattern."""
        ...  # pragma: no cover - protocol


class AcceptAll:
    """Accept every useful pattern (the optimistic upper bound)."""

    def accept(self, pattern: Pattern) -> bool:
        """Always adopt."""
        return True


class RejectAll:
    """Accept nothing (the no-refinement baseline)."""

    def accept(self, pattern: Pattern) -> bool:
        """Never adopt."""
        return False


@dataclass(frozen=True, slots=True)
class ThresholdReview:
    """Accept patterns with enough independent evidence.

    A simple model of a cautious privacy officer: beyond the miner's own
    thresholds, demand ``min_support`` occurrences and ``min_distinct_users``
    distinct staff members before codifying a practice.
    """

    min_support: int = 10
    min_distinct_users: int = 3

    def accept(self, pattern: Pattern) -> bool:
        """Adopt only with enough support and distinct users."""
        return (
            pattern.support >= self.min_support
            and pattern.distinct_users >= self.min_distinct_users
        )
