"""Algorithm 2: ``Refinement`` — the whole pipeline in one call.

``refine`` wires Filter → extractPatterns → Prune exactly as the paper's
pseudocode does, and additionally reports the coverage of the store over
the log before refinement (both semantics — see
:mod:`repro.coverage.engine`), since that is the number the architecture
is trying to move.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.audit.classify import ClassifierConfig
from repro.audit.log import AuditLog
from repro.coverage.engine import (
    CoverageReport,
    EntryCoverageReport,
    compute_coverage,
    compute_entry_coverage,
)
from repro.errors import RefinementError
from repro.mining.patterns import MiningConfig, Pattern, PatternMiner
from repro.obs.runtime import get_registry
from repro.policy.grounding import Grounder
from repro.policy.policy import Policy
from repro.refinement.extract import extract_patterns
from repro.refinement.filtering import filter_practice
from repro.refinement.prune import PruneResult, prune_patterns
from repro.vocab.vocabulary import Vocabulary

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parallel.execution import ExecutionPolicy


@dataclass(frozen=True)
class RefinementConfig:
    """Everything tunable about one refinement run.

    ``mining`` carries the Algorithm 4 parameters (including
    ``index_practice``, which lets the SQL miner index its throwaway
    practice table; the planner's grouped scan makes this unnecessary for
    the default single-pass analysis, and either setting yields identical
    patterns).  ``include_denied``,
    ``exclude_suspected_violations`` and ``classify_scope`` control
    Algorithm 3's filtering (see
    :func:`~repro.refinement.filtering.filter_practice`).  ``execution``
    opts into the sharded parallel path
    (:mod:`repro.parallel`): with ``ExecutionPolicy(workers=N)`` and a
    built-in miner the run is delegated to
    :func:`~repro.parallel.refine.parallel_refine`; custom miners have no
    partial-aggregate form and fall back to the serial pipeline.
    """

    mining: MiningConfig = field(default_factory=MiningConfig)
    miner: PatternMiner | None = None
    include_denied: bool = False
    exclude_suspected_violations: bool = False
    classifier: ClassifierConfig | None = None
    classify_scope: str = "log"
    execution: "ExecutionPolicy | None" = None


@dataclass(frozen=True)
class RefinementResult:
    """Everything one refinement run produced."""

    practice: AuditLog
    patterns: tuple[Pattern, ...]
    useful_patterns: tuple[Pattern, ...]
    pruned_patterns: tuple[Pattern, ...]
    coverage: CoverageReport
    entry_coverage: EntryCoverageReport

    @property
    def candidate_rules(self) -> tuple:
        """The rules the stakeholders are asked to consider."""
        return tuple(pattern.rule for pattern in self.useful_patterns)

    def summary(self) -> str:
        """A short human-readable report."""
        lines = [
            f"practice entries : {len(self.practice)}",
            f"coverage (set)   : {self.coverage.ratio:.1%}",
            f"coverage (entry) : {self.entry_coverage.ratio:.1%}",
            f"patterns mined   : {len(self.patterns)}",
            f"patterns useful  : {len(self.useful_patterns)}",
        ]
        lines.extend(f"  candidate: {pattern}" for pattern in self.useful_patterns)
        return "\n".join(lines)


def refine(
    policy_store: Policy,
    audit_log: AuditLog,
    vocabulary: Vocabulary,
    config: RefinementConfig | None = None,
    grounder: Grounder | None = None,
) -> RefinementResult:
    """Algorithm 2: mine the audit log for rules the policy should gain.

    Parameters mirror the paper's ``Refinement(P_PS, P_AL, V)``; the
    result's :attr:`~RefinementResult.useful_patterns` is the paper's
    ``usefulPatterns`` return value, with evidence attached.

    Pass a shared ``grounder`` when refining repeatedly over one
    vocabulary (the refinement loop does): store rules survive between
    rounds, so their memoised expansions and interned range masks are
    reused instead of re-ground every round.
    """
    cfg = config or RefinementConfig()
    if cfg.execution is not None and cfg.execution.workers > 1:
        from repro.parallel.refine import parallel_refine, supports_parallel_miner

        if supports_parallel_miner(cfg.miner):
            return parallel_refine(policy_store, audit_log, vocabulary, cfg, grounder)
        fallback_reg = get_registry()
        if fallback_reg.enabled:
            fallback_reg.counter(
                "repro_parallel_fallbacks_total", reason="custom_miner"
            ).inc()
    if len(audit_log) == 0:
        raise RefinementError("cannot refine against an empty audit log")

    if grounder is None:
        grounder = Grounder(vocabulary)
    elif grounder.vocabulary is not vocabulary:
        raise RefinementError("refine called with a grounder for a different vocabulary")
    reg = get_registry()
    with reg.span("repro_refinement_stage", stage="coverage"):
        audit_policy = audit_log.to_policy(cfg.mining.attributes)
        coverage = compute_coverage(policy_store, audit_policy, vocabulary, grounder)
        entry_coverage = compute_entry_coverage(
            policy_store, iter(audit_policy), vocabulary, grounder
        )

    with reg.span("repro_refinement_stage", stage="filter"):
        practice = filter_practice(
            audit_log,
            include_denied=cfg.include_denied,
            exclude_suspected_violations=cfg.exclude_suspected_violations,
            classifier_config=cfg.classifier,
            classify_scope=cfg.classify_scope,
        )
    with reg.span("repro_refinement_stage", stage="extract"):
        patterns = extract_patterns(practice, cfg.mining, cfg.miner)
    with reg.span("repro_refinement_stage", stage="prune"):
        prune_result: PruneResult = prune_patterns(
            patterns, policy_store, vocabulary, grounder
        )
    if reg.enabled:
        reg.counter("repro_refinement_runs_total").inc()
        reg.counter("repro_refinement_patterns_mined_total").inc(len(patterns))
        reg.counter("repro_refinement_patterns_useful_total").inc(
            len(prune_result.useful)
        )
        reg.counter("repro_refinement_patterns_pruned_total").inc(
            len(prune_result.pruned)
        )
    return RefinementResult(
        practice=practice,
        patterns=patterns,
        useful_patterns=prune_result.useful,
        pruned_patterns=prune_result.pruned,
        coverage=coverage,
        entry_coverage=entry_coverage,
    )
