"""Algorithm 6: ``Prune`` — drop patterns the policy already covers.

The paper computes the ranges of the policy store and of the mined
patterns, then takes the "set complement": the ground rules derivable
from the patterns that are *not* derivable from the store.  A pattern
survives pruning iff it contributes at least one such novel ground rule.

Pruning is equivalence-based, not syntactic: a ground pattern
``prescription:treatment:nurse`` is pruned by a composite store rule
``medical_records:treatment:nurse`` because the store rule's range
contains it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mining.patterns import Pattern
from repro.policy.grounding import Grounder, Range
from repro.policy.policy import Policy
from repro.vocab.vocabulary import Vocabulary


@dataclass(frozen=True, slots=True)
class PruneResult:
    """Patterns split into novel (useful) and already-covered."""

    useful: tuple[Pattern, ...]
    pruned: tuple[Pattern, ...]
    #: the Algorithm 6 set itself: novel ground rules across all patterns
    novel_range: Range


def prune_patterns(
    patterns: tuple[Pattern, ...] | list[Pattern],
    policy_store: Policy,
    vocabulary: Vocabulary,
    grounder: Grounder | None = None,
) -> PruneResult:
    """Algorithm 6 over mined ``patterns`` and the current ``policy_store``."""
    if grounder is None:
        grounder = Grounder(vocabulary)
    store_mask = grounder.range_of(policy_store).mask
    useful: list[Pattern] = []
    pruned: list[Pattern] = []
    novel_mask = 0
    # Masks from one grounder share one interner, so Algorithm 6's
    # per-pattern "set complement" is a single bitwise and-not.
    for pattern in patterns:
        contribution = grounder.ground_mask(pattern.rule) & ~store_mask
        if contribution:
            useful.append(pattern)
            novel_mask |= contribution
        else:
            pruned.append(pattern)
    return PruneResult(
        useful=tuple(useful),
        pruned=tuple(pruned),
        novel_range=Range.from_mask(novel_mask, grounder.interner),
    )
