"""Algorithm 3: ``Filter`` — isolate the practice entries.

The printed algorithm keeps every rule whose ``status`` is 0, i.e. the
exception-based accesses.  Its *Require* clause, however, says Filter
"returns the non-prohibitions", and Section 4.2 insists violations and
informal practice must be differentiated.  This implementation therefore:

- keeps allowed exception accesses (``op = 1``, ``status = 0``) — the
  paper's practice set;
- drops denied requests (``op = 0``) by default, since a prohibition the
  enforcement layer already stopped is not candidate practice
  (``include_denied=True`` restores the literal printed behaviour, which
  ignores ``op``);
- optionally routes entries through the Section 4.2 violation classifier
  first (``exclude_suspected_violations=True``), so suspected break-in
  attempts never reach the miner.
"""

from __future__ import annotations

from repro.audit.classify import ClassifierConfig, classify_exceptions
from repro.audit.log import AuditLog


def filter_practice(
    log: AuditLog,
    include_denied: bool = False,
    exclude_suspected_violations: bool = False,
    classifier_config: ClassifierConfig | None = None,
) -> AuditLog:
    """Return the practice subset of ``log`` (the paper's ``Practice[]``)."""
    if include_denied:
        practice = log.where(lambda entry: entry.is_exception)
    else:
        practice = log.exceptions()
    if exclude_suspected_violations:
        report = classify_exceptions(log, classifier_config)
        # The classifier's verdict is a function of the entry's lifted rule
        # (support, distinct users and regular echo are rule-level), so
        # excluding by rule drops exactly the suspected entries.
        suspected_rules = {
            item.entry.to_rule()
            for item in report.classified
            if item.verdict == "violation" and item.entry.is_allowed
        }
        practice = practice.where(
            lambda entry: entry.to_rule() not in suspected_rules
        )
    return AuditLog(practice, name=f"{log.name}.practice")
