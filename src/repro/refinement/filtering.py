"""Algorithm 3: ``Filter`` — isolate the practice entries.

The printed algorithm keeps every rule whose ``status`` is 0, i.e. the
exception-based accesses.  Its *Require* clause, however, says Filter
"returns the non-prohibitions", and Section 4.2 insists violations and
informal practice must be differentiated.  This implementation therefore:

- keeps allowed exception accesses (``op = 1``, ``status = 0``) — the
  paper's practice set;
- drops denied requests (``op = 0``) by default, since a prohibition the
  enforcement layer already stopped is not candidate practice
  (``include_denied=True`` restores the literal printed behaviour, which
  ignores ``op``);
- optionally routes entries through the Section 4.2 violation classifier
  first (``exclude_suspected_violations=True``), so suspected break-in
  attempts never reach the miner.

The result is a *view* of ``log``, not a copy: filtering an in-memory
:class:`~repro.audit.log.AuditLog` returns an ``AuditLog`` subset as it
always has, but filtering a disk-backed
:class:`~repro.store.durable.DurableAuditLog` (or any streamed view over
one) returns a lazy, re-iterable
:class:`~repro.store.durable.StreamedAuditView`, so the standalone Filter
path preserves the store's bounded-memory streaming guarantee instead of
materialising the whole trail.

Classification scope
--------------------
``classify_scope`` pins which log the violation classifier sees:

``"log"`` (the default, the historical semantics)
    :func:`~repro.audit.classify.classify_exceptions` runs over the *full*
    input log.  Support and distinct-user counts are computed over the
    allowed exceptions either way, but the full log additionally supplies
    the *regular echo* signal: a combination that also occurs through the
    sanctioned path is rescued as practice even when rare.

``"practice"``
    The classifier sees exactly the practice subset the miner will see.
    No regular (or denied) entries are present, so the regular-echo rescue
    never fires and rare combinations are judged on support and distinct
    users alone — a strictly more suspicious posture.

The two scopes produce different verdicts exactly when a rare exception
combination has a regular echo; ``tests/test_refinement_filter.py`` pins
the divergence.
"""

from __future__ import annotations

from repro.audit.classify import ClassifierConfig, classify_exceptions
from repro.audit.log import AuditLog

#: Valid values of :func:`filter_practice`'s ``classify_scope``.
CLASSIFY_SCOPES: tuple[str, ...] = ("log", "practice")


def filter_practice(
    log: AuditLog,
    include_denied: bool = False,
    exclude_suspected_violations: bool = False,
    classifier_config: ClassifierConfig | None = None,
    classify_scope: str = "log",
) -> AuditLog:
    """Return the practice subset of ``log`` (the paper's ``Practice[]``).

    The return value satisfies the ``AuditLog`` read protocol and shares
    the source's backing: in-memory logs yield in-memory subsets, durable
    logs yield lazy streamed views (nothing is materialised here).
    """
    if classify_scope not in CLASSIFY_SCOPES:
        raise ValueError(
            f"unknown classify_scope {classify_scope!r} "
            f"(choose from {CLASSIFY_SCOPES})"
        )
    if include_denied:
        practice = log.where(lambda entry: entry.is_exception)
    else:
        practice = log.exceptions()
    if exclude_suspected_violations:
        target = practice if classify_scope == "practice" else log
        report = classify_exceptions(target, classifier_config)
        # The classifier's verdict is a function of the entry's lifted rule
        # (support, distinct users and regular echo are rule-level), so
        # excluding by rule drops exactly the suspected entries.
        suspected_rules = {
            item.entry.to_rule()
            for item in report.classified
            if item.verdict == "violation" and item.entry.is_allowed
        }
        practice = practice.where(
            lambda entry: entry.to_rule() not in suspected_rules
        )
    practice.name = f"{log.name}.practice"
    return practice
