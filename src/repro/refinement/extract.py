"""Algorithm 4: ``extractPatterns`` — run the pluggable miner.

The printed algorithm fixes the analysis inputs (``A`` = audit-schema
attributes, ``f`` = 5, ``c`` = more than one distinct user) and delegates
to ``dataAnalysis``.  Here the inputs live in
:class:`~repro.mining.patterns.MiningConfig` (same defaults) and the
back-end is any :class:`~repro.mining.patterns.PatternMiner` — the SQL
miner by default, the Apriori miner as the paper's proposed upgrade.
"""

from __future__ import annotations

from repro.audit.log import AuditLog
from repro.mining.patterns import MiningConfig, Pattern, PatternMiner
from repro.mining.sql_patterns import SqlPatternMiner


def extract_patterns(
    practice: AuditLog,
    config: MiningConfig | None = None,
    miner: PatternMiner | None = None,
) -> tuple[Pattern, ...]:
    """Mine candidate rules from the practice log.

    Parameters default to the paper's Algorithm 4 settings: attributes
    ``(data, purpose, authorized)``, ``f = 5`` (inclusive), distinct
    users ``> 1``, SQL GROUP BY analysis.
    """
    chosen_config = config or MiningConfig()
    chosen_miner = miner if miner is not None else SqlPatternMiner()
    return chosen_miner.mine(practice, chosen_config)
