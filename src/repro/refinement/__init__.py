"""The PRIMA policy refinement pipeline (Section 4.3, Algorithms 2–6).

Public surface:

- :func:`~repro.refinement.engine.refine` — Algorithm 2 in one call.
- :func:`~repro.refinement.filtering.filter_practice` — Algorithm 3.
- :func:`~repro.refinement.extract.extract_patterns` — Algorithm 4.
- :func:`~repro.refinement.prune.prune_patterns` — Algorithm 6.
- :class:`~repro.refinement.review.ReviewQueue` and the automated
  :class:`ReviewPolicy` implementations.
- :class:`~repro.refinement.loop.RefinementLoop` — the closed loop.
"""

from repro.refinement.engine import RefinementConfig, RefinementResult, refine
from repro.refinement.extract import extract_patterns
from repro.refinement.filtering import filter_practice
from repro.refinement.loop import (
    ClinicalEnvironment,
    LoopResult,
    RefinementLoop,
    RoundReport,
)
from repro.refinement.prune import PruneResult, prune_patterns
from repro.refinement.review import (
    AcceptAll,
    Decision,
    RejectAll,
    ReviewItem,
    ReviewPolicy,
    ReviewQueue,
    ThresholdReview,
)

__all__ = [
    "AcceptAll",
    "ClinicalEnvironment",
    "Decision",
    "LoopResult",
    "PruneResult",
    "RefinementConfig",
    "RefinementLoop",
    "RefinementResult",
    "RejectAll",
    "ReviewItem",
    "ReviewPolicy",
    "ReviewQueue",
    "RoundReport",
    "ThresholdReview",
    "extract_patterns",
    "filter_practice",
    "prune_patterns",
    "refine",
]
