"""Append-only segment files: the writer, the scanner, random reads.

A segment is one bounded, append-only file of framed audit records (see
:mod:`repro.store.codec`).  Readers work a segment at a time: segments
are bounded by the store's rotation limits, so holding one segment's
bytes while decoding keeps memory proportional to the segment size, never
the log size.

:func:`scan_segment` is the recovery and streaming primitive — it decodes
every committed record and reports exactly where the valid prefix ends,
so a torn tail can be truncated without guessing.
"""

from __future__ import annotations

import os
import struct
import zlib
from collections.abc import Callable, Iterator
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO

from repro.audit.entry import AuditEntry
from repro.errors import StoreError
from repro.store.codec import (
    FRAME_OVERHEAD,
    HEADER_SIZE,
    SEGMENT_HEADER,
    decode_payload,
    encode_record,
    read_frame,
)


def segment_name(index: int) -> str:
    """The canonical file name of segment number ``index``."""
    return f"seg-{index:08d}.seg"


@dataclass(frozen=True)
class SegmentScan:
    """What :func:`scan_segment` learned about one segment file.

    ``valid_bytes`` is the offset where the checksum-valid prefix ends;
    ``torn`` is True when bytes exist past that offset (a torn or corrupt
    tail).  ``first_time``/``last_time`` are None for an empty segment.
    """

    entries: int
    valid_bytes: int
    torn: bool
    first_time: int | None
    last_time: int | None


def check_header(raw: bytes, path: Path) -> None:
    """Raise :class:`~repro.errors.StoreError` unless ``raw`` starts with
    a well-formed segment header."""
    if raw[:HEADER_SIZE] != SEGMENT_HEADER:
        raise StoreError(
            f"{path} is not a v{SEGMENT_HEADER[4]} audit segment "
            f"(bad magic/version in header)"
        )


def scan_segment(
    path: str | Path,
    visit: Callable[[int, AuditEntry], None] | None = None,
) -> SegmentScan:
    """Decode every committed record of the segment at ``path``.

    ``visit(offset, entry)`` is called for each record (recovery uses it
    to rebuild the active segment's in-memory index).  A file shorter
    than the header counts as fully torn (``valid_bytes`` is then the
    header size the rewritten file must be truncated to).
    """
    source = Path(path)
    raw = source.read_bytes()
    if len(raw) < HEADER_SIZE:
        return SegmentScan(
            entries=0, valid_bytes=HEADER_SIZE, torn=True,
            first_time=None, last_time=None,
        )
    check_header(raw, source)
    offset = HEADER_SIZE
    entries = 0
    first_time: int | None = None
    last_time: int | None = None
    while True:
        result = read_frame(raw, offset)
        if result is None:
            break
        payload, next_offset = result
        try:
            entry = decode_payload(payload)
        except StoreError:
            break  # checksum-valid but undecodable: treat as end of prefix
        if visit is not None:
            visit(offset, entry)
        if first_time is None:
            first_time = entry.time
        last_time = entry.time
        entries += 1
        offset = next_offset
    return SegmentScan(
        entries=entries,
        valid_bytes=offset,
        torn=offset < len(raw),
        first_time=first_time,
        last_time=last_time,
    )


def iter_segment(path: str | Path, start_offset: int = HEADER_SIZE) -> Iterator[AuditEntry]:
    """Yield every committed entry of a segment, from ``start_offset`` on.

    Stops silently at the first invalid frame (the scan/recovery path is
    responsible for deciding whether that is acceptable); use
    :func:`scan_segment` when the end position matters.
    """
    raw = Path(path).read_bytes()
    if len(raw) < HEADER_SIZE:
        return
    check_header(raw, Path(path))
    offset = start_offset
    while True:
        result = read_frame(raw, offset)
        if result is None:
            return
        payload, offset = result
        yield decode_payload(payload)


def read_record_at(handle: BinaryIO, offset: int) -> AuditEntry:
    """Random-access read of the record starting at byte ``offset``.

    Used by index-driven lookups; raises :class:`~repro.errors.StoreError`
    when the frame at ``offset`` is invalid.
    """
    handle.seek(offset)
    header = handle.read(FRAME_OVERHEAD)
    if len(header) != FRAME_OVERHEAD:
        raise StoreError(f"no record frame at offset {offset}")
    length, crc = struct.unpack("<II", header)
    payload = handle.read(length)
    if len(payload) != length or zlib.crc32(payload) != crc:
        raise StoreError(f"corrupt record frame at offset {offset}")
    return decode_payload(payload)


class SegmentWriter:
    """Appends framed records to one segment file.

    The writer owns the file handle and tracks the segment's entry count,
    byte size and time bounds.  Flushing and fsync policy live in the
    store — the writer only exposes the primitives.
    """

    def __init__(
        self,
        path: str | Path,
        create: bool,
        entries: int = 0,
        size: int = HEADER_SIZE,
        first_time: int | None = None,
        last_time: int | None = None,
    ) -> None:
        self.path = Path(path)
        if create:
            self._handle = self.path.open("wb")
            self._handle.write(SEGMENT_HEADER)
            self._handle.flush()
            self.entries = 0
            self.size = HEADER_SIZE
            self.first_time: int | None = None
            self.last_time: int | None = None
        else:
            self._handle = self.path.open("ab")
            self.entries = entries
            self.size = size
            self.first_time = first_time
            self.last_time = last_time

    @property
    def name(self) -> str:
        """The segment's file name."""
        return self.path.name

    def append(self, entry: AuditEntry) -> tuple[int, int]:
        """Write one record; returns ``(record_offset, bytes_written)``."""
        record = encode_record(entry)
        offset = self.size
        self._handle.write(record)
        self.size += len(record)
        self.entries += 1
        if self.first_time is None:
            self.first_time = entry.time
        self.last_time = entry.time
        return offset, len(record)

    def flush(self, sync: bool = False) -> None:
        """Flush Python buffers; with ``sync`` also fsync to stable storage."""
        self._handle.flush()
        if sync:
            os.fsync(self._handle.fileno())

    def close(self, sync: bool = True) -> None:
        """Flush (optionally fsync) and close the file handle."""
        if self._handle.closed:
            return
        self.flush(sync=sync)
        self._handle.close()
