"""The store manifest: the single source of truth for segment layout.

``MANIFEST.json`` records every sealed segment (with entry counts, byte
sizes and time bounds — the metadata window scans prune on) plus the name
of the active segment and the next segment number.  It is only ever
replaced whole, via write-to-temp → fsync → :func:`os.replace` → fsync of
the directory, so a crash leaves either the old manifest or the new one,
never a partial file.  Record data never lives here: appends touch only
the active segment file, and the manifest changes only on seal,
compaction, or store creation.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import StoreError

#: File name of the manifest inside a store directory.
MANIFEST_NAME: str = "MANIFEST.json"

#: Manifest schema version.
MANIFEST_FORMAT: int = 1


@dataclass(frozen=True)
class SegmentMeta:
    """Metadata of one sealed segment, as recorded in the manifest."""

    name: str
    entries: int
    size: int
    first_time: int | None
    last_time: int | None

    def to_dict(self) -> dict:
        """JSON-ready mapping."""
        return {
            "name": self.name,
            "entries": self.entries,
            "size": self.size,
            "first_time": self.first_time,
            "last_time": self.last_time,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SegmentMeta":
        """Rebuild from a manifest JSON mapping."""
        try:
            return cls(
                name=str(payload["name"]),
                entries=int(payload["entries"]),
                size=int(payload["size"]),
                first_time=payload["first_time"],
                last_time=payload["last_time"],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreError(f"malformed segment metadata: {exc}") from exc


@dataclass
class Manifest:
    """The mutable in-memory image of ``MANIFEST.json``."""

    active: str
    next_segment: int
    sealed: list[SegmentMeta] = field(default_factory=list)

    def sealed_entries(self) -> int:
        """Total committed entries across sealed segments."""
        return sum(meta.entries for meta in self.sealed)

    def to_dict(self) -> dict:
        """JSON-ready mapping."""
        return {
            "format": MANIFEST_FORMAT,
            "active": self.active,
            "next_segment": self.next_segment,
            "sealed": [meta.to_dict() for meta in self.sealed],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Manifest":
        """Rebuild from parsed manifest JSON."""
        try:
            if payload["format"] != MANIFEST_FORMAT:
                raise StoreError(
                    f"unsupported manifest format {payload['format']!r} "
                    f"(this build reads format {MANIFEST_FORMAT})"
                )
            return cls(
                active=str(payload["active"]),
                next_segment=int(payload["next_segment"]),
                sealed=[SegmentMeta.from_dict(item) for item in payload["sealed"]],
            )
        except StoreError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreError(f"malformed manifest: {exc}") from exc


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically and durably.

    The temp file is fsynced before the rename and the parent directory
    after it, so after a crash the path holds either the previous content
    or ``data`` in full.  (Directory fsync is best-effort on platforms
    that refuse it.)
    """
    temp = path.with_name(path.name + ".tmp")
    with temp.open("wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)
    try:
        directory_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-specific
        return
    try:
        os.fsync(directory_fd)
    except OSError:  # pragma: no cover - platform-specific
        pass
    finally:
        os.close(directory_fd)


def manifest_path(directory: str | Path) -> Path:
    """Path of the manifest file inside ``directory``."""
    return Path(directory) / MANIFEST_NAME


def save_manifest(directory: str | Path, manifest: Manifest) -> None:
    """Atomically replace the manifest of the store at ``directory``."""
    data = (json.dumps(manifest.to_dict(), indent=2, sort_keys=True) + "\n").encode(
        "utf-8"
    )
    atomic_write_bytes(manifest_path(directory), data)


def load_manifest(directory: str | Path) -> Manifest:
    """Read and validate the manifest of the store at ``directory``."""
    path = manifest_path(directory)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise StoreError(f"{path} is not valid JSON: {exc}") from exc
    return Manifest.from_dict(payload)
