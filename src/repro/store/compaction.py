"""Offline compaction of sealed segments.

Rotation keeps appends cheap but leaves a long chain of small sealed
segments behind; compaction rewrites them into the fewest segments that
respect the size bound, rebuilding indexes along the way.  The active
segment is never touched, record order and content are preserved
byte-for-byte at the entry level, and the swap is crash-safe: new
segments are written and fsynced first, the manifest replacement is the
single atomic commit point, and only then are the old files deleted
(stale files left by a crash before deletion are orphans a later
compaction ignores).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StoreError
from repro.store.index import IndexBuilder, index_path, save_index
from repro.store.manifest import SegmentMeta, save_manifest
from repro.store.segment import SegmentWriter, iter_segment, segment_name
from repro.store.store import AuditStore


@dataclass(frozen=True)
class CompactionReport:
    """What one compaction pass did."""

    segments_before: int
    segments_after: int
    entries: int
    bytes_before: int
    bytes_after: int

    @property
    def changed(self) -> bool:
        """True when the pass rewrote anything."""
        return self.segments_before != self.segments_after

    def summary(self) -> str:
        """One human-readable line, CLI-ready."""
        if not self.changed:
            return (
                f"compaction: nothing to do "
                f"({self.segments_before} sealed segments)"
            )
        return (
            f"compaction: {self.segments_before} -> {self.segments_after} sealed "
            f"segments, {self.entries} entries, "
            f"{self.bytes_before} -> {self.bytes_after} bytes"
        )


def compact_store(
    store: AuditStore, target_bytes: int | None = None
) -> CompactionReport:
    """Merge the store's sealed segments into full-sized ones.

    ``target_bytes`` defaults to the store's rotation bound.  Returns a
    :class:`CompactionReport`; a store with fewer than two sealed
    segments is left untouched.
    """
    store._check_open()
    target = target_bytes or store.config.max_segment_bytes
    if target < 16:
        raise StoreError(f"compaction target of {target} bytes is too small")
    old = list(store._manifest.sealed)
    bytes_before = sum(meta.size for meta in old)
    if len(old) < 2:
        return CompactionReport(
            segments_before=len(old),
            segments_after=len(old),
            entries=sum(meta.entries for meta in old),
            bytes_before=bytes_before,
            bytes_after=bytes_before,
        )

    new_metas: list[SegmentMeta] = []
    next_id = store._manifest.next_segment
    writer: SegmentWriter | None = None
    builder: IndexBuilder | None = None

    def seal_current() -> None:
        nonlocal writer, builder
        if writer is None or builder is None:
            return
        writer.flush(sync=True)
        save_index(writer.path, builder.index)
        new_metas.append(
            SegmentMeta(
                name=writer.name,
                entries=writer.entries,
                size=writer.size,
                first_time=writer.first_time,
                last_time=writer.last_time,
            )
        )
        writer.close(sync=False)
        writer = None
        builder = None

    entries = 0
    for meta in old:
        for entry in iter_segment(store.directory / meta.name):
            if writer is not None and writer.size >= target:
                seal_current()
            if writer is None:
                writer = SegmentWriter(
                    store.directory / segment_name(next_id), create=True
                )
                builder = IndexBuilder(store.config.time_index_stride)
                next_id += 1
            offset, _ = writer.append(entry)
            builder.add(offset, entry)
            entries += 1
    seal_current()

    # The atomic commit point: the manifest flips from the old sealed
    # chain to the new one in a single rename.
    store._manifest.sealed = new_metas
    store._manifest.next_segment = next_id
    save_manifest(store.directory, store._manifest)
    store._index_cache.clear()
    for meta in old:
        (store.directory / meta.name).unlink(missing_ok=True)
        index_path(store.directory / meta.name).unlink(missing_ok=True)
    if store._obs.enabled:
        store._obs.counter("repro_store_compactions_total").inc()
    return CompactionReport(
        segments_before=len(old),
        segments_after=len(new_metas),
        entries=entries,
        bytes_before=bytes_before,
        bytes_after=sum(meta.size for meta in new_metas),
    )
