"""Binary record codec for the durable audit store.

Segment files hold a fixed 8-byte header followed by length-prefixed,
checksummed records — the standard write-ahead-log frame:

.. code-block:: text

    segment  := header record*
    header   := magic(4) version(u16) flags(u16)
    record   := length(u32) crc32(u32) payload(length bytes)
    payload  := time(u64) op(u8) status(u8) str(user) str(data)
                str(purpose) str(authorized) str(truth)
    str      := byte_length(u32) utf8_bytes

All integers are little-endian.  The CRC covers the payload only, so a
torn write (the process died mid-``write``) is detectable as either a
short header, a short payload, or a checksum mismatch — recovery
truncates the file back to the last frame that passes all three checks.
The evaluation-only ``truth`` label is stored (like the JSONL format, and
unlike CSV) so a durable log round-trips everything the in-memory log
holds.
"""

from __future__ import annotations

import struct
import zlib

from repro.audit.entry import AuditEntry
from repro.audit.schema import AccessOp, AccessStatus
from repro.errors import AuditError, StoreError

#: First bytes of every segment file ("PRima Audit Segment").
MAGIC: bytes = b"PRAS"

#: On-disk format version stamped into every segment header.
FORMAT_VERSION: int = 1

#: The 8-byte segment header (magic + version + reserved flags).
SEGMENT_HEADER: bytes = MAGIC + struct.pack("<HH", FORMAT_VERSION, 0)

#: Bytes before the first record of a segment.
HEADER_SIZE: int = len(SEGMENT_HEADER)

#: Bytes of frame overhead per record (length prefix + CRC).
FRAME_OVERHEAD: int = 8

#: Sanity bound: a length prefix above this means the frame is garbage
#: (torn or corrupt), not a legitimate record.
MAX_RECORD_BYTES: int = 1 << 24

_FRAME = struct.Struct("<II")
_FIXED = struct.Struct("<QBB")
_STRLEN = struct.Struct("<I")


def encode_payload(entry: AuditEntry) -> bytes:
    """Serialise one :class:`~repro.audit.entry.AuditEntry` to payload bytes."""
    parts = [_FIXED.pack(entry.time, int(entry.op), int(entry.status))]
    for value in (entry.user, entry.data, entry.purpose, entry.authorized, entry.truth):
        raw = value.encode("utf-8")
        parts.append(_STRLEN.pack(len(raw)))
        parts.append(raw)
    return b"".join(parts)


def decode_payload(payload: bytes) -> AuditEntry:
    """Rebuild an :class:`~repro.audit.entry.AuditEntry` from payload bytes."""
    try:
        time, op, status = _FIXED.unpack_from(payload, 0)
        offset = _FIXED.size
        strings = []
        for _ in range(5):
            (length,) = _STRLEN.unpack_from(payload, offset)
            offset += _STRLEN.size
            end = offset + length
            if end > len(payload):
                raise StoreError("string field runs past the end of the payload")
            strings.append(payload[offset:end].decode("utf-8"))
            offset = end
        if offset != len(payload):
            raise StoreError(f"{len(payload) - offset} trailing bytes in payload")
        user, data, purpose, authorized, truth = strings
        return AuditEntry(
            time=time,
            op=AccessOp(op),
            user=user,
            data=data,
            purpose=purpose,
            authorized=authorized,
            status=AccessStatus(status),
            truth=truth,
        )
    except StoreError:
        raise
    except (struct.error, UnicodeDecodeError, ValueError, AuditError) as exc:
        raise StoreError(f"undecodable audit record payload: {exc}") from exc


def frame(payload: bytes) -> bytes:
    """Wrap ``payload`` in the length + CRC32 record frame."""
    if len(payload) > MAX_RECORD_BYTES:
        raise StoreError(
            f"record payload of {len(payload)} bytes exceeds the "
            f"{MAX_RECORD_BYTES}-byte frame limit"
        )
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def encode_record(entry: AuditEntry) -> bytes:
    """Serialise one entry as a complete framed record."""
    return frame(encode_payload(entry))


def read_frame(buffer: bytes, offset: int) -> tuple[bytes, int] | None:
    """Read one frame from ``buffer`` at ``offset``.

    Returns ``(payload, next_offset)`` for a complete, checksum-valid
    frame, or ``None`` when the bytes from ``offset`` onward do not form
    one — a torn tail (short header, short payload, oversized length, or
    CRC mismatch).  Callers decide whether ``None`` means "truncate here"
    (recovery) or "corrupt store" (verification).
    """
    if offset + _FRAME.size > len(buffer):
        return None
    length, crc = _FRAME.unpack_from(buffer, offset)
    if length > MAX_RECORD_BYTES:
        return None
    start = offset + _FRAME.size
    end = start + length
    if end > len(buffer):
        return None
    payload = buffer[start:end]
    if zlib.crc32(payload) != crc:
        return None
    return payload, end
