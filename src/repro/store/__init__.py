"""Durable segmented audit storage (the on-disk ``P_AL``).

The PRIMA architecture treats the audit trail as a large, continuously
growing object that analyses stream over incrementally; this package is
the storage engine for that shape of workload:

- :class:`~repro.store.store.AuditStore` — crash-safe segmented append
  log: CRC32-framed records, size/entry rotation, atomic manifest,
  torn-tail recovery, per-segment hash + sparse time indexes, offline
  compaction, configurable fsync policy.
- :class:`~repro.store.durable.DurableAuditLog` — the
  :class:`~repro.audit.log.AuditLog`-protocol face of a store, with
  streaming views, so auditing, federation, refinement and coverage can
  run straight off disk.

See DESIGN.md §9 for the on-disk format and recovery invariants, and
EXPERIMENTS.md E16 for the throughput/recovery/memory numbers.
"""

from repro.store.compaction import CompactionReport, compact_store
from repro.store.durable import (
    AuditReadOps,
    DurableAuditLog,
    StreamedAuditView,
    copy_to_durable,
)
from repro.store.store import (
    AuditStore,
    RecoveryReport,
    StoreConfig,
    StoreStats,
    VerifyReport,
)

__all__ = [
    "AuditReadOps",
    "AuditStore",
    "CompactionReport",
    "DurableAuditLog",
    "RecoveryReport",
    "StoreConfig",
    "StoreStats",
    "StreamedAuditView",
    "VerifyReport",
    "compact_store",
    "copy_to_durable",
]
