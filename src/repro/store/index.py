"""Per-segment indexes: hash lookups and sparse time seeks.

Each sealed segment carries a JSON sidecar (``<segment>.idx.json``) with

- a **hash index** per lookup attribute (``user``, ``data``, ``purpose``):
  value → sorted record byte offsets, for point lookups without a scan;
- a **sparse time index**: ``(time, offset)`` for every *stride*-th record
  (and always the first), so a window scan seeks close to ``start``
  instead of decoding the whole segment.

Indexes are derivative — they can always be rebuilt from the segment —
so they are written with the same atomic replace as the manifest but are
*not* required for correctness: a missing sidecar downgrades reads to a
segment scan.  The active segment keeps the same structure in memory
(:class:`IndexBuilder`), fed record-by-record on append and replayed by
recovery, so lookups cover unsealed data too.
"""

from __future__ import annotations

import bisect
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.audit.entry import AuditEntry
from repro.errors import StoreError
from repro.store.codec import HEADER_SIZE
from repro.store.manifest import atomic_write_bytes

#: The audit attributes hash-indexed per segment.
INDEXED_ATTRIBUTES: tuple[str, ...] = ("user", "data", "purpose")

#: Index sidecar schema version.
INDEX_FORMAT: int = 1

#: Default record stride of the sparse time index.
DEFAULT_TIME_STRIDE: int = 64


@dataclass
class SegmentIndex:
    """The queryable index of one segment."""

    entries: int = 0
    stride: int = DEFAULT_TIME_STRIDE
    by: dict[str, dict[str, list[int]]] = field(
        default_factory=lambda: {attr: {} for attr in INDEXED_ATTRIBUTES}
    )
    times: list[tuple[int, int]] = field(default_factory=list)

    def offsets_for(self, attribute: str, value: str) -> list[int]:
        """Record offsets whose ``attribute`` equals ``value`` (sorted)."""
        if attribute not in self.by:
            raise StoreError(
                f"attribute {attribute!r} is not indexed "
                f"(indexed: {INDEXED_ATTRIBUTES})"
            )
        return self.by[attribute].get(value, [])

    def seek_offset(self, start_time: int) -> int:
        """A byte offset at or before the first record with
        ``time >= start_time`` — where a window scan should begin."""
        if not self.times:
            return HEADER_SIZE
        position = bisect.bisect_right([t for t, _ in self.times], start_time) - 1
        if position < 0:
            return HEADER_SIZE
        return self.times[position][1]

    def to_dict(self) -> dict:
        """JSON-ready mapping."""
        return {
            "format": INDEX_FORMAT,
            "entries": self.entries,
            "stride": self.stride,
            "by": self.by,
            "times": [[time, offset] for time, offset in self.times],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SegmentIndex":
        """Rebuild from sidecar JSON."""
        try:
            if payload["format"] != INDEX_FORMAT:
                raise StoreError(
                    f"unsupported index format {payload['format']!r}"
                )
            return cls(
                entries=int(payload["entries"]),
                stride=int(payload["stride"]),
                by={
                    attr: {
                        value: list(map(int, offsets))
                        for value, offsets in payload["by"].get(attr, {}).items()
                    }
                    for attr in INDEXED_ATTRIBUTES
                },
                times=[(int(t), int(o)) for t, o in payload["times"]],
            )
        except StoreError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreError(f"malformed segment index: {exc}") from exc


class IndexBuilder:
    """Accumulates a :class:`SegmentIndex` record-by-record.

    The store feeds it on every append (and recovery replays the active
    segment through it), so the index of the active segment is always
    current in memory and is simply serialised at seal time.
    """

    def __init__(self, stride: int = DEFAULT_TIME_STRIDE) -> None:
        if stride < 1:
            raise StoreError(f"time-index stride must be >= 1, got {stride}")
        self._index = SegmentIndex(stride=stride)

    def add(self, offset: int, entry: AuditEntry) -> None:
        """Record one appended entry at byte ``offset``."""
        index = self._index
        for attribute in INDEXED_ATTRIBUTES:
            index.by[attribute].setdefault(getattr(entry, attribute), []).append(offset)
        if index.entries % index.stride == 0:
            index.times.append((entry.time, offset))
        index.entries += 1

    @property
    def index(self) -> SegmentIndex:
        """The live index (shared, not a copy)."""
        return self._index


def index_path(segment_path: str | Path) -> Path:
    """Sidecar path of the index for the segment at ``segment_path``."""
    path = Path(segment_path)
    return path.with_name(path.name + ".idx.json")


def save_index(segment_path: str | Path, index: SegmentIndex) -> Path:
    """Atomically write the sidecar index for a sealed segment."""
    target = index_path(segment_path)
    atomic_write_bytes(
        target, (json.dumps(index.to_dict(), sort_keys=True) + "\n").encode("utf-8")
    )
    return target


def load_index(segment_path: str | Path) -> SegmentIndex | None:
    """Load a segment's sidecar index; None when the sidecar is missing."""
    source = index_path(segment_path)
    if not source.exists():
        return None
    try:
        payload = json.loads(source.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise StoreError(f"{source} is not valid JSON: {exc}") from exc
    return SegmentIndex.from_dict(payload)


def build_index(
    segment_path: str | Path, stride: int = DEFAULT_TIME_STRIDE
) -> SegmentIndex:
    """Rebuild a segment's index by scanning the segment file."""
    from repro.store.segment import scan_segment

    builder = IndexBuilder(stride=stride)
    scan_segment(segment_path, visit=builder.add)
    return builder.index
