"""A disk-backed audit log satisfying the ``AuditLog`` read protocol.

:class:`DurableAuditLog` looks like :class:`~repro.audit.log.AuditLog` to
every consumer — the refinement engine and loop, the coverage trackers,
the federation, the enforcement replay — but is backed by an
:class:`~repro.store.store.AuditStore`, so appends are crash-safe and
reads *stream* off disk instead of materialising the log.  Derived
subsets (``window``, ``where``, ``exceptions`` …) come back as
:class:`StreamedAuditView` objects: re-iterable, lazily filtered views
that themselves satisfy the read protocol, so chained slicing never
copies entries into memory.

The shared method implementations live in :class:`AuditReadOps`; both the
durable log and its views inherit them, guaranteeing the two agree on the
semantics of every derived readout (the round-trip property suite pins
this against the in-memory implementation).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable, Iterator
from pathlib import Path

from repro.audit.entry import AuditEntry
from repro.audit.log import AuditLog
from repro.audit.schema import (
    RULE_ATTRIBUTES,
    audit_table_schema,
    create_audit_indexes,
)
from repro.errors import AuditError
from repro.policy.policy import Policy, PolicySource
from repro.sqlmini.database import Database
from repro.sqlmini.table import Table
from repro.store.store import AuditStore, StoreConfig, StoreStats, VerifyReport


class AuditReadOps:
    """The derived read operations every audit-log shape shares.

    Subclasses provide ``__iter__`` (re-iterable), ``name`` and
    ``where``; everything else — the slicing, statistics and conversion
    surface of :class:`~repro.audit.log.AuditLog` — is implemented here
    over streaming iteration.
    """

    name: str

    def __iter__(self) -> Iterator[AuditEntry]:
        """Stream the entries (subclass responsibility)."""
        raise NotImplementedError

    def where(self, predicate: Callable[[AuditEntry], bool]) -> "StreamedAuditView":
        """Entries satisfying ``predicate``, as a lazy streaming view."""
        return StreamedAuditView(
            lambda: (entry for entry in self if predicate(entry)), name=self.name
        )

    def window(self, start: int, end: int) -> "StreamedAuditView":
        """Entries with ``start <= time < end`` (a training window)."""
        view = self.where(lambda entry: start <= entry.time < end)
        view.name = f"{self.name}[{start}:{end}]"
        return view

    def exceptions(self) -> "StreamedAuditView":
        """The break-the-glass subset (allowed, status = exception)."""
        return self.where(lambda e: e.is_exception and e.is_allowed)

    def regular(self) -> "StreamedAuditView":
        """The sanctioned subset (allowed, status = regular)."""
        return self.where(lambda e: not e.is_exception and e.is_allowed)

    def denials(self) -> "StreamedAuditView":
        """Requests the enforcement layer refused (op = deny)."""
        return self.where(lambda e: not e.is_allowed)

    def distinct_users(self) -> tuple[str, ...]:
        """Sorted distinct user ids appearing in the log."""
        return tuple(sorted({entry.user for entry in self}))

    def time_range(self) -> tuple[int, int]:
        """(first, last) entry times; raises on an empty log."""
        first = last = None
        for entry in self:
            if first is None:
                first = entry.time
            last = entry.time
        if first is None or last is None:
            raise AuditError(f"audit log {self.name!r} is empty")
        return first, last

    def exception_rate(self) -> float:
        """Fraction of allowed accesses that went through the exception
        path — the paper's headline symptom."""
        allowed = exceptional = 0
        for entry in self:
            if entry.is_allowed:
                allowed += 1
                if entry.is_exception:
                    exceptional += 1
        if not allowed:
            raise AuditError(f"audit log {self.name!r} has no allowed accesses")
        return exceptional / allowed

    def rule_histogram(
        self, attributes: tuple[str, ...] = RULE_ATTRIBUTES
    ) -> Counter:
        """Count entries per lifted ground rule."""
        return Counter(entry.to_rule(attributes) for entry in self)

    def to_policy(self, attributes: tuple[str, ...] = RULE_ATTRIBUTES) -> Policy:
        """Lift the log into the paper's ``P_AL`` (duplicates preserved)."""
        return Policy(
            (entry.to_rule(attributes) for entry in self),
            source=PolicySource.AUDIT_LOG,
            name=f"P_AL({self.name})",
        )

    def to_table(
        self,
        database: Database,
        table_name: str | None = None,
        index: bool = False,
    ) -> Table:
        """Materialise the log as a sqlmini table and return it.

        ``index=True`` additionally creates the standard audit-column
        indexes (see :data:`repro.audit.schema.AUDIT_INDEX_SPECS`).
        """
        schema = audit_table_schema(table_name or self.name)
        table = database.create_table(schema)
        for entry in self:
            table.insert(entry.as_row())
        if index:
            create_audit_indexes(table)
        return table


class StreamedAuditView(AuditReadOps):
    """A lazy, re-iterable view over a stream of audit entries.

    Holds a factory rather than entries, so iterating twice re-reads the
    source (cheap for disk segments, exact for immutable sealed data) and
    chained ``where``/``window`` calls compose filters without copying.
    ``len()`` counts by iteration — O(n), but allocation-free.
    """

    def __init__(
        self, factory: Callable[[], Iterator[AuditEntry]], name: str = "audit_view"
    ) -> None:
        self._factory = factory
        self.name = name

    def __iter__(self) -> Iterator[AuditEntry]:
        """Stream the view's entries from its source."""
        return self._factory()

    def __len__(self) -> int:
        """Number of entries in the view (counted by iteration)."""
        return sum(1 for _ in self)

    def __repr__(self) -> str:
        return f"StreamedAuditView(name={self.name!r})"


class DurableAuditLog(AuditReadOps):
    """An append-only audit log persisted in a segmented disk store.

    Satisfies the full :class:`~repro.audit.log.AuditLog` protocol:
    writes go straight through to the crash-safe store, reads stream off
    disk.  ``window`` uses the store's sparse time index instead of a
    full scan, and ``len``/``time_range`` come from the manifest in O(1).
    """

    def __init__(
        self,
        directory: str | Path,
        config: StoreConfig | None = None,
        name: str | None = None,
        create: bool = True,
    ) -> None:
        self.store = AuditStore(directory, config=config, create=create)
        self.name = name or Path(directory).name

    # ------------------------------------------------------------------
    # collection protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Committed entries, from segment metadata (no scan)."""
        return len(self.store)

    def __iter__(self) -> Iterator[AuditEntry]:
        """Stream every committed entry in append order."""
        return self.store.iter_entries()

    def __getitem__(self, index: int) -> AuditEntry:
        """Positional access by streaming (O(n) — prefer iteration)."""
        if index < 0:
            index += len(self)
        if index < 0:
            raise IndexError(index)
        for position, entry in enumerate(self):
            if position == index:
                return entry
        raise IndexError(index)

    @property
    def entries(self) -> tuple[AuditEntry, ...]:
        """All entries as a tuple — materialises; prefer iteration."""
        return tuple(self)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def append(self, entry: AuditEntry) -> None:
        """Append one entry durably; times must be non-decreasing."""
        self.store.append(entry)

    def extend(self, entries) -> None:
        """Append every entry in order (same time rules as append)."""
        self.store.extend(entries)

    # ------------------------------------------------------------------
    # indexed overrides
    # ------------------------------------------------------------------
    def window(self, start: int, end: int) -> StreamedAuditView:
        """Entries with ``start <= time < end`` via the sparse time index."""
        return StreamedAuditView(
            lambda: self.store.scan_window(start, end),
            name=f"{self.name}[{start}:{end}]",
        )

    def lookup(
        self,
        user: str | None = None,
        data: str | None = None,
        purpose: str | None = None,
    ) -> StreamedAuditView:
        """Entries matching the given attributes via the hash indexes."""
        return StreamedAuditView(
            lambda: self.store.lookup(user=user, data=data, purpose=purpose),
            name=f"{self.name}.lookup",
        )

    def time_range(self) -> tuple[int, int]:
        """(first, last) entry times from segment metadata (no scan)."""
        return self.store.time_range()

    def tail(self, count: int) -> tuple[AuditEntry, ...]:
        """The newest ``count`` entries (the serve health surface uses
        this to report the live trail's head without a full scan)."""
        return self.store.tail(count)

    # ------------------------------------------------------------------
    # store lifecycle and maintenance
    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Force-flush pending appends to stable storage."""
        self.store.sync()

    def close(self) -> None:
        """Flush and close the underlying store."""
        self.store.close()

    def __enter__(self) -> "DurableAuditLog":
        """Context-manager entry: the log itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: close the store."""
        self.close()

    def seal_active(self):
        """Seal the active segment now (see
        :meth:`~repro.store.store.AuditStore.seal_active`)."""
        return self.store.seal_active()

    def add_seal_listener(self, listener) -> None:
        """Register a post-seal callback (see
        :meth:`~repro.store.store.AuditStore.add_seal_listener`)."""
        self.store.add_seal_listener(listener)

    def sealed_segments(self):
        """Sealed segment metadata, oldest first (see
        :meth:`~repro.store.store.AuditStore.sealed_segments`)."""
        return self.store.sealed_segments()

    def stats(self) -> StoreStats:
        """The underlying store's :class:`~repro.store.store.StoreStats`."""
        return self.store.stats()

    def verify(self) -> VerifyReport:
        """Run a full checksum pass over the underlying store."""
        return self.store.verify()

    def __repr__(self) -> str:
        return (
            f"DurableAuditLog(name={self.name!r}, entries={len(self)}, "
            f"directory={str(self.store.directory)!r})"
        )


def copy_to_durable(
    log: AuditLog, directory: str | Path, config: StoreConfig | None = None
) -> DurableAuditLog:
    """Persist an in-memory log into a fresh durable store at ``directory``."""
    durable = DurableAuditLog(directory, config=config, name=log.name)
    durable.extend(log)
    durable.sync()
    return durable
