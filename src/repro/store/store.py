"""The durable segmented audit store.

:class:`AuditStore` turns a directory into a crash-safe, append-only
audit log:

- appends go to one bounded **active segment** (length-prefixed, CRC32'd
  records — :mod:`repro.store.codec`), rotated by size or entry count;
- sealed segments are immutable and listed in ``MANIFEST.json``, replaced
  atomically (:mod:`repro.store.manifest`), each with a sidecar hash +
  sparse-time index (:mod:`repro.store.index`);
- opening an existing directory runs **recovery**: the active segment is
  scanned record-by-record and a torn tail (a crash mid-write) is
  truncated back to the last checksum-valid frame, so every fully
  committed entry survives and nothing partial is ever surfaced;
- the **fsync policy** trades durability for throughput: ``always``
  fsyncs every append, ``interval`` every N appends (and on seal/close),
  ``off`` leaves flushing to the OS.  Seals, compactions and manifest
  replacements are always durable regardless of policy.

Reads stream segment-at-a-time — memory stays proportional to one
segment, never the log — and window scans / point lookups use the
per-segment indexes to skip data.  One process should own a store
directory at a time; concurrent writers are not arbitrated.
"""

from __future__ import annotations

import logging
import os
from collections import deque
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path

from repro.audit.entry import AuditEntry
from repro.errors import AuditError, StoreError
from repro.obs.runtime import get_registry
from repro.store.codec import HEADER_SIZE, SEGMENT_HEADER
from repro.store.index import (
    DEFAULT_TIME_STRIDE,
    INDEXED_ATTRIBUTES,
    IndexBuilder,
    SegmentIndex,
    build_index,
    index_path,
    load_index,
    save_index,
)
from repro.store.manifest import (
    Manifest,
    SegmentMeta,
    load_manifest,
    manifest_path,
    save_manifest,
)
from repro.store.segment import (
    SegmentWriter,
    iter_segment,
    read_record_at,
    scan_segment,
    segment_name,
)
from repro.vocab.tree import canonical

#: Valid values of :attr:`StoreConfig.fsync`.
FSYNC_POLICIES: tuple[str, ...] = ("always", "interval", "off")


@dataclass(frozen=True)
class StoreConfig:
    """Tunables of one :class:`AuditStore`.

    ``fsync`` picks the durability policy (see the module docstring);
    ``fsync_interval`` is the append count between fsyncs under
    ``interval``.  Rotation seals the active segment when either bound is
    reached.  ``time_index_stride`` controls how sparse the per-segment
    time index is (one probe point every N records).
    """

    max_segment_bytes: int = 4 * 1024 * 1024
    max_segment_entries: int = 100_000
    fsync: str = "interval"
    fsync_interval: int = 256
    time_index_stride: int = DEFAULT_TIME_STRIDE

    def __post_init__(self) -> None:
        if self.fsync not in FSYNC_POLICIES:
            raise StoreError(
                f"unknown fsync policy {self.fsync!r} (choose from {FSYNC_POLICIES})"
            )
        if self.max_segment_bytes < HEADER_SIZE + 16:
            raise StoreError("max_segment_bytes is too small to hold one record")
        if self.max_segment_entries < 1:
            raise StoreError("max_segment_entries must be >= 1")
        if self.fsync_interval < 1:
            raise StoreError("fsync_interval must be >= 1")
        if self.time_index_stride < 1:
            raise StoreError("time_index_stride must be >= 1")


@dataclass(frozen=True)
class StoreStats:
    """A point-in-time summary of a store's on-disk state."""

    directory: str
    segments: int
    sealed_segments: int
    entries: int
    size_bytes: int
    first_time: int | None
    last_time: int | None
    fsync: str

    def summary(self) -> str:
        """One human-readable block, CLI-ready."""
        window = (
            f"t{self.first_time}..t{self.last_time}"
            if self.first_time is not None
            else "(empty)"
        )
        return (
            f"store      : {self.directory}\n"
            f"entries    : {self.entries}\n"
            f"segments   : {self.segments} ({self.sealed_segments} sealed + 1 active)\n"
            f"bytes      : {self.size_bytes}\n"
            f"time range : {window}\n"
            f"fsync      : {self.fsync}"
        )


@dataclass(frozen=True)
class VerifyReport:
    """Outcome of a full checksum pass over every segment."""

    segments: int
    records: int
    size_bytes: int
    errors: tuple[str, ...]

    @property
    def ok(self) -> bool:
        """True when every segment verified clean."""
        return not self.errors

    def summary(self) -> str:
        """One human-readable block, CLI-ready."""
        lines = [
            f"segments checked : {self.segments}",
            f"records checked  : {self.records}",
            f"bytes checked    : {self.size_bytes}",
            f"result           : {'OK' if self.ok else 'CORRUPT'}",
        ]
        lines.extend(f"  error: {error}" for error in self.errors)
        return "\n".join(lines)


@dataclass(frozen=True)
class RecoveryReport:
    """What opening an existing store had to repair."""

    scanned_entries: int
    torn: bool
    torn_bytes_dropped: int
    active_recreated: bool


class AuditStore:
    """A crash-safe, segmented, append-only audit store in one directory."""

    def __init__(
        self,
        directory: str | Path,
        config: StoreConfig | None = None,
        create: bool = True,
    ) -> None:
        self.directory = Path(directory)
        self.config = config or StoreConfig()
        self._closed = False
        self._appends = 0
        self._bytes_written = 0
        self._flushes = 0
        self._seals = 0
        self._seal_listeners: list = []
        self._since_sync = 0
        self._index_cache: dict[str, SegmentIndex] = {}
        self._obs = get_registry()
        self._reported = (0, 0, 0, 0)
        self.last_recovery: RecoveryReport | None = None

        exists = manifest_path(self.directory).exists()
        if not exists:
            if not create:
                raise StoreError(f"no audit store at {self.directory} (no manifest)")
            if any(self.directory.glob("*.seg")):
                raise StoreError(
                    f"{self.directory} has segment files but no manifest; "
                    f"refusing to initialise over it"
                )
            self.directory.mkdir(parents=True, exist_ok=True)
            self._manifest = Manifest(active=segment_name(1), next_segment=2)
            self._builder = IndexBuilder(self.config.time_index_stride)
            self._writer = SegmentWriter(
                self.directory / self._manifest.active, create=True
            )
            save_manifest(self.directory, self._manifest)
            self._last_time = -1
        else:
            self._manifest = load_manifest(self.directory)
            self._recover()
        if self._obs.enabled:
            self._obs.register_collector(self._flush_metrics)

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Validate the manifest against disk and repair the active tail."""
        for meta in self._manifest.sealed:
            if not (self.directory / meta.name).exists():
                raise StoreError(
                    f"manifest lists sealed segment {meta.name} but the file "
                    f"is missing from {self.directory}"
                )
        active_path = self.directory / self._manifest.active
        self._builder = IndexBuilder(self.config.time_index_stride)
        recreated = False
        torn = False
        torn_dropped = 0
        scanned = 0
        if not active_path.exists():
            # Crash between the seal's manifest write and the creation of
            # the next active file: the manifest is authoritative, so just
            # materialise the promised (empty) segment.
            self._writer = SegmentWriter(active_path, create=True)
            recreated = True
        else:
            scan = scan_segment(active_path, visit=self._builder.add)
            scanned = scan.entries
            if scan.torn:
                torn = True
                size = active_path.stat().st_size
                if size < HEADER_SIZE:
                    # Crash before even the header landed: nothing was
                    # committed; rewrite the stub as an empty segment.
                    torn_dropped = size
                    active_path.write_bytes(SEGMENT_HEADER)
                else:
                    torn_dropped = size - scan.valid_bytes
                    with active_path.open("r+b") as handle:
                        handle.truncate(scan.valid_bytes)
                        handle.flush()
                        os.fsync(handle.fileno())
            self._writer = SegmentWriter(
                active_path,
                create=False,
                entries=scan.entries,
                size=scan.valid_bytes,
                first_time=scan.first_time,
                last_time=scan.last_time,
            )
        last_sealed = (
            self._manifest.sealed[-1].last_time if self._manifest.sealed else None
        )
        candidates = [t for t in (last_sealed, self._writer.last_time) if t is not None]
        self._last_time = max(candidates) if candidates else -1
        self.last_recovery = RecoveryReport(
            scanned_entries=scanned,
            torn=torn,
            torn_bytes_dropped=torn_dropped,
            active_recreated=recreated,
        )
        if self._obs.enabled:
            self._obs.counter("repro_store_recoveries_total").inc()
            if torn:
                self._obs.counter("repro_store_torn_tail_truncations_total").inc()
                self._obs.counter("repro_store_torn_bytes_dropped_total").inc(
                    torn_dropped
                )

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def _flush_metrics(self) -> None:
        reg = self._obs
        current = (self._appends, self._bytes_written, self._flushes, self._seals)
        seen = self._reported
        reg.counter("repro_store_appends_total").inc(current[0] - seen[0])
        reg.counter("repro_store_bytes_written_total").inc(current[1] - seen[1])
        reg.counter("repro_store_flushes_total").inc(current[2] - seen[2])
        reg.counter("repro_store_segments_sealed_total").inc(current[3] - seen[3])
        self._reported = current
        reg.gauge("repro_store_segments").set(len(self._manifest.sealed) + 1)
        reg.gauge("repro_store_entries").set(len(self))

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def append(self, entry: AuditEntry) -> None:
        """Append one entry; times must be non-decreasing (like
        :class:`~repro.audit.log.AuditLog`)."""
        self._check_open()
        if not isinstance(entry, AuditEntry):
            raise AuditError(f"audit stores hold AuditEntry objects, got {entry!r}")
        if entry.time < self._last_time:
            raise AuditError(
                f"audit entries must be time-ordered: {entry.time} after "
                f"{self._last_time}"
            )
        offset, written = self._writer.append(entry)
        self._builder.add(offset, entry)
        self._last_time = entry.time
        self._appends += 1
        self._bytes_written += written
        policy = self.config.fsync
        if policy == "always":
            self._writer.flush(sync=True)
            self._flushes += 1
        elif policy == "interval":
            self._since_sync += 1
            if self._since_sync >= self.config.fsync_interval:
                self._writer.flush(sync=True)
                self._flushes += 1
                self._since_sync = 0
        if (
            self._writer.size >= self.config.max_segment_bytes
            or self._writer.entries >= self.config.max_segment_entries
        ):
            self._seal_active()

    def extend(self, entries: Iterable[AuditEntry]) -> None:
        """Append every entry in order (same time rules as append)."""
        for entry in entries:
            self.append(entry)

    def sync(self) -> None:
        """Force-flush the active segment to stable storage."""
        self._check_open()
        self._writer.flush(sync=True)
        self._flushes += 1
        self._since_sync = 0

    def _seal_active(self) -> None:
        """Seal the active segment and open a fresh one.

        Seals are always durable: the data is fsynced and the index
        written before the manifest atomically promotes the segment, so a
        crash anywhere in the sequence leaves a recoverable store.
        """
        writer = self._writer
        writer.flush(sync=True)
        self._flushes += 1
        save_index(writer.path, self._builder.index)
        self._index_cache[writer.name] = self._builder.index
        meta = SegmentMeta(
            name=writer.name,
            entries=writer.entries,
            size=writer.size,
            first_time=writer.first_time,
            last_time=writer.last_time,
        )
        new_name = segment_name(self._manifest.next_segment)
        self._manifest.sealed.append(meta)
        self._manifest.active = new_name
        self._manifest.next_segment += 1
        save_manifest(self.directory, self._manifest)
        writer.close(sync=False)
        self._writer = SegmentWriter(self.directory / new_name, create=True)
        self._builder = IndexBuilder(self.config.time_index_stride)
        self._since_sync = 0
        self._seals += 1
        for listener in tuple(self._seal_listeners):
            # listeners observe a committed seal; their failures must not
            # poison the write path
            try:
                listener(meta)
            except Exception:  # pragma: no cover - defensive
                logging.getLogger("repro.store").exception(
                    "seal listener %r failed for segment %s", listener, meta.name
                )

    def seal_active(self) -> SegmentMeta | None:
        """Seal the active segment now; returns its :class:`SegmentMeta`.

        A no-op returning ``None`` when the active segment is empty (the
        store never seals empty segments).  The online refinement daemon
        uses this to force a round boundary: only sealed segments are
        behind its watermark, so sealing makes the current tail minable.
        """
        self._check_open()
        if self._writer.entries == 0:
            return None
        self._seal_active()
        return self._manifest.sealed[-1]

    def add_seal_listener(self, listener) -> None:
        """Call ``listener(meta)`` after every durable seal commit.

        The callback runs on the sealing thread *after* the manifest has
        atomically promoted the segment, so a listener that wakes a
        tailing daemon can rely on the sealed entries being readable.
        Exceptions raised by listeners are logged, never propagated.
        """
        self._seal_listeners.append(listener)

    def sealed_segments(self) -> tuple[SegmentMeta, ...]:
        """The manifest's sealed segments, oldest first (post-compaction
        names included) — the region a watermark may cover."""
        return tuple(self._manifest.sealed)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush (durably unless ``fsync='off'``) and release the file handle."""
        if self._closed:
            return
        synced = self.config.fsync != "off"
        self._writer.close(sync=synced)
        if synced:
            self._flushes += 1
        self._closed = True

    def __enter__(self) -> "AuditStore":
        """Context-manager entry: the store itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: close the store."""
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise StoreError(f"audit store at {self.directory} is closed")

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Total committed entries (manifest counts + active segment)."""
        return self._manifest.sealed_entries() + self._writer.entries

    def __iter__(self) -> Iterator[AuditEntry]:
        """Stream every entry in append order, segment at a time."""
        return self.iter_entries()

    def iter_entries(self) -> Iterator[AuditEntry]:
        """Stream every committed entry without materialising the log."""
        for meta in self._manifest.sealed:
            yield from iter_segment(self.directory / meta.name)
        yield from self._iter_active()

    def _iter_active(self, start_offset: int = HEADER_SIZE) -> Iterator[AuditEntry]:
        if not self._closed:
            self._writer.flush(sync=False)
        yield from iter_segment(self._writer.path, start_offset)

    def segment_snapshot(self) -> tuple[tuple[str, int], ...]:
        """Segment file paths with committed entry counts, oldest first.

        Flushes the active segment (no fsync) so the returned files hold
        every appended entry; the snapshot therefore enumerates exactly
        the entries ``iter_entries`` would stream, in the same order.
        The parallel refinement sharder uses this to plan disjoint
        segment-file shards that worker processes stream directly with
        :func:`~repro.store.segment.iter_segment` — no store recovery,
        no shared file handles.
        """
        self._check_open()
        self._writer.flush(sync=False)
        rows = [
            (str(self.directory / meta.name), meta.entries)
            for meta in self._manifest.sealed
        ]
        rows.append((str(self._writer.path), self._writer.entries))
        return tuple(rows)

    def scan_window(self, start: int, end: int) -> Iterator[AuditEntry]:
        """Stream entries with ``start <= time < end``.

        Segment metadata prunes whole segments and the sparse time index
        seeks close to ``start`` inside the first relevant one; global
        time order lets the scan stop at the first entry past ``end``.
        """
        if end <= start:
            return
        for meta in self._manifest.sealed:
            if meta.last_time is None or meta.last_time < start:
                continue
            if meta.first_time is not None and meta.first_time >= end:
                return
            index = self._segment_index(meta)
            offset = index.seek_offset(start) if index is not None else HEADER_SIZE
            for entry in iter_segment(self.directory / meta.name, offset):
                if entry.time >= end:
                    return
                if entry.time >= start:
                    yield entry
        if self._writer.last_time is None or self._writer.last_time < start:
            return
        if self._writer.first_time is not None and self._writer.first_time >= end:
            return
        offset = self._builder.index.seek_offset(start)
        for entry in self._iter_active(offset):
            if entry.time >= end:
                return
            if entry.time >= start:
                yield entry

    def lookup(
        self,
        user: str | None = None,
        data: str | None = None,
        purpose: str | None = None,
    ) -> Iterator[AuditEntry]:
        """Stream entries matching every given attribute, via the hash
        indexes (sealed segments) and the in-memory index (active)."""
        query = {
            attribute: canonical(value)
            for attribute, value in (
                ("user", user), ("data", data), ("purpose", purpose)
            )
            if value is not None
        }
        if not query:
            raise StoreError(
                f"lookup needs at least one of {INDEXED_ATTRIBUTES}"
            )

        def matching_offsets(index: SegmentIndex) -> list[int]:
            offset_sets = [
                set(index.offsets_for(attribute, value))
                for attribute, value in query.items()
            ]
            common = set.intersection(*offset_sets) if offset_sets else set()
            return sorted(common)

        for meta in self._manifest.sealed:
            index = self._segment_index(meta)
            if index is None:
                continue
            offsets = matching_offsets(index)
            if not offsets:
                continue
            with (self.directory / meta.name).open("rb") as handle:
                for offset in offsets:
                    yield read_record_at(handle, offset)
        offsets = matching_offsets(self._builder.index)
        if offsets:
            if not self._closed:
                self._writer.flush(sync=False)
            with self._writer.path.open("rb") as handle:
                for offset in offsets:
                    yield read_record_at(handle, offset)

    def tail(self, count: int) -> tuple[AuditEntry, ...]:
        """The last ``count`` entries, scanning newest segments first."""
        if count < 1:
            return ()
        collected: deque[AuditEntry] = deque()
        segments = [self._writer.path] + [
            self.directory / meta.name for meta in reversed(self._manifest.sealed)
        ]
        if not self._closed:
            self._writer.flush(sync=False)
        for path in segments:
            block = list(iter_segment(path))
            needed = count - len(collected)
            if needed <= 0:
                break
            collected.extendleft(reversed(block[-needed:]))
        return tuple(collected)

    def time_range(self) -> tuple[int, int]:
        """(first, last) entry times; raises on an empty store."""
        first = self._first_time()
        if first is None:
            raise AuditError(f"audit store at {self.directory} is empty")
        return first, self._last_time

    def _first_time(self) -> int | None:
        for meta in self._manifest.sealed:
            if meta.first_time is not None:
                return meta.first_time
        return self._writer.first_time

    def _segment_index(self, meta: SegmentMeta) -> SegmentIndex | None:
        cached = self._index_cache.get(meta.name)
        if cached is not None:
            return cached
        index = load_index(self.directory / meta.name)
        if index is None:
            # Sidecar lost (they are derivative): rebuild from the segment.
            index = build_index(
                self.directory / meta.name, self.config.time_index_stride
            )
            save_index(self.directory / meta.name, index)
        self._index_cache[meta.name] = index
        return index

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def stats(self) -> StoreStats:
        """A point-in-time :class:`StoreStats` snapshot."""
        size = self._writer.size + sum(meta.size for meta in self._manifest.sealed)
        return StoreStats(
            directory=str(self.directory),
            segments=len(self._manifest.sealed) + 1,
            sealed_segments=len(self._manifest.sealed),
            entries=len(self),
            size_bytes=size,
            first_time=self._first_time(),
            last_time=self._last_time if self._last_time >= 0 else None,
            fsync=self.config.fsync,
        )

    def verify(self) -> VerifyReport:
        """Full checksum pass over every segment vs the manifest."""
        errors: list[str] = []
        records = 0
        size = 0
        if not self._closed:
            self._writer.flush(sync=False)
        for meta in self._manifest.sealed:
            path = self.directory / meta.name
            if not path.exists():
                errors.append(f"{meta.name}: file missing")
                continue
            try:
                scan = scan_segment(path)
            except StoreError as exc:
                errors.append(f"{meta.name}: {exc}")
                continue
            records += scan.entries
            size += scan.valid_bytes
            if scan.torn:
                errors.append(f"{meta.name}: sealed segment has invalid bytes")
            if scan.entries != meta.entries:
                errors.append(
                    f"{meta.name}: manifest promises {meta.entries} entries, "
                    f"file holds {scan.entries}"
                )
        try:
            scan = scan_segment(self._writer.path)
        except StoreError as exc:
            errors.append(f"{self._writer.name}: {exc}")
        else:
            records += scan.entries
            size += scan.valid_bytes
            if scan.torn:
                errors.append(
                    f"{self._writer.name}: active segment has a torn tail "
                    f"(reopen the store to repair)"
                )
        return VerifyReport(
            segments=len(self._manifest.sealed) + 1,
            records=records,
            size_bytes=size,
            errors=tuple(errors),
        )

    def compact(self, target_bytes: int | None = None):
        """Merge sealed segments offline; see
        :func:`repro.store.compaction.compact_store`."""
        from repro.store.compaction import compact_store

        return compact_store(self, target_bytes=target_bytes)

    def __repr__(self) -> str:
        return (
            f"AuditStore(directory={str(self.directory)!r}, entries={len(self)}, "
            f"segments={len(self._manifest.sealed) + 1})"
        )
