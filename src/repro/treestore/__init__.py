"""Tree-structured records — the paper's conclusion extension.

"While emerging healthcare organizations leverage relational database
systems, legacy systems employ hierarchical, XML-like structures.  Thus,
the natural evolution for PRIMA is to adapt the core concepts and
technology to the tree-based structures."  This package is that
adaptation:

- :class:`~repro.treestore.node.TreeNode` / :class:`TreeDocument` — the
  document model, with a from-scratch XML reader/writer in
  :mod:`repro.treestore.xmlio`;
- :func:`~repro.treestore.path.compile_path` — an XPath subset for
  selection and binding;
- :class:`~repro.treestore.enforcement.TreeEnforcer` /
  :class:`TreeBinding` — Active Enforcement with subtree pruning instead
  of column masking, auditing through the same Compliance Auditing
  schema so the refinement pipeline is shared.
"""

from repro.treestore.enforcement import (
    TreeBinding,
    TreeEnforcementResult,
    TreeEnforcer,
)
from repro.treestore.node import TreeDocument, TreeError, TreeNode
from repro.treestore.path import PathExpression, Step, compile_path
from repro.treestore.xmlio import dumps, loads

__all__ = [
    "PathExpression",
    "Step",
    "TreeBinding",
    "TreeDocument",
    "TreeEnforcementResult",
    "TreeEnforcer",
    "TreeError",
    "TreeNode",
    "compile_path",
    "dumps",
    "loads",
]
