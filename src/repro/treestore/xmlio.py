"""A small XML reader/writer for tree documents.

Supports the subset legacy clinical exports actually use: elements,
string attributes (double-quoted), text content, self-closing tags,
comments, and the five standard entities.  No namespaces, processing
instructions, DTDs or CDATA — the reader rejects what it does not
understand rather than guessing.
"""

from __future__ import annotations

from repro.treestore.node import TreeDocument, TreeError, TreeNode

_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "quot": '"', "apos": "'"}


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------


def escape(text: str) -> str:
    """Escape the XML-special characters in text content."""
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )


def _escape_attribute(text: str) -> str:
    return escape(text).replace('"', "&quot;")


def dumps(document: TreeDocument, indent: int = 2) -> str:
    """Serialise a document to pretty-printed XML text."""

    def render(node: TreeNode, depth: int, out: list[str]) -> None:
        pad = " " * (indent * depth)
        attributes = "".join(
            f' {key}="{_escape_attribute(value)}"'
            for key, value in node.attributes.items()
        )
        if not node.children and not node.text:
            out.append(f"{pad}<{node.name}{attributes}/>")
            return
        if not node.children:
            out.append(
                f"{pad}<{node.name}{attributes}>{escape(node.text)}</{node.name}>"
            )
            return
        out.append(f"{pad}<{node.name}{attributes}>")
        if node.text:
            out.append(f"{pad}{' ' * indent}{escape(node.text)}")
        for child in node.children:
            render(child, depth + 1, out)
        out.append(f"{pad}</{node.name}>")

    lines: list[str] = []
    render(document.root, 0, lines)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------


def loads(text: str, name: str = "document") -> TreeDocument:
    """Parse XML text into a :class:`TreeDocument`."""
    parser = _XmlParser(text)
    root = parser.parse()
    return TreeDocument(root, name=name)


class _XmlParser:
    def __init__(self, text: str) -> None:
        self._text = text
        self._pos = 0

    def parse(self) -> TreeNode:
        self._skip_misc()
        root = self._element()
        self._skip_misc()
        if self._pos != len(self._text):
            raise TreeError(
                f"trailing content after the root element (offset {self._pos})"
            )
        return root

    # ------------------------------------------------------------------
    def _skip_misc(self) -> None:
        """Skip whitespace, comments and an optional XML declaration."""
        while True:
            while self._pos < len(self._text) and self._text[self._pos].isspace():
                self._pos += 1
            if self._text.startswith("<!--", self._pos):
                end = self._text.find("-->", self._pos + 4)
                if end < 0:
                    raise TreeError("unterminated comment")
                self._pos = end + 3
                continue
            if self._text.startswith("<?", self._pos):
                end = self._text.find("?>", self._pos + 2)
                if end < 0:
                    raise TreeError("unterminated declaration")
                self._pos = end + 2
                continue
            return

    def _element(self) -> TreeNode:
        if not self._text.startswith("<", self._pos):
            raise TreeError(f"expected '<' at offset {self._pos}")
        self._pos += 1
        tag = self._name("element name")
        attributes = self._attributes()
        if self._text.startswith("/>", self._pos):
            self._pos += 2
            return TreeNode(tag, attributes)
        if not self._text.startswith(">", self._pos):
            raise TreeError(f"malformed start tag <{tag}> at offset {self._pos}")
        self._pos += 1
        node = TreeNode(tag, attributes)
        text_parts: list[str] = []
        while True:
            if self._text.startswith("<!--", self._pos):
                end = self._text.find("-->", self._pos + 4)
                if end < 0:
                    raise TreeError("unterminated comment")
                self._pos = end + 3
                continue
            if self._text.startswith("</", self._pos):
                self._pos += 2
                closing = self._name("closing tag name")
                if closing != tag:
                    raise TreeError(
                        f"mismatched closing tag </{closing}> for <{tag}>"
                    )
                if not self._text.startswith(">", self._pos):
                    raise TreeError(f"malformed closing tag </{closing}>")
                self._pos += 1
                node.text = "".join(text_parts).strip()
                return node
            if self._text.startswith("<", self._pos):
                node.append(self._element())
                continue
            if self._pos >= len(self._text):
                raise TreeError(f"unterminated element <{tag}>")
            start = self._pos
            while self._pos < len(self._text) and self._text[self._pos] not in "<&":
                self._pos += 1
            text_parts.append(self._text[start : self._pos])
            if self._text.startswith("&", self._pos):
                text_parts.append(self._entity())

    def _name(self, what: str) -> str:
        start = self._pos
        while self._pos < len(self._text) and (
            self._text[self._pos].isalnum() or self._text[self._pos] in "_-"
        ):
            self._pos += 1
        if self._pos == start:
            raise TreeError(f"expected {what} at offset {start}")
        return self._text[start : self._pos]

    def _attributes(self) -> dict[str, str]:
        attributes: dict[str, str] = {}
        while True:
            while self._pos < len(self._text) and self._text[self._pos].isspace():
                self._pos += 1
            ch = self._text[self._pos : self._pos + 1]
            if ch in (">", "/") or not ch:
                return attributes
            key = self._name("attribute name")
            if not self._text.startswith('="', self._pos):
                raise TreeError(f'attribute {key!r} must be ="quoted"')
            self._pos += 2
            parts: list[str] = []
            while self._pos < len(self._text) and self._text[self._pos] != '"':
                if self._text[self._pos] == "&":
                    parts.append(self._entity())
                else:
                    parts.append(self._text[self._pos])
                    self._pos += 1
            if self._pos >= len(self._text):
                raise TreeError(f"unterminated attribute value for {key!r}")
            self._pos += 1  # closing quote
            if key in attributes:
                raise TreeError(f"duplicate attribute {key!r}")
            attributes[key] = "".join(parts)

    def _entity(self) -> str:
        end = self._text.find(";", self._pos)
        if end < 0 or end - self._pos > 6:
            raise TreeError(f"malformed entity at offset {self._pos}")
        name = self._text[self._pos + 1 : end]
        self._pos = end + 1
        try:
            return _ENTITIES[name]
        except KeyError:
            raise TreeError(f"unknown entity &{name};") from None
