"""Tree-structured clinical records.

The paper's conclusion notes that "legacy systems employ hierarchical,
XML-like structures" and that "the natural evolution for PRIMA is to adapt
the core concepts and technology to the tree-based structures".  This
package is that adaptation: an XML-like document model
(:class:`TreeNode` / :class:`TreeDocument`), a path query language
(:mod:`repro.treestore.path`), and an enforcement adapter that masks
subtrees instead of columns (:mod:`repro.treestore.enforcement`).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import PrimaError


class TreeError(PrimaError):
    """A tree document or path expression is malformed or misused."""


class TreeNode:
    """One element of a hierarchical record.

    A node has a ``name`` (tag), string-valued ``attributes``, optional
    ``text`` content, and ordered children.  Node names and attribute
    names are case-sensitive identifiers (letters, digits, ``_``, ``-``),
    matching the XML subset the reader accepts.
    """

    __slots__ = ("name", "attributes", "text", "_children", "_parent")

    def __init__(
        self,
        name: str,
        attributes: dict[str, str] | None = None,
        text: str = "",
    ) -> None:
        if not _valid_name(name):
            raise TreeError(f"invalid element name {name!r}")
        self.name = name
        self.attributes: dict[str, str] = {}
        for key, value in (attributes or {}).items():
            if not _valid_name(key):
                raise TreeError(f"invalid attribute name {key!r}")
            self.attributes[key] = str(value)
        self.text = text
        self._children: list["TreeNode"] = []
        self._parent: "TreeNode | None" = None

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def parent(self) -> "TreeNode | None":
        return self._parent

    @property
    def children(self) -> tuple["TreeNode", ...]:
        return tuple(self._children)

    def append(self, child: "TreeNode") -> "TreeNode":
        """Attach ``child`` as the last child; returns the child."""
        if not isinstance(child, TreeNode):
            raise TreeError(f"children must be TreeNode objects, got {child!r}")
        if child._parent is not None:
            raise TreeError(f"node <{child.name}> already has a parent")
        child._parent = self
        self._children.append(child)
        return child

    def child(self, name: str, attributes: dict[str, str] | None = None, text: str = "") -> "TreeNode":
        """Create, attach and return a new child element."""
        return self.append(TreeNode(name, attributes, text))

    def remove(self, child: "TreeNode") -> None:
        """Detach ``child``; raises if it is not a child of this node."""
        try:
            self._children.remove(child)
        except ValueError:
            raise TreeError(
                f"<{child.name}> is not a child of <{self.name}>"
            ) from None
        child._parent = None

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def walk(self) -> Iterator["TreeNode"]:
        """Yield this node and every descendant, preorder."""
        stack: list[TreeNode] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node._children))

    def path(self) -> str:
        """Absolute path of this node, e.g. ``/patients/patient/name``."""
        parts: list[str] = []
        node: TreeNode | None = self
        while node is not None:
            parts.append(node.name)
            node = node._parent
        return "/" + "/".join(reversed(parts))

    def find_all(self, name: str) -> tuple["TreeNode", ...]:
        """Every descendant (or self) with the given element name."""
        return tuple(node for node in self.walk() if node.name == name)

    # ------------------------------------------------------------------
    # copying
    # ------------------------------------------------------------------
    def clone(self) -> "TreeNode":
        """Deep copy, detached from any parent."""
        copy = TreeNode(self.name, dict(self.attributes), self.text)
        for child in self._children:
            copy.append(child.clone())
        return copy

    def __len__(self) -> int:
        return len(self._children)

    def __repr__(self) -> str:
        return (
            f"TreeNode(<{self.name}> attrs={len(self.attributes)}, "
            f"children={len(self._children)})"
        )


class TreeDocument:
    """A named document with a single root element."""

    def __init__(self, root: TreeNode, name: str = "document") -> None:
        if not isinstance(root, TreeNode):
            raise TreeError("a document needs a TreeNode root")
        self.root = root
        self.name = name

    def clone(self) -> "TreeDocument":
        """Deep copy of the whole document."""
        return TreeDocument(self.root.clone(), self.name)

    def size(self) -> int:
        """Total number of elements in the document."""
        return sum(1 for _ in self.root.walk())

    def __repr__(self) -> str:
        return f"TreeDocument(name={self.name!r}, elements={self.size()})"


def _valid_name(name: str) -> bool:
    return (
        isinstance(name, str)
        and bool(name)
        and not name[0].isdigit()
        and all(ch.isalnum() or ch in "_-" for ch in name)
    )
