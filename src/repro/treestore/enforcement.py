"""Active Enforcement for tree-structured records.

The relational enforcer masks *columns*; legacy hierarchical systems need
the same guarantees over *subtrees*.  A :class:`TreeBinding` maps path
patterns onto the privacy vocabulary's data categories and locates the
data subject; :class:`TreeEnforcer` then serves ``retrieve`` requests:

1. select the requested subtrees with a path expression;
2. classify every element via the binding (first matching category path
   wins; unclassified elements are structural and always pass);
3. check each category against the policy store for (purpose, role) —
   denied categories' elements are pruned from the result;
4. apply patient consent: cell-level opt-outs prune the element,
   whole-purpose opt-outs drop the patient's entire subtree;
5. audit through Compliance Auditing with the same schema as the
   relational path, so *one* refinement pipeline serves both worlds.

Break-the-glass (``exception=True``) bypasses policy and consent but is
audited with ``status = EXCEPTION``, exactly like the relational path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.audit.schema import AccessOp, AccessStatus
from repro.errors import AccessDeniedError, EnforcementError
from repro.hdb.auditing import ComplianceAuditor
from repro.hdb.consent import ConsentStore
from repro.policy.rule import Rule
from repro.policy.store import PolicyStore
from repro.treestore.node import TreeDocument, TreeNode
from repro.treestore.path import PathExpression, compile_path
from repro.vocab.tree import canonical
from repro.vocab.vocabulary import Vocabulary


class TreeBinding:
    """How one document schema maps onto the privacy vocabulary.

    Parameters
    ----------
    patient_path:
        Path selecting the patient elements (e.g. ``/patients/patient``).
    patient_attribute:
        Attribute on those elements carrying the data subject id.
    categories:
        Mapping of path pattern → data-category value.  Patterns are
        checked in insertion order; the first match classifies a node.
    """

    def __init__(
        self,
        patient_path: str | PathExpression,
        patient_attribute: str,
        categories: dict[str, str],
    ) -> None:
        self.patient_path = (
            patient_path
            if isinstance(patient_path, PathExpression)
            else compile_path(patient_path)
        )
        self.patient_attribute = patient_attribute
        self.category_paths: list[tuple[PathExpression, str]] = [
            (compile_path(pattern), canonical(category))
            for pattern, category in categories.items()
        ]

    def classify(self, document: TreeDocument) -> dict[int, str]:
        """Map node ids to data categories for one document."""
        classified: dict[int, str] = {}
        for expression, category in self.category_paths:
            for node in expression.select(document):
                classified.setdefault(id(node), category)
        return classified

    def patients(self, document: TreeDocument) -> dict[int, str]:
        """Map node ids to the owning patient id.

        Every descendant of a patient element (and the element itself)
        belongs to that patient; nodes outside any patient element have
        no data subject and skip consent checks.
        """
        ownership: dict[int, str] = {}
        for element in self.patient_path.select(document):
            patient = element.attributes.get(self.patient_attribute)
            if patient is None:
                raise EnforcementError(
                    f"patient element <{element.name}> lacks the "
                    f"{self.patient_attribute!r} attribute"
                )
            for node in element.walk():
                ownership[id(node)] = patient
        return ownership


@dataclass(frozen=True)
class TreeEnforcementResult:
    """Outcome of one tree retrieval."""

    subtrees: tuple[TreeNode, ...]
    status: AccessStatus
    categories_returned: tuple[str, ...]
    categories_masked: tuple[str, ...]
    nodes_pruned_by_policy: int
    nodes_pruned_by_consent: int
    patients_dropped_by_consent: int


class TreeEnforcer:
    """Policy/consent enforcement over tree documents."""

    def __init__(
        self,
        policy_store: PolicyStore,
        consent: ConsentStore,
        auditor: ComplianceAuditor,
        vocabulary: Vocabulary,
    ) -> None:
        self.policy_store = policy_store
        self.consent = consent
        self.auditor = auditor
        self.vocabulary = vocabulary
        self._bindings: dict[str, TreeBinding] = {}

    def bind_document(self, document_name: str, binding: TreeBinding) -> None:
        """Register the privacy binding for one document schema."""
        self._bindings[document_name] = binding

    def binding_for(self, document_name: str) -> TreeBinding:
        """The registered binding for a document; raises if unbound."""
        try:
            return self._bindings[document_name]
        except KeyError:
            raise EnforcementError(
                f"document {document_name!r} has no privacy binding; "
                "refusing to serve it"
            ) from None

    # ------------------------------------------------------------------
    def policy_permits(self, category: str, purpose: str, role: str) -> bool:
        """Does any active store rule cover this concrete access?"""
        request = Rule.of(data=category, purpose=purpose, authorized=role)
        return any(
            rule.covers(request, self.vocabulary) for rule in self.policy_store
        )

    def retrieve(
        self,
        user: str,
        role: str,
        purpose: str,
        document: TreeDocument,
        select: str,
        exception: bool = False,
        truth: str = "",
    ) -> TreeEnforcementResult:
        """Serve one enforced, audited subtree retrieval."""
        binding = self.binding_for(document.name)
        selection = compile_path(select).select(document)
        if not selection:
            raise EnforcementError(
                f"path {select!r} selects nothing in document {document.name!r}"
            )
        role = canonical(role)
        purpose = canonical(purpose)
        categories = binding.classify(document)
        ownership = binding.patients(document)

        requested = {
            categories[id(node)]
            for root in selection
            for node in root.walk()
            if id(node) in categories
        }
        if exception:
            permitted = set(requested)
            status = AccessStatus.EXCEPTION
        else:
            permitted = {
                category
                for category in requested
                if self.policy_permits(category, purpose, role)
            }
            status = AccessStatus.REGULAR
        masked = tuple(sorted(requested - permitted))
        returned = tuple(sorted(permitted))
        if requested and not permitted:
            self.auditor.record_access(
                user=user, role=role, purpose=purpose, categories=masked,
                op=AccessOp.DENY, status=status, truth=truth,
            )
            raise AccessDeniedError(
                f"policy permits none of the requested categories {masked} "
                f"for role {role!r} and purpose {purpose!r}"
            )

        pruned_policy = 0
        pruned_consent = 0
        dropped_patients: set[str] = set()
        removals: set[int] = set()
        for root in selection:
            for node in root.walk():
                category = categories.get(id(node))
                if category is None:
                    continue
                if category not in permitted:
                    removals.add(id(node))
                    pruned_policy += 1
                    continue
                patient = ownership.get(id(node))
                if patient is None or exception:
                    continue
                decision = self.consent.decide(patient, category, purpose)
                if decision.allowed:
                    continue
                if decision.row_level:
                    dropped_patients.add(patient)
                else:
                    removals.add(id(node))
                    pruned_consent += 1
        # whole-purpose opt-outs remove the patient's entire element
        if dropped_patients:
            for root in selection:
                for node in root.walk():
                    patient = ownership.get(id(node))
                    if patient in dropped_patients:
                        removals.add(id(node))

        subtrees = tuple(
            pruned
            for root in selection
            for pruned in [_prune_clone(root, removals)]
            if pruned is not None
        )
        self.auditor.record_access(
            user=user, role=role, purpose=purpose, categories=returned,
            op=AccessOp.ALLOW, status=status, truth=truth,
        )
        if masked:
            self.auditor.record_access(
                user=user, role=role, purpose=purpose, categories=masked,
                op=AccessOp.DENY, status=status, truth=truth,
            )
        return TreeEnforcementResult(
            subtrees=subtrees,
            status=status,
            categories_returned=returned,
            categories_masked=masked,
            nodes_pruned_by_policy=pruned_policy,
            nodes_pruned_by_consent=pruned_consent,
            patients_dropped_by_consent=len(dropped_patients),
        )


def _prune_clone(node: TreeNode, removals: set[int]) -> TreeNode | None:
    """Deep-copy ``node``, skipping every subtree rooted in ``removals``."""
    if id(node) in removals:
        return None
    copy = TreeNode(node.name, dict(node.attributes), node.text)
    for child in node.children:
        kept = _prune_clone(child, removals)
        if kept is not None:
            copy.append(kept)
    return copy
