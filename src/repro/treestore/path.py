"""A path query language for tree documents (XPath subset).

Supported forms::

    /patients/patient/prescription      absolute child steps
    /patients//psychiatry               descendant step ("//")
    //note                              descendants anywhere
    /patients/patient[@id='p1']/name    attribute-equality predicate
    /patients/*/name                    wildcard element name

This is exactly enough to bind legacy hierarchical records to the
privacy vocabulary (a :class:`~repro.treestore.enforcement.TreeBinding`
maps path patterns to data categories) and to let tests pin selection
semantics precisely.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.treestore.node import TreeDocument, TreeError, TreeNode

_NAME = re.compile(r"[A-Za-z_][A-Za-z0-9_-]*|\*")
_PREDICATE = re.compile(r"\[@([A-Za-z_][A-Za-z0-9_-]*)='([^']*)'\]")


@dataclass(frozen=True, slots=True)
class Step:
    """One step of a compiled path."""

    axis: str  # "child" or "descendant"
    name: str  # element name or "*"
    attribute: tuple[str, str] | None = None  # (attr, required value)

    def matches(self, node: TreeNode) -> bool:
        """Does ``node`` satisfy this step's name and predicate?"""
        if self.name != "*" and node.name != self.name:
            return False
        if self.attribute is not None:
            attr, value = self.attribute
            if node.attributes.get(attr) != value:
                return False
        return True


class PathExpression:
    """A compiled path; use :meth:`select` to run it."""

    def __init__(self, steps: tuple[Step, ...], source: str) -> None:
        self.steps = steps
        self.source = source

    def select(self, target: TreeDocument | TreeNode) -> tuple[TreeNode, ...]:
        """Nodes matched by this path, in document order, deduplicated.

        Against a :class:`TreeDocument` the first child step must match
        the root element (standard absolute-path semantics); against a
        bare node the node plays the document-root role.
        """
        root = target.root if isinstance(target, TreeDocument) else target
        context: list[TreeNode] = [_DocumentSentinel(root)]  # type: ignore[list-item]
        for step in self.steps:
            matched: list[TreeNode] = []
            seen: set[int] = set()
            for node in context:
                candidates = (
                    _descendants(node) if step.axis == "descendant" else node.children
                )
                for candidate in candidates:
                    if step.matches(candidate) and id(candidate) not in seen:
                        seen.add(id(candidate))
                        matched.append(candidate)
            context = matched
            if not context:
                return ()
        return tuple(context)

    def matches_node(self, node: TreeNode) -> bool:
        """True iff ``node`` is in the selection of this path from its
        document root — used by bindings to classify arbitrary nodes."""
        top = node
        while top.parent is not None:
            top = top.parent
        return node in self.select(top)

    def __str__(self) -> str:
        return self.source

    def __repr__(self) -> str:
        return f"PathExpression({self.source!r})"


class _DocumentSentinel:
    """Stands above the root so absolute paths can match the root itself."""

    __slots__ = ("_root",)

    def __init__(self, root: TreeNode) -> None:
        self._root = root

    @property
    def children(self) -> tuple[TreeNode, ...]:
        return (self._root,)

    def walk(self):  # pragma: no cover - only _descendants uses children
        yield from self._root.walk()


def _descendants(node) -> tuple[TreeNode, ...]:
    """All strict descendants (the ``//`` axis) of ``node``."""
    found: list[TreeNode] = []
    for child in node.children:
        found.extend(child.walk())
    return tuple(found)


def compile_path(text: str) -> PathExpression:
    """Compile a path expression; raises :class:`TreeError` on bad syntax."""
    if not isinstance(text, str) or not text.startswith("/"):
        raise TreeError(f"paths must start with '/': {text!r}")
    steps: list[Step] = []
    position = 0
    length = len(text)
    while position < length:
        if text.startswith("//", position):
            axis = "descendant"
            position += 2
        elif text.startswith("/", position):
            axis = "child"
            position += 1
        else:
            raise TreeError(f"expected '/' at offset {position} in {text!r}")
        name_match = _NAME.match(text, position)
        if name_match is None:
            raise TreeError(f"expected an element name at offset {position} in {text!r}")
        name = name_match.group(0)
        position = name_match.end()
        attribute: tuple[str, str] | None = None
        predicate_match = _PREDICATE.match(text, position)
        if predicate_match is not None:
            attribute = (predicate_match.group(1), predicate_match.group(2))
            position = predicate_match.end()
        steps.append(Step(axis=axis, name=name, attribute=attribute))
    if not steps:
        raise TreeError(f"empty path expression: {text!r}")
    return PathExpression(tuple(steps), text)
