"""Audit Management — the federation layer of Section 4.2.

The paper's first instantiation uses DB2 Information Integrator "to create
a virtual view of all the audit trails"; any mechanism "that can
consolidate all audit data in one place for subsequent analysis" is
acceptable.  :class:`AuditFederation` is that mechanism here:

- member sites register their :class:`~repro.audit.log.AuditLog`s —
  eagerly (:meth:`register`) or lazily from a path
  (:meth:`register_path`, :meth:`register_directory`), so a federation
  over many sites' CSV/JSONL exports or durable store directories costs
  nothing until consolidation actually reads a member;
- :meth:`consolidated_log` merges them into one time-ordered log (a
  physical consolidation, what refinement consumes);
- :meth:`register_view` exposes a *virtual* union view inside a sqlmini
  :class:`~repro.sqlmini.database.Database`, with a ``site`` provenance
  column — the Information Integrator analogue, always reflecting current
  member data without copying.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator
from pathlib import Path
from typing import TYPE_CHECKING

from repro.audit.entry import AuditEntry
from repro.audit.log import AuditLog
from repro.errors import FederationError
from repro.sqlmini.database import Database
from repro.sqlmini.schema import Column
from repro.sqlmini.table import ViewTable
from repro.sqlmini.types import SqlType, Value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.durable import DurableAuditLog

#: File suffixes :meth:`AuditFederation.register_path` understands.
_FILE_SUFFIXES = (".csv", ".jsonl", ".ndjson")


def _load_member(path: Path, site: str) -> "AuditLog | DurableAuditLog":
    """Load one member source: a CSV/JSONL file or a store directory."""
    from repro.audit import io as audit_io

    if path.is_dir():
        from repro.store.durable import DurableAuditLog
        from repro.store.manifest import manifest_path

        if not manifest_path(path).exists():
            raise FederationError(
                f"member path {path} is a directory without a store manifest"
            )
        return DurableAuditLog(path, name=site, create=False)
    suffix = path.suffix.lower()
    if suffix == ".csv":
        return audit_io.load_csv(path, name=site)
    if suffix in (".jsonl", ".ndjson"):
        return audit_io.load_jsonl(path, name=site)
    raise FederationError(
        f"member path {path} has unsupported format {suffix!r} "
        f"(use {_FILE_SUFFIXES} or a store directory)"
    )


class AuditFederation:
    """A consolidated view over many per-site audit logs."""

    def __init__(self, name: str = "audit_federation") -> None:
        self.name = name
        self._members: dict[str, AuditLog] = {}
        self._pending: dict[str, Path] = {}  # site -> unloaded source path

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def _claim_site(self, site: str) -> str:
        key = site.strip().lower()
        if not key:
            raise FederationError("site names must be non-empty")
        if key in self._members or key in self._pending:
            raise FederationError(f"site {site!r} is already registered")
        return key

    def register(self, site: str, log: AuditLog) -> None:
        """Register one member site's log under the name ``site``."""
        self._members[self._claim_site(site)] = log

    def register_path(self, site: str, path: str | Path) -> None:
        """Attach a member lazily from an on-disk source.

        ``path`` may be a ``.csv`` / ``.jsonl`` / ``.ndjson`` export or a
        durable store directory; nothing is read until the member is
        first consolidated, queried or measured, so registering hundreds
        of sites is free.  The source must exist at registration time
        (fail fast on typos); format problems surface on first access.
        """
        source = Path(path)
        if not source.exists():
            raise FederationError(f"member path {source} does not exist")
        self._pending[self._claim_site(site)] = source

    def register_directory(self, root: str | Path) -> tuple[str, ...]:
        """Register every audit source directly under ``root`` as a site.

        Each ``*.csv`` / ``*.jsonl`` / ``*.ndjson`` file becomes a site
        named by its stem; each subdirectory containing a store manifest
        becomes a site named by the directory name.  Returns the site
        names added, sorted.
        """
        from repro.store.manifest import manifest_path

        base = Path(root)
        if not base.is_dir():
            raise FederationError(f"{base} is not a directory of member sites")
        added: list[str] = []
        for child in sorted(base.iterdir()):
            if child.is_dir() and manifest_path(child).exists():
                self.register_path(child.name, child)
                added.append(child.name.strip().lower())
            elif child.is_file() and child.suffix.lower() in _FILE_SUFFIXES:
                self.register_path(child.stem, child)
                added.append(child.stem.strip().lower())
        if not added:
            raise FederationError(f"{base} holds no recognisable audit sources")
        return tuple(sorted(added))

    @property
    def sites(self) -> tuple[str, ...]:
        return tuple(sorted(set(self._members) | set(self._pending)))

    def member(self, site: str) -> "AuditLog | DurableAuditLog":
        """The registered log of one member site (loading it if lazy)."""
        key = site.strip().lower()
        if key in self._pending:
            self._members[key] = _load_member(self._pending.pop(key), key)
        try:
            return self._members[key]
        except KeyError:
            raise FederationError(
                f"no such federation member {site!r} (sites: {self.sites})"
            ) from None

    def _resolved_members(self) -> list[tuple[str, "AuditLog | DurableAuditLog"]]:
        """All members in site order, loading any still-lazy ones."""
        return [(site, self.member(site)) for site in self.sites]

    def shard_sources(self) -> tuple[tuple[str, "AuditLog | DurableAuditLog | Path"], ...]:
        """Per-site shard sources in site order, without forcing parses.

        Each element is ``(site, source)`` where ``source`` is either the
        registered log object or, for members still lazy, the raw
        :class:`~pathlib.Path` (CSV/JSONL export or store directory).
        The parallel refinement sharder
        (:func:`repro.parallel.shards.shards_of`) maps each member to its
        own shard, so a lazy file member is parsed inside the worker that
        owns it rather than in the coordinator.  The federation-wide
        entry order this implies is site-major — site order, then each
        member's own append order — matching :meth:`register_view`'s
        virtual rows, not the time-merged :meth:`consolidated_log`.
        """
        if not self._members and not self._pending:
            raise FederationError(f"federation {self.name!r} has no members")
        sources: list[tuple[str, "AuditLog | DurableAuditLog | Path"]] = []
        for site in self.sites:
            if site in self._pending:
                sources.append((site, self._pending[site]))
            else:
                sources.append((site, self._members[site]))
        return tuple(sources)

    def __len__(self) -> int:
        """Total entries across all members (loads lazy members)."""
        return sum(len(log) for _, log in self._resolved_members())

    # ------------------------------------------------------------------
    # consolidation
    # ------------------------------------------------------------------
    def consolidated_log(self, name: str | None = None) -> AuditLog:
        """Merge all member logs into one time-ordered log.

        Member logs are individually time-ordered, so this is a k-way
        merge; ties keep site order stable.
        """
        if not self._members and not self._pending:
            raise FederationError(f"federation {self.name!r} has no members")

        def keyed(site_index: int, log) -> Iterator[tuple[int, int, int, AuditEntry]]:
            for sequence, entry in enumerate(log):
                yield (entry.time, site_index, sequence, entry)

        merged = heapq.merge(
            *(
                keyed(index, log)
                for index, (_, log) in enumerate(self._resolved_members())
            )
        )
        result = AuditLog(name=name or f"{self.name}.consolidated")
        for _, _, _, entry in merged:
            result.append(entry)
        return result

    def _view_rows(self) -> Iterator[tuple[Value, ...]]:
        """Rows of the virtual union view: audit columns plus site."""
        for site, log in self._resolved_members():
            for entry in log:
                yield (*entry.as_row(), site)

    def register_view(self, database: Database, view_name: str = "federated_audit") -> ViewTable:
        """Expose the federation as a queryable virtual table.

        The view re-enumerates member logs on every scan, so SQL run
        against it always sees each site's latest entries — the virtual
        (non-materialised) semantics of a federated view.
        """
        columns = (
            Column("time", SqlType.INTEGER, nullable=False),
            Column("op", SqlType.INTEGER, nullable=False),
            Column("user", SqlType.TEXT, nullable=False),
            Column("data", SqlType.TEXT, nullable=False),
            Column("purpose", SqlType.TEXT, nullable=False),
            Column("authorized", SqlType.TEXT, nullable=False),
            Column("status", SqlType.INTEGER, nullable=False),
            Column("site", SqlType.TEXT, nullable=False),
        )
        return database.register_view(view_name, columns, self._view_rows)
