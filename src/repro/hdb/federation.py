"""Audit Management — the federation layer of Section 4.2.

The paper's first instantiation uses DB2 Information Integrator "to create
a virtual view of all the audit trails"; any mechanism "that can
consolidate all audit data in one place for subsequent analysis" is
acceptable.  :class:`AuditFederation` is that mechanism here:

- member sites register their :class:`~repro.audit.log.AuditLog`s;
- :meth:`consolidated_log` merges them into one time-ordered log (a
  physical consolidation, what refinement consumes);
- :meth:`register_view` exposes a *virtual* union view inside a sqlmini
  :class:`~repro.sqlmini.database.Database`, with a ``site`` provenance
  column — the Information Integrator analogue, always reflecting current
  member data without copying.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator

from repro.audit.entry import AuditEntry
from repro.audit.log import AuditLog
from repro.errors import FederationError
from repro.sqlmini.database import Database
from repro.sqlmini.schema import Column
from repro.sqlmini.table import ViewTable
from repro.sqlmini.types import SqlType, Value


class AuditFederation:
    """A consolidated view over many per-site audit logs."""

    def __init__(self, name: str = "audit_federation") -> None:
        self.name = name
        self._members: dict[str, AuditLog] = {}

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def register(self, site: str, log: AuditLog) -> None:
        """Register one member site's log under the name ``site``."""
        key = site.strip().lower()
        if not key:
            raise FederationError("site names must be non-empty")
        if key in self._members:
            raise FederationError(f"site {site!r} is already registered")
        self._members[key] = log

    @property
    def sites(self) -> tuple[str, ...]:
        return tuple(sorted(self._members))

    def member(self, site: str) -> AuditLog:
        """The registered log of one member site."""
        try:
            return self._members[site.strip().lower()]
        except KeyError:
            raise FederationError(
                f"no such federation member {site!r} (sites: {self.sites})"
            ) from None

    def __len__(self) -> int:
        """Total entries across all members."""
        return sum(len(log) for log in self._members.values())

    # ------------------------------------------------------------------
    # consolidation
    # ------------------------------------------------------------------
    def consolidated_log(self, name: str | None = None) -> AuditLog:
        """Merge all member logs into one time-ordered log.

        Member logs are individually time-ordered, so this is a k-way
        merge; ties keep site order stable.
        """
        if not self._members:
            raise FederationError(f"federation {self.name!r} has no members")

        def keyed(site_index: int, log: AuditLog) -> Iterator[tuple[int, int, int, AuditEntry]]:
            for sequence, entry in enumerate(log):
                yield (entry.time, site_index, sequence, entry)

        merged = heapq.merge(
            *(
                keyed(index, log)
                for index, (_, log) in enumerate(sorted(self._members.items()))
            )
        )
        result = AuditLog(name=name or f"{self.name}.consolidated")
        for _, _, _, entry in merged:
            result.append(entry)
        return result

    def _view_rows(self) -> Iterator[tuple[Value, ...]]:
        """Rows of the virtual union view: audit columns plus site."""
        for site, log in sorted(self._members.items()):
            for entry in log:
                yield (*entry.as_row(), site)

    def register_view(self, database: Database, view_name: str = "federated_audit") -> ViewTable:
        """Expose the federation as a queryable virtual table.

        The view re-enumerates member logs on every scan, so SQL run
        against it always sees each site's latest entries — the virtual
        (non-materialised) semantics of a federated view.
        """
        columns = (
            Column("time", SqlType.INTEGER, nullable=False),
            Column("op", SqlType.INTEGER, nullable=False),
            Column("user", SqlType.TEXT, nullable=False),
            Column("data", SqlType.TEXT, nullable=False),
            Column("purpose", SqlType.TEXT, nullable=False),
            Column("authorized", SqlType.TEXT, nullable=False),
            Column("status", SqlType.INTEGER, nullable=False),
            Column("site", SqlType.TEXT, nullable=False),
        )
        return database.register_view(view_name, columns, self._view_rows)
