"""Accounting of disclosures — the patient-facing ledger.

HIPAA grants patients an *accounting of disclosures*: who saw their data,
when, and why.  The paper's audit schema deliberately omits the data
subject (Section 4.2 logs the requester side), so enforcement keeps this
separate ledger: one :class:`Disclosure` per (request, patient, category)
actually returned.  Entries are recorded only for data that left the
system — policy-masked categories and consent-masked cells never
disclosed anything and therefore never appear.

The ledger answers the two questions patients and compliance officers
ask: :meth:`DisclosureLedger.accounting_for` (everything about one
patient) and :meth:`DisclosureLedger.recipients_of` (who has seen a given
category of one patient's data).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterator
from dataclasses import dataclass

from repro.audit.schema import AccessStatus
from repro.errors import AuditError
from repro.vocab.tree import canonical


@dataclass(frozen=True, slots=True)
class Disclosure:
    """One patient-data disclosure event."""

    time: int
    patient: str
    user: str
    role: str
    data: str
    purpose: str
    status: AccessStatus

    def __post_init__(self) -> None:
        for attribute in ("patient", "user", "role", "data", "purpose"):
            object.__setattr__(self, attribute, canonical(getattr(self, attribute)))

    @property
    def was_break_the_glass(self) -> bool:
        return self.status is AccessStatus.EXCEPTION


class DisclosureLedger:
    """Append-only per-patient disclosure history."""

    def __init__(self) -> None:
        self._disclosures: list[Disclosure] = []
        self._by_patient: dict[str, list[Disclosure]] = {}

    def record(self, disclosure: Disclosure) -> None:
        """Append one disclosure event."""
        if not isinstance(disclosure, Disclosure):
            raise AuditError(f"ledgers hold Disclosure objects, got {disclosure!r}")
        self._disclosures.append(disclosure)
        self._by_patient.setdefault(disclosure.patient, []).append(disclosure)

    def record_access(
        self,
        time: int,
        patients: list[str] | tuple[str, ...],
        user: str,
        role: str,
        categories: tuple[str, ...],
        purpose: str,
        status: AccessStatus,
    ) -> int:
        """Record one enforced request touching many patients/categories;
        returns the number of disclosure events written."""
        written = 0
        for patient in patients:
            for category in categories:
                self.record(
                    Disclosure(
                        time=time,
                        patient=patient,
                        user=user,
                        role=role,
                        data=category,
                        purpose=purpose,
                        status=status,
                    )
                )
                written += 1
        return written

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._disclosures)

    def __iter__(self) -> Iterator[Disclosure]:
        return iter(self._disclosures)

    def accounting_for(self, patient: str) -> tuple[Disclosure, ...]:
        """Every disclosure of one patient's data, oldest first."""
        return tuple(self._by_patient.get(canonical(patient), ()))

    def recipients_of(self, patient: str, data: str | None = None) -> tuple[str, ...]:
        """Distinct users who received the patient's data (optionally one
        category), sorted."""
        wanted = canonical(data) if data is not None else None
        return tuple(
            sorted(
                {
                    disclosure.user
                    for disclosure in self.accounting_for(patient)
                    if wanted is None or disclosure.data == wanted
                }
            )
        )

    def break_the_glass_count(self, patient: str) -> int:
        """How often the patient's data left via the exception path."""
        return sum(
            1
            for disclosure in self.accounting_for(patient)
            if disclosure.was_break_the_glass
        )

    def busiest_patients(self, top: int = 10) -> tuple[tuple[str, int], ...]:
        """Patients with the most disclosures — the review starting point."""
        counts = Counter(d.patient for d in self._disclosures)
        return tuple(counts.most_common(top))

    def render_accounting(self, patient: str) -> str:
        """The patient-facing plain-text accounting statement."""
        events = self.accounting_for(patient)
        lines = [
            f"Accounting of disclosures for patient {canonical(patient)!r}",
            f"total disclosures: {len(events)} "
            f"(break-the-glass: {self.break_the_glass_count(patient)})",
        ]
        for event in events:
            flag = " [BREAK-THE-GLASS]" if event.was_break_the_glass else ""
            lines.append(
                f"  t{event.time}: {event.data} -> {event.user} ({event.role}) "
                f"for {event.purpose}{flag}"
            )
        return "\n".join(lines)
