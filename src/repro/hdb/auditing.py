"""HDB Compliance Auditing — the middleware that writes the audit trail.

Every enforced request produces audit entries in the Section 4.2 schema,
one per data category touched, tagged with the access decision (``op``)
and the regular/exception flag (``status``).  The auditor owns the logical
clock so entry times are monotone even when many components log.

The paper's first concern about retroactive controls is overhead; the
auditor therefore does nothing but append to its log (cheap by
construction) and exposes counters so benchmark E6 can quantify the cost.
The log defaults to in-memory; hand the constructor a
:class:`~repro.store.durable.DurableAuditLog` to write the trail through
to the crash-safe segmented store instead (E16 measures that path).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.audit.entry import AuditEntry
from repro.audit.log import AuditLog
from repro.audit.schema import AccessOp, AccessStatus
from repro.errors import AuditError
from repro.obs import trace as obstrace
from repro.obs.runtime import get_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.durable import DurableAuditLog
    from repro.vocab.vocabulary import Vocabulary


class LogicalClock:
    """A monotonically increasing integer clock.

    Injectable so tests and the workload generator can control time; the
    default starts at 1 to match the paper's ``t1 … t10`` example.
    """

    def __init__(self, start: int = 1) -> None:
        self._next = start

    def tick(self) -> int:
        """Return the current tick and advance."""
        value = self._next
        self._next += 1
        return value

    def peek(self) -> int:
        """The tick the next event will get."""
        return self._next

    def advance_to(self, tick: int) -> None:
        """Jump forward so the next event gets ``tick``.

        Clocks only move forward; workload generators use this to model
        wall-clock gaps (nights, weekends) between bursts of activity.
        """
        if tick < self._next:
            raise ValueError(
                f"logical clocks cannot rewind ({tick} < {self._next})"
            )
        self._next = tick


@dataclass
class AuditorStats:
    """Counters for overhead accounting."""

    entries_written: int = 0
    requests_audited: int = 0


class ComplianceAuditor:
    """Writes audit entries for enforced accesses.

    ``log`` is any AuditLog-protocol sink: the default in-memory
    :class:`~repro.audit.log.AuditLog`, or a
    :class:`~repro.store.durable.DurableAuditLog` to write the trail
    through to crash-safe disk segments.  An optional ``vocabulary``
    turns on write-time validation: accesses carrying a role or purpose
    outside the vocabulary raise :class:`~repro.errors.AuditError`
    naming the offending request instead of polluting the trail.
    """

    def __init__(
        self,
        log: "AuditLog | DurableAuditLog | None" = None,
        clock: LogicalClock | None = None,
        vocabulary: "Vocabulary | None" = None,
    ) -> None:
        self.log = log if log is not None else AuditLog()
        self.clock = clock if clock is not None else LogicalClock()
        self.vocabulary = vocabulary
        self.stats = AuditorStats()
        # The append path stays counter-free; a weakly-held collector
        # flushes AuditorStats deltas into the registry at snapshot time.
        self._obs = get_registry()
        self._reported = (0, 0)  # entries written, requests audited
        if self._obs.enabled:
            self._obs.register_collector(self._flush_metrics)

    def _flush_metrics(self) -> None:
        reg = self._obs
        current = (self.stats.entries_written, self.stats.requests_audited)
        seen = self._reported
        reg.counter("repro_hdb_audit_entries_total").inc(current[0] - seen[0])
        reg.counter("repro_hdb_audit_requests_total").inc(current[1] - seen[1])
        self._reported = current
        reg.gauge("repro_hdb_audit_log_size").set(len(self.log))

    def record_access(
        self,
        user: str,
        role: str,
        purpose: str,
        categories: tuple[str, ...],
        op: AccessOp,
        status: AccessStatus,
        truth: str = "",
    ) -> tuple[AuditEntry, ...]:
        """Write one entry per data category at a single tick.

        All categories of one request share a timestamp — they are one
        clinical action — which also matches how Table 1 numbers entries.

        When the auditor holds a vocabulary, a role or purpose the
        vocabulary never defined raises :class:`~repro.errors.AuditError`
        *before* anything is written — the trail never gains entries the
        refinement loop cannot ground.
        """
        if not categories:
            return ()
        started = time.perf_counter()
        if self.vocabulary is not None:
            next_tick = self.clock.peek()
            for attribute, value in (("authorized", role), ("purpose", purpose)):
                tree = self.vocabulary.tree_for(attribute)
                if tree is not None and value not in tree:
                    raise AuditError(
                        f"refusing to audit access by {user!r} at tick "
                        f"{next_tick}: unknown {attribute} value {value!r} "
                        f"is not a node of the {attribute!r} vocabulary tree"
                    )
        tick = self.clock.tick()
        entries = tuple(
            AuditEntry(
                time=tick,
                op=op,
                user=user,
                data=category,
                purpose=purpose,
                authorized=role,
                status=status,
                truth=truth,
            )
            for category in categories
        )
        for entry in entries:
            self.log.append(entry)
        self.stats.entries_written += len(entries)
        self.stats.requests_audited += 1
        # One ContextVar read when the request is untraced.
        obstrace.record_span(
            "repro_hdb_record_access",
            started,
            time.perf_counter() - started,
            labels={"entries": str(len(entries))},
        )
        return entries
