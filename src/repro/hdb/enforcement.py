"""HDB Active Enforcement — policy- and consent-aware query rewriting.

This is the middleware of the paper's Figure 5: it sits between the end
user's query and the clinical database.  For every SELECT it

1. maps the selected columns to privacy-vocabulary data categories via the
   table's :class:`TableBinding`;
2. checks each category against the policy store (does any active rule
   cover ``(data, category) ^ (purpose, p) ^ (authorized, role)``?);
3. **rewrites the query AST** so that policy-denied columns return NULL
   (cell-level masking, the HDB approach) and the patient-id column rides
   along hidden for consent resolution;
4. executes the rewritten query, then applies patient consent: cells whose
   category the patient opted out of (for this purpose) become NULL, and
   rows belonging to patients with a whole-purpose opt-out are dropped;
5. hands the access to Compliance Auditing.

Break-the-glass: a request with ``exception=True`` bypasses the policy
check (and consent — emergencies override preferences) but is audited with
``status = EXCEPTION``, which is precisely the raw material the refinement
pipeline mines.  A request that the policy fully denies (no permitted
column) raises :class:`~repro.errors.AccessDeniedError` and is audited
with ``op = DENY``, unless it came in as an exception.

Known limitation, shared with the original HDB prototype: predicates in
WHERE are not masked, so a crafted WHERE can leak one bit per query about
a protected column.  The paper's threat model (honest-but-sloppy clinical
workflow, not adversarial SQL) accepts this.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

from repro.audit.schema import AccessOp, AccessStatus
from repro.errors import AccessDeniedError, EnforcementError
from repro.hdb.auditing import ComplianceAuditor
from repro.obs.runtime import get_registry
from repro.hdb.consent import ConsentStore
from repro.policy.rule import Rule
from repro.policy.store import PolicyStore
from repro.sqlmini import ast
from repro.sqlmini.database import Database
from repro.sqlmini.executor import ResultSet
from repro.sqlmini.parser import parse
from repro.sqlmini.table import Table
from repro.vocab.tree import canonical
from repro.vocab.vocabulary import Vocabulary

_LOGGER = logging.getLogger("repro.hdb.enforcement")


@dataclass(frozen=True)
class TableBinding:
    """How one clinical table maps onto the privacy vocabulary.

    ``categories`` maps column names to data-category values; columns that
    are not mapped (e.g. surrogate keys) are uncontrolled and always pass.
    ``patient_column`` names the column carrying the data subject's id.
    """

    table: str
    patient_column: str
    categories: dict[str, str]

    def __post_init__(self) -> None:
        object.__setattr__(self, "table", self.table.strip().lower())
        object.__setattr__(self, "patient_column", self.patient_column.strip().lower())
        object.__setattr__(
            self,
            "categories",
            {key.strip().lower(): canonical(value) for key, value in self.categories.items()},
        )

    def category_of(self, column: str) -> str | None:
        """The data category bound to ``column``, or None if unbound."""
        return self.categories.get(column.strip().lower())


@dataclass(frozen=True, slots=True)
class AccessRequest:
    """One user query plus the context enforcement needs."""

    user: str
    role: str
    purpose: str
    sql: str
    exception: bool = False
    truth: str = ""  # evaluation-only ground-truth label, see AuditEntry


@dataclass(frozen=True)
class EnforcementResult:
    """What came back from an enforced query."""

    result: ResultSet
    decision: AccessOp
    status: AccessStatus
    categories_returned: tuple[str, ...]
    categories_masked: tuple[str, ...]
    cells_masked_by_consent: int
    rows_dropped_by_consent: int
    rewritten_sql: str


@dataclass
class EnforcerStats:
    """Counters for the overhead benchmark (E6)."""

    requests: int = 0
    denials: int = 0
    exceptions: int = 0
    policy_masked_columns: int = 0
    consent_masked_cells: int = 0
    consent_dropped_rows: int = 0
    permit_cache_hits: int = 0
    permit_cache_misses: int = 0
    permit_cache_invalidations: int = 0


class ActiveEnforcer:
    """The Active Enforcement middleware over one clinical database."""

    def __init__(
        self,
        database: Database,
        policy_store: PolicyStore,
        consent: ConsentStore,
        auditor: ComplianceAuditor,
        vocabulary: Vocabulary,
        ledger: "DisclosureLedger | None" = None,
    ) -> None:
        self.database = database
        self.policy_store = policy_store
        self.consent = consent
        self.auditor = auditor
        self.vocabulary = vocabulary
        #: optional accounting-of-disclosures ledger (see
        #: :mod:`repro.hdb.accounting`); when set, every category actually
        #: returned is recorded against the owning patient
        self.ledger = ledger
        self._bindings: dict[str, TableBinding] = {}
        self.stats = EnforcerStats()
        # permit decisions memoised per (category, purpose, role) as
        # (permitted, covering-rule revision), stamped with (policy-store
        # revision, vocabulary version) — the grounder's version-stamp
        # pattern, so a stale cache is impossible by construction (see
        # policy_decision)
        self._permit_cache: dict[tuple[str, str, str], tuple[bool, int | None]] = {}
        self._permit_stamp: tuple[int, int] = (-1, -1)
        # per-(table, column signature) controlled-item plans; re-binding
        # a table invalidates (see _controlled_plan)
        self._plan_cache: dict[tuple[str, tuple[str | None, ...]],
                               tuple[tuple[int, str, str], ...]] = {}
        #: registry captured at construction; enforcement decisions and
        #: per-request latency are recorded against it
        self._obs = get_registry()

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def bind_table(self, binding: TableBinding) -> None:
        """Register the privacy binding for one clinical table."""
        table = self.database.table(binding.table)  # validates existence
        if binding.patient_column not in table.schema:
            raise EnforcementError(
                f"patient column {binding.patient_column!r} does not exist "
                f"in table {binding.table!r}"
            )
        for column in binding.categories:
            if column not in table.schema:
                raise EnforcementError(
                    f"bound column {column!r} does not exist in table {binding.table!r}"
                )
        if isinstance(table, Table):
            # every served query is rewritten with a patient-id equality
            # predicate, so give the optimizer a hash index to seek on
            table.create_index(binding.patient_column, kind="hash")
        self._bindings[binding.table] = binding
        self._plan_cache.clear()  # plans may embed the replaced binding

    @property
    def bindings(self) -> tuple[TableBinding, ...]:
        """Every registered table binding (the decision service rebinds
        these when it builds a copy-on-write snapshot)."""
        return tuple(self._bindings.values())

    def binding_for(self, table: str) -> TableBinding:
        """The registered binding for ``table``; raises if unbound."""
        try:
            return self._bindings[table.strip().lower()]
        except KeyError:
            raise EnforcementError(
                f"table {table!r} has no privacy binding; refusing to serve it"
            ) from None

    # ------------------------------------------------------------------
    # policy decision
    # ------------------------------------------------------------------
    def policy_permits(self, category: str, purpose: str, role: str) -> bool:
        """Does any active store rule cover this concrete access?"""
        return self.policy_decision(category, purpose, role)[0]

    def policy_decision(
        self, category: str, purpose: str, role: str
    ) -> tuple[bool, int | None]:
        """The policy verdict plus *which rule* made it.

        Returns ``(permitted, revision)`` where ``revision`` is the
        store revision of the first covering rule — the stable rule id
        decision provenance carries — or None when nothing covers the
        access (the deny reason).  Memoised per ``(category, purpose,
        role)`` and stamped with ``(policy-store revision, vocabulary
        version)``: mutating either clears the memo before the next
        lookup, so the serve hot path repays repeated decisions without
        ever reading a stale one.
        """
        stamp = (self.policy_store.revision, self.vocabulary.version)
        if stamp != self._permit_stamp:
            if self._permit_cache:
                self.stats.permit_cache_invalidations += 1
                self._permit_cache.clear()
            self._permit_stamp = stamp
        key = (canonical(category), canonical(purpose), canonical(role))
        decision = self._permit_cache.get(key)
        if decision is None:
            request_rule = Rule.of(data=key[0], purpose=key[1], authorized=key[2])
            decision = (False, None)
            for rule in self.policy_store:
                if rule.covers(request_rule, self.vocabulary):
                    decision = (True, self.policy_store.record_for(rule).revision)
                    break
            self._permit_cache[key] = decision
            self.stats.permit_cache_misses += 1
        else:
            self.stats.permit_cache_hits += 1
        return decision

    # ------------------------------------------------------------------
    # the enforcement pipeline
    # ------------------------------------------------------------------
    def execute(self, request: AccessRequest) -> EnforcementResult:
        """Enforce, run and audit one request.

        The whole decision-rewrite-execute-audit path runs inside a
        ``repro_hdb_enforcement_execute`` span; the outcome lands in
        ``repro_hdb_enforcement_decisions_total{decision,purpose,role}``.
        """
        with self._obs.span("repro_hdb_enforcement_execute"):
            return self._serve(request)

    def _count_decision(self, decision: str, purpose: str, role: str) -> None:
        self._obs.counter(
            "repro_hdb_enforcement_decisions_total",
            decision=decision,
            purpose=purpose,
            role=role,
        ).inc()

    def _serve(self, request: AccessRequest) -> EnforcementResult:
        self.stats.requests += 1
        select = self._parse_select(request.sql)
        binding = self.binding_for(select.table)
        items = self._expand_items(select, binding)

        role = canonical(request.role)
        purpose = canonical(request.purpose)
        # (position, column, category) for every controlled select item,
        # memoised per column signature
        plan = self._controlled_plan(binding, items)

        if request.exception:
            status = AccessStatus.EXCEPTION
            permitted = {category for _, _, category in plan}
            self.stats.exceptions += 1
        else:
            status = AccessStatus.REGULAR
            permitted = {
                category
                for _, _, category in plan
                if self.policy_permits(category, purpose, role)
            }

        masked = tuple(
            sorted({cat for _, _, cat in plan if cat not in permitted})
        )
        returned = tuple(sorted(permitted))
        if plan and not permitted:
            self.stats.denials += 1
            if self._obs.enabled:
                self._count_decision("deny", purpose, role)
            _LOGGER.debug(
                "deny user=%s role=%s purpose=%s categories=%s",
                request.user, role, purpose, ",".join(masked),
            )
            self.auditor.record_access(
                user=request.user,
                role=role,
                purpose=purpose,
                categories=masked,
                op=AccessOp.DENY,
                status=status,
                truth=request.truth,
            )
            raise AccessDeniedError(
                f"policy permits none of the requested categories {masked} "
                f"for role {role!r} and purpose {purpose!r}"
            )

        rewritten = self._rewrite(select, items, plan, binding, permitted)
        raw = self.database.execute_statement(rewritten)
        assert isinstance(raw, ResultSet)
        category_positions = [(position, category) for position, _, category in plan]
        final, cells_masked, rows_dropped, disclosed = self._apply_consent(
            raw, category_positions, purpose, bypass=request.exception
        )
        self.stats.policy_masked_columns += len(masked)
        self.stats.consent_masked_cells += cells_masked
        self.stats.consent_dropped_rows += rows_dropped
        if self._obs.enabled:
            reg = self._obs
            self._count_decision(
                "exception" if request.exception else "allow", purpose, role
            )
            if masked:
                self._count_decision("rewrite", purpose, role)
                reg.counter("repro_hdb_enforcement_masked_columns_total").inc(
                    len(masked)
                )
            reg.counter("repro_hdb_enforcement_consent_cells_masked_total").inc(
                cells_masked
            )
            reg.counter("repro_hdb_enforcement_consent_rows_dropped_total").inc(
                rows_dropped
            )

        allow_entries = self.auditor.record_access(
            user=request.user,
            role=role,
            purpose=purpose,
            categories=returned,
            op=AccessOp.ALLOW,
            status=status,
            truth=request.truth,
        )
        if self.ledger is not None and allow_entries:
            from repro.hdb.accounting import Disclosure

            tick = allow_entries[0].time
            for patient, categories in disclosed.items():
                for category in sorted(categories):
                    self.ledger.record(
                        Disclosure(
                            time=tick,
                            patient=patient,
                            user=request.user,
                            role=role,
                            data=category,
                            purpose=purpose,
                            status=status,
                        )
                    )
        if masked:
            self.auditor.record_access(
                user=request.user,
                role=role,
                purpose=purpose,
                categories=masked,
                op=AccessOp.DENY,
                status=status,
                truth=request.truth,
            )
        return EnforcementResult(
            result=final,
            decision=AccessOp.ALLOW,
            status=status,
            categories_returned=returned,
            categories_masked=masked,
            cells_masked_by_consent=cells_masked,
            rows_dropped_by_consent=rows_dropped,
            rewritten_sql=str(rewritten),
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _parse_select(sql: str) -> ast.Select:
        statement = parse(sql)
        if not isinstance(statement, ast.Select):
            raise EnforcementError("enforcement serves single-table SELECTs only")
        if statement.joins:
            raise EnforcementError("enforcement does not serve JOIN queries")
        aggregated = any(
            not isinstance(item.expr, ast.Star) and ast.contains_aggregate(item.expr)
            for item in statement.items
        )
        if statement.group_by or statement.having or aggregated:
            raise EnforcementError(
                "enforcement serves record retrieval, not aggregation"
            )
        return statement

    def _expand_items(
        self, select: ast.Select, binding: TableBinding
    ) -> tuple[ast.SelectItem, ...]:
        """Expand ``*`` against the bound table's schema."""
        table = self.database.table(binding.table)
        items: list[ast.SelectItem] = []
        for item in select.items:
            if isinstance(item.expr, ast.Star):
                items.extend(
                    ast.SelectItem(ast.ColumnRef(column.name))
                    for column in table.schema.columns
                )
            else:
                items.append(item)
        return tuple(items)

    @staticmethod
    def _item_column(item: ast.SelectItem) -> str | None:
        """The underlying column of a select item, if it is a plain ref."""
        if isinstance(item.expr, ast.ColumnRef):
            return item.expr.name
        columns = ast.collect_columns(item.expr)
        if columns:
            raise EnforcementError(
                "enforced queries must select plain columns, not expressions "
                f"over them (offending item: {item})"
            )
        return None

    def _controlled_plan(
        self, binding: TableBinding, items: tuple[ast.SelectItem, ...]
    ) -> tuple[tuple[int, str, str], ...]:
        """``(position, column, category)`` for each controlled item.

        Memoised per ``(table, column signature)``: the serve hot path
        replays a small set of query shapes over and over, and the
        per-item category lookups are pure functions of the binding.
        Re-binding a table clears the memo (see :meth:`bind_table`).
        """
        columns = tuple(self._item_column(item) for item in items)
        key = (binding.table, columns)
        plan = self._plan_cache.get(key)
        if plan is None:
            plan = tuple(
                (position, column, category)
                for position, column in enumerate(columns)
                if column is not None
                and (category := binding.category_of(column)) is not None
            )
            self._plan_cache[key] = plan
        return plan

    def _rewrite(
        self,
        select: ast.Select,
        items: tuple[ast.SelectItem, ...],
        plan: tuple[tuple[int, str, str], ...],
        binding: TableBinding,
        permitted: set[str],
    ) -> ast.Select:
        """Mask policy-denied columns and smuggle the patient id along."""
        category_at = {position: category for position, _, category in plan}
        new_items: list[ast.SelectItem] = []
        for position, item in enumerate(items):
            category = category_at.get(position)
            if category is not None and category not in permitted:
                new_items.append(
                    ast.SelectItem(ast.Literal(None), item.output_name(position))
                )
            else:
                new_items.append(item)
        new_items.append(
            ast.SelectItem(ast.ColumnRef(binding.patient_column), "__patient__")
        )
        return ast.Select(
            items=tuple(new_items),
            table=select.table,
            table_alias=select.table_alias,
            joins=(),
            where=select.where,
            group_by=(),
            having=None,
            order_by=select.order_by,
            limit=select.limit,
            distinct=False,
        )

    def _apply_consent(
        self,
        raw: ResultSet,
        category_positions: list[tuple[int, str]],
        purpose: str,
        bypass: bool,
    ) -> tuple[ResultSet, int, int, dict[str, set[str]]]:
        """Post-filter rows/cells per patient consent; strip the rider.

        Also returns which categories were actually *disclosed* per
        patient (non-NULL cells that survived all masking) for the
        accounting-of-disclosures ledger.
        """
        visible_columns = raw.columns[:-1]
        rows: list[tuple] = []
        cells_masked = 0
        rows_dropped = 0
        disclosed: dict[str, set[str]] = {}
        for row in raw.rows:
            patient = row[-1]
            visible = list(row[:-1])
            patient_key = str(patient) if patient is not None else None
            if bypass or patient is None:
                rows.append(tuple(visible))
                if patient_key is not None:
                    self._note_disclosures(
                        disclosed, patient_key, visible, category_positions
                    )
                continue
            dropped = False
            for position, category in category_positions:
                decision = self.consent.decide(patient_key, category, purpose)
                if decision.allowed:
                    continue
                if decision.row_level:
                    rows_dropped += 1
                    dropped = True
                    break
                if visible[position] is not None:
                    visible[position] = None
                    cells_masked += 1
            if not dropped:
                rows.append(tuple(visible))
                self._note_disclosures(
                    disclosed, patient_key, visible, category_positions
                )
        return (
            ResultSet(columns=visible_columns, rows=tuple(rows)),
            cells_masked,
            rows_dropped,
            disclosed,
        )

    @staticmethod
    def _note_disclosures(
        disclosed: dict[str, set[str]],
        patient: str,
        visible: list,
        category_positions: list[tuple[int, str]],
    ) -> None:
        for position, category in category_positions:
            if visible[position] is not None:
                disclosed.setdefault(patient, set()).add(category)
