"""Patient consent — the Hippocratic Database's opt-in/opt-out model.

HDB Active Enforcement honours per-patient choices: a patient may opt out
of a purpose entirely ("no telemarketing, ever") or of a specific data
category for a purpose ("my psychiatry notes may not be used for
research").  Choices are hierarchy-aware through the vocabulary: opting
out of ``secondary_use`` covers ``research`` and ``telemarketing``.

Resolution picks the **most specific** matching choice (deepest data
value, then deepest purpose); on a tie between allow and deny, deny wins —
the privacy-preserving default.

Concurrency: the directive table is held as an immutable mapping of
patient → tuple-of-choices and every update builds a **new** mapping and
swaps it in with a single reference assignment.  A reader that grabbed the
mapping (or a ``choices_for`` tuple) therefore always sees a consistent
snapshot — never a half-applied update — which is what lets the decision
service interleave admin consent updates with live decision traffic on
one event loop.  :attr:`version` stamps each swap so caches keyed on it
invalidate precisely.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConsentError
from repro.vocab.tree import canonical
from repro.vocab.vocabulary import Vocabulary


@dataclass(frozen=True, slots=True)
class ConsentChoice:
    """One patient directive.

    ``data`` of ``None`` means "all data" — the whole-purpose opt-out.
    """

    purpose: str
    allowed: bool
    data: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "purpose", canonical(self.purpose))
        if self.data is not None:
            object.__setattr__(self, "data", canonical(self.data))


@dataclass(frozen=True, slots=True)
class ConsentDecision:
    """The outcome of a consent lookup, with the deciding choice."""

    allowed: bool
    choice: ConsentChoice | None  # None means the default applied
    row_level: bool  # True when a whole-purpose (data=None) choice decided

    def __bool__(self) -> bool:
        return self.allowed


class ConsentStore:
    """Per-patient consent directives with vocabulary-aware lookup.

    Parameters
    ----------
    vocabulary:
        Used for subsumption when matching choices against requests.
    default_allowed:
        The opt-in default applied when no directive matches.  Healthcare
        treatment contexts typically default to True (implied consent for
        care delivery); set False to model strict opt-in regimes.
    """

    def __init__(self, vocabulary: Vocabulary, default_allowed: bool = True) -> None:
        self.vocabulary = vocabulary
        self.default_allowed = default_allowed
        # patient -> tuple of choices; treated as immutable and replaced
        # wholesale on every update (atomic snapshot swap)
        self._choices: dict[str, tuple[ConsentChoice, ...]] = {}
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic update stamp; bumps on every recorded directive."""
        return self._version

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(
        self,
        patient: str,
        purpose: str,
        allowed: bool,
        data: str | None = None,
    ) -> ConsentChoice:
        """Record one directive for ``patient``; returns the choice.

        The update is applied copy-on-write: a new directive table is
        built and swapped in with one assignment, so concurrent readers
        holding the old table keep a consistent snapshot.
        """
        if not isinstance(patient, str) or not patient.strip():
            raise ConsentError("patient identifiers must be non-empty strings")
        choice = ConsentChoice(purpose=purpose, allowed=allowed, data=data)
        key = canonical(patient)
        choices = dict(self._choices)
        choices[key] = choices.get(key, ()) + (choice,)
        self._choices = choices  # the atomic swap
        self._version += 1
        return choice

    def opt_out(self, patient: str, purpose: str, data: str | None = None) -> ConsentChoice:
        """Convenience: record a deny directive."""
        return self.record(patient, purpose, allowed=False, data=data)

    def opt_in(self, patient: str, purpose: str, data: str | None = None) -> ConsentChoice:
        """Convenience: record an allow directive."""
        return self.record(patient, purpose, allowed=True, data=data)

    def choices_for(self, patient: str) -> tuple[ConsentChoice, ...]:
        """Every directive recorded for ``patient``, oldest first.

        The returned tuple is a stable snapshot: later updates build new
        tuples rather than mutating this one.
        """
        return self._choices.get(canonical(patient), ())

    def clone(self) -> "ConsentStore":
        """An independent copy at the same version.

        Directive tuples are immutable, so the copy is shallow; the
        decision service clones the store for copy-on-write snapshot
        swaps exactly as it does the policy store.
        """
        twin = ConsentStore(self.vocabulary, default_allowed=self.default_allowed)
        twin._choices = dict(self._choices)
        twin._version = self._version
        return twin

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def decide(self, patient: str, data: str, purpose: str) -> ConsentDecision:
        """Resolve the patient's consent for using ``data`` for ``purpose``."""
        data = canonical(data)
        purpose = canonical(purpose)
        matches: list[tuple[int, int, ConsentChoice]] = []
        # one read of the directive table: the whole resolution runs
        # against this snapshot even if an update swaps the table mid-way
        table = self._choices
        for choice in table.get(canonical(patient), ()):
            if not self.vocabulary.subsumes("purpose", choice.purpose, purpose):
                continue
            if choice.data is not None and not self.vocabulary.subsumes(
                "data", choice.data, data
            ):
                continue
            data_depth = self._depth("data", choice.data)
            purpose_depth = self._depth("purpose", choice.purpose)
            matches.append((data_depth, purpose_depth, choice))
        if not matches:
            return ConsentDecision(self.default_allowed, None, row_level=False)
        best_key = max((d, p) for d, p, _ in matches)
        finalists = [c for d, p, c in matches if (d, p) == best_key]
        allowed = all(choice.allowed for choice in finalists)  # deny wins ties
        deciding = next(
            (c for c in finalists if c.allowed == allowed), finalists[0]
        )
        return ConsentDecision(allowed, deciding, row_level=deciding.data is None)

    def _depth(self, attribute: str, value: str | None) -> int:
        """Specificity of a choice value: -1 for "all", depth otherwise."""
        if value is None:
            return -1
        tree = self.vocabulary.tree_for(attribute)
        if tree is None or value not in tree:
            return 0
        return tree.depth(value)

    def permits(self, patient: str, data: str, purpose: str) -> bool:
        """Boolean shorthand for :meth:`decide`."""
        return self.decide(patient, data, purpose).allowed
