"""The HDB Control Center — the stakeholder-facing facade.

The paper's workflow has a representative of the stakeholders "use the HDB
Control Center to enter fine-grained rules, patient consent information and
specify what needs to be auditable".  :class:`HdbControlCenter` bundles the
clinical database, policy store, consent store, auditor and enforcer into
one object with exactly those verbs, so application code (and the
examples) reads like the paper.
"""

from __future__ import annotations

from repro.audit.log import AuditLog
from repro.hdb.accounting import DisclosureLedger
from repro.hdb.auditing import ComplianceAuditor, LogicalClock
from repro.hdb.consent import ConsentStore
from repro.hdb.enforcement import (
    AccessRequest,
    ActiveEnforcer,
    EnforcementResult,
    TableBinding,
)
from repro.policy.parser import parse_rule
from repro.policy.policy import Policy
from repro.policy.rule import Rule
from repro.policy.store import PolicyStore
from repro.sqlmini.database import Database
from repro.vocab.vocabulary import Vocabulary


class HdbControlCenter:
    """One-stop configuration and query surface for a PRIMA deployment."""

    def __init__(
        self,
        vocabulary: Vocabulary,
        database: Database | None = None,
        clock: LogicalClock | None = None,
        default_consent: bool = True,
        audit_log=None,
    ) -> None:
        self.vocabulary = vocabulary
        self.database = database if database is not None else Database("clinical")
        self.policy_store = PolicyStore()
        self.consent = ConsentStore(vocabulary, default_allowed=default_consent)
        # audit_log may be any AuditLog-protocol sink — pass a
        # DurableAuditLog to write the trail through to disk (the
        # decision service does exactly that)
        self.auditor = ComplianceAuditor(
            audit_log if audit_log is not None else AuditLog(),
            clock or LogicalClock(),
        )
        self.ledger = DisclosureLedger()
        self.enforcer = ActiveEnforcer(
            database=self.database,
            policy_store=self.policy_store,
            consent=self.consent,
            auditor=self.auditor,
            vocabulary=vocabulary,
            ledger=self.ledger,
        )

    # ------------------------------------------------------------------
    # policy entry
    # ------------------------------------------------------------------
    def define_rule(self, rule: Rule | str, added_by: str = "privacy-officer") -> bool:
        """Add a rule (a :class:`Rule` or one line of the policy DSL)."""
        if isinstance(rule, str):
            rule = parse_rule(rule)
        return self.policy_store.add(rule, added_by=added_by)

    def define_rules(self, rules: list[Rule | str], added_by: str = "privacy-officer") -> int:
        """Add many rules; returns how many changed the store."""
        return sum(self.define_rule(rule, added_by=added_by) for rule in rules)

    def current_policy(self) -> Policy:
        """Snapshot of the active ``P_PS``."""
        return self.policy_store.policy()

    # ------------------------------------------------------------------
    # consent entry
    # ------------------------------------------------------------------
    def record_consent(
        self, patient: str, purpose: str, allowed: bool, data: str | None = None
    ) -> None:
        """Record one patient consent directive."""
        self.consent.record(patient, purpose, allowed, data=data)

    # ------------------------------------------------------------------
    # clinical schema
    # ------------------------------------------------------------------
    def bind_table(self, binding: TableBinding) -> None:
        """Declare a clinical table auditable and enforceable."""
        self.enforcer.bind_table(binding)

    # ------------------------------------------------------------------
    # the query path
    # ------------------------------------------------------------------
    def run(
        self,
        user: str,
        role: str,
        purpose: str,
        sql: str,
        exception: bool = False,
        truth: str = "",
    ) -> EnforcementResult:
        """Execute one enforced, audited query."""
        request = AccessRequest(
            user=user,
            role=role,
            purpose=purpose,
            sql=sql,
            exception=exception,
            truth=truth,
        )
        return self.enforcer.execute(request)

    @property
    def audit_log(self) -> AuditLog:
        return self.auditor.log

    def accounting_for(self, patient: str) -> str:
        """Render the patient's accounting-of-disclosures statement."""
        return self.ledger.render_accounting(patient)
