"""Hippocratic-Database-style middleware (Figures 4 and 5 of the paper).

Public surface:

- :class:`~repro.hdb.control_center.HdbControlCenter` — the facade most
  applications use.
- :class:`~repro.hdb.enforcement.ActiveEnforcer` /
  :class:`TableBinding` / :class:`AccessRequest` — Active Enforcement.
- :class:`~repro.hdb.auditing.ComplianceAuditor` /
  :class:`LogicalClock` — Compliance Auditing.
- :class:`~repro.hdb.consent.ConsentStore` — patient opt-in/opt-out.
- :class:`~repro.hdb.federation.AuditFederation` — Audit Management.
"""

from repro.hdb.accounting import Disclosure, DisclosureLedger
from repro.hdb.auditing import ComplianceAuditor, LogicalClock
from repro.hdb.consent import ConsentChoice, ConsentDecision, ConsentStore
from repro.hdb.control_center import HdbControlCenter
from repro.hdb.enforcement import (
    AccessRequest,
    ActiveEnforcer,
    EnforcementResult,
    TableBinding,
)
from repro.hdb.federation import AuditFederation

__all__ = [
    "AccessRequest",
    "Disclosure",
    "DisclosureLedger",
    "ActiveEnforcer",
    "AuditFederation",
    "ComplianceAuditor",
    "ConsentChoice",
    "ConsentDecision",
    "ConsentStore",
    "EnforcementResult",
    "HdbControlCenter",
    "LogicalClock",
    "TableBinding",
]
