"""The online policy decision service (PR 5).

Active Enforcement as a long-running server: NDJSON frames over TCP, an
HTTP/1.1 shim for probes and scrapers, copy-on-write hot reload of
policies and consent, an interned decision cache, bounded admission with
explicit overload shedding, and drain-then-stop shutdown with a flushed
audit trail.  See DESIGN.md §11.
"""

from repro.serve.cache import DecisionCache
from repro.serve.client import AsyncPdpClient, PdpClient, RetryPolicy
from repro.serve.engine import (
    EngineSnapshot,
    PdpEngine,
    SnapshotManager,
    build_demo_engine,
)
from repro.serve.loadgen import (
    LatencyHistogram,
    LoadReport,
    OpenLoadReport,
    percentile,
    run_load,
    run_load_open,
    saturation_sweep,
)
from repro.serve.server import PdpServer, ServerConfig, ServerThread

__all__ = [
    "AsyncPdpClient",
    "DecisionCache",
    "EngineSnapshot",
    "LatencyHistogram",
    "LoadReport",
    "OpenLoadReport",
    "PdpClient",
    "PdpEngine",
    "PdpServer",
    "RetryPolicy",
    "ServerConfig",
    "ServerThread",
    "SnapshotManager",
    "build_demo_engine",
    "percentile",
    "run_load",
    "run_load_open",
    "saturation_sweep",
]
