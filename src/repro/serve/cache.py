"""The interned decision cache behind the PDP's ``decide`` hot path.

One entry caches the *policy verdict* — the frozenset of permitted
categories — for one ``(policy-version, consent-version, role, purpose,
data-categories)`` key.  Compliance auditing is **not** cached: every
served decision writes its audit entries whether the verdict came from
the cache or not, so the trail the refinement loop mines is identical
with the cache on or off.

Keys are interned: each distinct role/purpose/category string is mapped
to a small integer once, so a steady-state key is a tuple of ints —
cheap to hash and free of repeated string hashing.  The version pair in
the key makes staleness structurally impossible (a reload changes the
key, not the entry), and :meth:`invalidate` additionally drops the old
generation's entries so memory stays bounded by live keys; capacity is
bounded by LRU eviction on top.

Telemetry: ``repro_serve_decision_cache_{hits,misses,evictions,
invalidations}_total`` counters and a ``repro_serve_decision_cache_size``
gauge, flushed by a weakly-held collector (the PR 2 hot-path pattern —
the per-request cost is a plain int increment).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.obs.runtime import get_registry


class DecisionCache:
    """A bounded, interned, version-keyed memo of policy verdicts."""

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple, frozenset[str]] = OrderedDict()
        self._atoms: dict[str, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self._reported = (0, 0, 0, 0)
        self._obs = get_registry()
        if self._obs.enabled:
            self._obs.register_collector(self._flush_metrics)

    # ------------------------------------------------------------------
    # keying
    # ------------------------------------------------------------------
    def _atom(self, value: str) -> int:
        """The interned id of one string atom (assigned on first sight)."""
        atom = self._atoms.get(value)
        if atom is None:
            atom = self._atoms[value] = len(self._atoms)
        return atom

    def key(
        self,
        policy_version: int,
        consent_version: int,
        role: str,
        purpose: str,
        categories: tuple[str, ...],
        exception: bool = False,
    ) -> tuple:
        """Build the interned cache key for one decision."""
        atom = self._atom
        return (
            policy_version,
            consent_version,
            atom(role),
            atom(purpose),
            tuple(atom(category) for category in categories),
            exception,
        )

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def get(self, key: tuple) -> frozenset[str] | None:
        """The cached permitted-set for ``key``, or None on a miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: tuple, permitted: frozenset[str]) -> None:
        """Store one verdict, evicting the least-recently-used on overflow."""
        entries = self._entries
        entries[key] = permitted
        entries.move_to_end(key)
        while len(entries) > self.max_entries:
            entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self) -> None:
        """Drop every entry (a snapshot swap retired their generation)."""
        if self._entries:
            self._entries.clear()
        self.invalidations += 1

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def _flush_metrics(self) -> None:
        reg = self._obs
        current = (self.hits, self.misses, self.evictions, self.invalidations)
        seen = self._reported
        names = (
            "repro_serve_decision_cache_hits_total",
            "repro_serve_decision_cache_misses_total",
            "repro_serve_decision_cache_evictions_total",
            "repro_serve_decision_cache_invalidations_total",
        )
        for name, now, before in zip(names, current, seen):
            reg.counter(name).inc(now - before)
        self._reported = current
        reg.gauge("repro_serve_decision_cache_size").set(len(self._entries))

    def stats(self) -> dict:
        """JSON-ready counters (the ``stats`` op and health surface)."""
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }
