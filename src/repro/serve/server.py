"""The PDP server: asyncio, NDJSON frames, and an HTTP/1.1 shim.

One :class:`PdpServer` serves one :class:`~repro.serve.engine.PdpEngine`
on a single event loop.  Connections speak the newline-delimited JSON
frame protocol of :mod:`repro.serve.protocol`; a connection whose first
line looks like an HTTP request line is handed to a minimal HTTP/1.1
shim exposing ``GET /healthz``, ``GET /metrics`` (Prometheus text via
the PR 2 registry) and ``POST /decide`` — enough for probes, scrapers
and curl without pulling in a web framework.

Admission control: decision ops (``decide``/``query``) pass through a
bounded in-flight semaphore with a bounded wait queue.  When the server
is saturated *and* the queue is full, the request is shed immediately
with ``OVERLOADED`` (plus ``retry_after_ms``) rather than queued without
bound; a request whose per-request deadline expires while queued gets
``TIMEOUT``.  Shed and timed-out requests never touch the engine, so
they are never audited.  Gauges track in-flight and queue depth;
``repro_serve_shed_total`` counts the load shed.

Shutdown is drain-then-stop: the listener closes, queued-and-admitted
work finishes, new decision frames answer ``SHUTTING_DOWN``, and the
audit log is flushed (``sync``) before the server reports closed — an
accepted decision is never lost from the trail.

:class:`ServerThread` runs the whole thing on a private loop in a daemon
thread so synchronous callers (tests, benchmarks, the CLI's client
commands) can drive a live server in-process.
"""

from __future__ import annotations

import asyncio
import gc
import json
import logging
import os
import threading
import time
from dataclasses import dataclass
from urllib.parse import parse_qs, urlsplit

from repro.errors import PrimaError, ServeError
from repro.obs import trace as obstrace
from repro.obs.exposition import render_registry
from repro.obs.provenance import DecisionProvenance
from repro.obs.runtime import get_registry
from repro.serve import protocol
from repro.serve.engine import PdpEngine

_LOGGER = logging.getLogger("repro.serve.server")

#: HTTP methods the shim recognises on a sniffed first line.
_HTTP_METHODS = (b"GET ", b"POST ", b"HEAD ", b"PUT ", b"DELETE ")

#: span names for the decision ops, precomputed so the hot path does not
#: build a fresh string per request
_OP_SPANS = {"decide": "repro_serve_decide", "query": "repro_serve_query"}

# ----------------------------------------------------------------------
# GC serving mode
#
# A serving process allocates short-lived, acyclic garbage per request
# (frames, dicts, trace skeletons) on top of a large long-lived heap
# (policy trees, audit segments, the engine snapshot).  With CPython's
# default gen0 threshold every ~700 allocations trigger a young
# collection that rescans survivors — at thousands of requests per
# second that is hundreds of collections a second whose cost scales with
# whatever the warm heap keeps pinning into gen0.  While a server is
# up we freeze the warm heap into the permanent generation (it is built
# once and never collected) and widen gen0 so per-request garbage is
# reclaimed by refcounting alone between rare sweeps.  The mode is
# refcounted so overlapping in-process servers (tests, benchmarks)
# compose, and fully restored when the last server shuts down.
# ----------------------------------------------------------------------

_GC_LOCK = threading.Lock()
_GC_SERVING = 0
_GC_SAVED_THRESHOLD: tuple[int, ...] | None = None
_GC_GEN0_SERVING = 20_000


def _enter_gc_serving_mode() -> None:
    global _GC_SERVING, _GC_SAVED_THRESHOLD
    with _GC_LOCK:
        _GC_SERVING += 1
        if _GC_SERVING == 1:
            _GC_SAVED_THRESHOLD = gc.get_threshold()
            gc.collect()
            gc.freeze()
            gc.set_threshold(_GC_GEN0_SERVING, *_GC_SAVED_THRESHOLD[1:])


def _exit_gc_serving_mode() -> None:
    global _GC_SERVING, _GC_SAVED_THRESHOLD
    with _GC_LOCK:
        if _GC_SERVING == 0:
            return
        _GC_SERVING -= 1
        if _GC_SERVING == 0 and _GC_SAVED_THRESHOLD is not None:
            gc.set_threshold(*_GC_SAVED_THRESHOLD)
            gc.unfreeze()
            _GC_SAVED_THRESHOLD = None


@dataclass(frozen=True)
class ServerConfig:
    """Tunables for one :class:`PdpServer`."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick an ephemeral port
    #: decision ops executing at once (the admission semaphore's size)
    max_inflight: int = 64
    #: decision ops allowed to wait for admission before shedding
    max_queue: int = 256
    max_frame_bytes: int = protocol.MAX_FRAME_BYTES
    #: seconds a connection may sit idle mid-frame before being dropped
    #: (the slow-loris bound)
    idle_timeout: float = 30.0
    #: deadline applied when a request does not carry ``deadline_ms``
    default_deadline: float = 10.0
    #: seconds shutdown waits for queued-and-admitted work to finish
    drain_timeout: float = 10.0
    #: hint returned with OVERLOADED responses
    retry_after_ms: int = 50
    #: artificial seconds each admitted decision holds its slot; lets
    #: tests and the E18 driver make saturation deterministic (engine
    #: calls are otherwise too fast to observe admission behaviour)
    handling_delay: float = 0.0
    #: freeze the warm heap and widen gen0 while serving (see the GC
    #: serving mode notes above); turn off when embedding the server in
    #: a process that manages its own collector
    tune_gc: bool = True
    #: bind the listener with SO_REUSEPORT so several worker processes
    #: can share one port (the fleet's kernel-balanced listener mode);
    #: raises on platforms without SO_REUSEPORT
    reuse_port: bool = False
    #: the fleet worker identity stamped into ``stats`` and metrics —
    #: None outside a fleet
    worker_id: str | None = None


class _FrameTooLarge(Exception):
    """Internal signal: the peer sent a line beyond max_frame_bytes."""


def _admin_payload(request: "protocol.ServeRequest") -> dict:
    """Re-serialise a validated admin request for the control channel."""
    if request.op in ("admin.add_rule", "admin.retire_rule"):
        return {"op": request.op, "rule": request.rule, "note": request.note}
    return {
        "op": request.op,
        "patient": request.patient,
        "purpose": request.purpose,
        "allowed": request.allowed,
        "data": request.data,
    }


class PdpServer:
    """One engine served over NDJSON frames plus the HTTP shim."""

    def __init__(
        self,
        engine: PdpEngine,
        config: ServerConfig | None = None,
        daemon=None,
        fleet=None,
        listener=None,
        ready: bool = True,
    ) -> None:
        self.engine = engine
        self.config = config or ServerConfig()
        #: an embedded RefineDaemon (or anything with ``status()``);
        #: surfaced in the ``stats`` op and ``GET /healthz``
        self.daemon = daemon
        #: the worker-side fleet hook (``repro.fleet.worker``): proxies
        #: ``admin.*``/``fleet.*`` frames to the supervisor so admin
        #: mutations broadcast instead of mutating one worker; None
        #: outside a fleet
        self._fleet = fleet
        #: a pre-bound, already-listening socket to serve on instead of
        #: binding ourselves — the fleet's fd-passing listener mode
        self._listener = listener
        #: readiness (distinct from liveness): a worker comes up
        #: not-ready and is flipped by the fleet handshake once its
        #: snapshot replay is done; not-ready decision ops are shed
        self._ready = ready
        self._obs = get_registry()
        #: captured at construction, like the registry — swap the active
        #: tracer (``obs.use_tracer``) *before* building the server
        self._tracer = obstrace.get_tracer()
        self._server: asyncio.AbstractServer | None = None
        self._sem: asyncio.Semaphore | None = None
        self._closed: asyncio.Event | None = None
        self._draining = False
        self._shutdown_started = False
        self._queued = 0
        self._inflight = 0
        self._connections = 0
        self._gc_tuned = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "PdpServer":
        """Bind the listener; returns once the port is open."""
        if self._server is not None:
            raise ServeError("server is already started")
        self._sem = asyncio.Semaphore(self.config.max_inflight)
        self._closed = asyncio.Event()
        if self._listener is not None:
            self._server = await asyncio.start_server(
                self._on_connection,
                sock=self._listener,
                limit=self.config.max_frame_bytes,
            )
        elif self.config.reuse_port:
            self._server = await asyncio.start_server(
                self._on_connection,
                self.config.host,
                self.config.port,
                limit=self.config.max_frame_bytes,
                reuse_port=True,
            )
        else:
            self._server = await asyncio.start_server(
                self._on_connection,
                self.config.host,
                self.config.port,
                limit=self.config.max_frame_bytes,
            )
        if self.config.tune_gc:
            _enter_gc_serving_mode()
            self._gc_tuned = True
        if self._obs.enabled:
            self._obs.gauge("repro_serve_up").set(1)
        _LOGGER.info("pdp server listening on %s:%d", self.host, self.port)
        return self

    @property
    def host(self) -> str:
        """The bound host (valid after :meth:`start`)."""
        return self.config.host

    @property
    def port(self) -> int:
        """The bound port — the ephemeral one when configured as 0."""
        if self._server is None or not self._server.sockets:
            raise ServeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    def mark_ready(self) -> None:
        """Flip to ready: decision ops are admitted (thread-safe)."""
        self._ready = True

    def mark_not_ready(self) -> None:
        """Flip to not-ready: decision ops shed OVERLOADED (thread-safe)."""
        self._ready = False

    @property
    def ready(self) -> bool:
        """True when decision ops are being admitted (and not draining)."""
        return self._ready and not self._draining

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting, drain in-flight work, flush the audit trail."""
        if self._shutdown_started:
            await self._closed.wait()
            return
        self._shutdown_started = True
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain:
            loop = asyncio.get_running_loop()
            deadline = loop.time() + self.config.drain_timeout
            while (self._inflight or self._queued) and loop.time() < deadline:
                await asyncio.sleep(0.005)
        sync = getattr(self.engine.audit_log, "sync", None)
        if callable(sync):
            sync()
        if self._gc_tuned:
            _exit_gc_serving_mode()
            self._gc_tuned = False
        if self._obs.enabled:
            self._obs.gauge("repro_serve_up").set(0)
        _LOGGER.info("pdp server drained and stopped")
        self._closed.set()

    async def wait_closed(self) -> None:
        """Block until :meth:`shutdown` has completed."""
        if self._closed is None:
            raise ServeError("server is not started")
        await self._closed.wait()

    async def serve_forever(self) -> None:
        """Start if needed, then run until shut down."""
        if self._server is None:
            await self.start()
        await self.wait_closed()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections += 1
        if self._obs.enabled:
            self._obs.counter("repro_serve_connections_total").inc()
            self._obs.gauge("repro_serve_open_connections").set(self._connections)
        try:
            line = await self._read_line(reader)
            if line is not None and line.startswith(_HTTP_METHODS):
                await self._handle_http(line, reader, writer)
            else:
                await self._frame_loop(line, reader, writer)
        except _FrameTooLarge:
            await self._best_effort_write(
                writer,
                protocol.encode_frame(
                    protocol.error_response(
                        code=protocol.BAD_REQUEST,
                        error=f"frame exceeds {self.config.max_frame_bytes} bytes",
                    )
                ),
            )
            self._count_rejected("oversized")
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            # the client vanished mid-conversation; nothing left to say
            self._count_rejected("disconnect")
        finally:
            self._connections -= 1
            if self._obs.enabled:
                self._obs.gauge("repro_serve_open_connections").set(self._connections)
            # close without awaiting wait_closed(): the handler task may
            # be cancelled during loop teardown, and awaiting here turns
            # that into "Exception in callback" noise from streams
            writer.close()

    async def _frame_loop(
        self,
        first: bytes | None,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Serve NDJSON frames until EOF, idle timeout, or shutdown op."""
        line = first
        while line is not None:
            response, op = await self._handle_frame(line)
            writer.write(protocol.encode_frame(response))
            await writer.drain()
            if op == "admin.shutdown":
                return  # the reply is out; shutdown is underway
            line = await self._read_line(reader)

    async def _read_line(self, reader: asyncio.StreamReader) -> bytes | None:
        """One frame line, or None on EOF / idle timeout / torn frame."""
        try:
            line = await asyncio.wait_for(
                reader.readline(), timeout=self.config.idle_timeout
            )
        except asyncio.TimeoutError:
            # slow-loris: the peer held the connection without completing
            # a frame inside the idle window
            self._count_rejected("idle_timeout")
            return None
        except ValueError:
            # StreamReader's limit tripped: a line longer than one frame
            raise _FrameTooLarge() from None
        if not line:
            return None  # clean EOF
        if not line.endswith(b"\n"):
            # torn frame: the connection died mid-line; serve nothing
            self._count_rejected("torn")
            return None
        return line

    def _count_rejected(self, reason: str) -> None:
        if self._obs.enabled:
            self._obs.counter(
                "repro_serve_frames_rejected_total", reason=reason
            ).inc()

    async def _best_effort_write(
        self, writer: asyncio.StreamWriter, data: bytes
    ) -> None:
        try:
            writer.write(data)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    # ------------------------------------------------------------------
    # frame dispatch
    # ------------------------------------------------------------------
    #: response codes that force-retain the request's trace (and why)
    _KEEP_CODES = {
        protocol.OVERLOADED: "shed",
        protocol.TIMEOUT: "deadline",
        protocol.INTERNAL: "error",
    }

    async def _handle_frame(self, line: bytes) -> tuple[dict, str | None]:
        """Serve one frame; returns ``(response, op)`` (op None if bad)."""
        started = time.perf_counter()
        try:
            request = protocol.parse_request(protocol.decode_frame(line))
        except protocol.ProtocolError as exc:
            self._count_rejected("malformed")
            response = protocol.error_response(code=exc.code, error=str(exc))
            self._count_request("invalid", exc.code)
            return response, None
        trace_id: str | None = None
        if request.op in protocol.DECISION_OPS:
            response, trace_id = await self._traced_decision(
                request, request.trace or None
            )
            if request.trace:
                # deterministic echo: the id comes from the *request's*
                # traceparent, never the tracer, so the response is
                # byte-identical with tracing on or off (E20)
                response["trace"] = request.trace.split("-", 2)[1]
        else:
            response = await self._dispatch(request)
        if request.id is not None and "id" not in response:
            response["id"] = request.id
        if self._obs.enabled:
            self._count_request(request.op, response.get("code", protocol.INTERNAL))
            self._obs.histogram(
                "repro_serve_request_seconds", op=request.op
            ).observe(time.perf_counter() - started, exemplar=trace_id)
        return response, request.op

    async def _traced_decision(
        self, request: protocol.ServeRequest, traceparent: str | None
    ) -> tuple[dict, str | None]:
        """One decide/query under a root span; ``(response, trace id)``.

        With the NULL tracer this is a plain dispatch — no context
        variable is ever set, so the engine skips provenance too.
        """
        if not self._tracer.enabled:
            return await self._serve_decision(request), None
        name = _OP_SPANS.get(request.op) or f"repro_serve_{request.op}"
        with self._tracer.trace(name, traceparent=traceparent) as root:
            response = await self._serve_decision(request)
            reason = self._KEEP_CODES.get(response.get("code"))
            if reason is not None:
                obstrace.mark_keep(reason)
        # exemplars only for recorded roots — a dropped skeleton's id
        # would be a dead link in /metrics
        return response, root.trace_id if root.recording else None

    def _count_request(self, op: str, code: str) -> None:
        if self._obs.enabled:
            self._obs.counter(
                "repro_serve_requests_total", op=op, code=code
            ).inc()

    async def _dispatch(self, request: protocol.ServeRequest) -> dict:
        op = request.op
        if op == "ping":
            return protocol.ok_response(op="pong", versions=self.engine.versions())
        if op == "stats":
            stats = self.engine.stats()
            stats["server"] = {
                "inflight": self._inflight,
                "queued": self._queued,
                "connections": self._connections,
                "draining": self._draining,
                "ready": self.ready,
            }
            if self.config.worker_id is not None:
                stats["worker"] = {
                    "id": self.config.worker_id,
                    "pid": os.getpid(),
                }
            stats["admission"] = self._admission_info()
            stats["trace"] = {
                **self._tracer.stats(),
                "recent": [
                    t["trace_id"] for t in self._tracer.store.list(10)
                ],
            }
            if self.daemon is not None:
                stats["refine_daemon"] = self.daemon.status()
            return protocol.ok_response(**stats)
        if op == "admin.shutdown":
            if self._fleet is not None:
                # fleet-wide drain-then-stop: the supervisor broadcasts
                # "stop" to every worker, including this one
                self._fleet.request_shutdown()
            else:
                asyncio.get_running_loop().create_task(self.shutdown())
            return protocol.ok_response(draining=True)
        if op.startswith("fleet."):
            if self._fleet is None:
                return protocol.error_response(
                    code=protocol.BAD_REQUEST,
                    error="this server is not part of a fleet",
                )
            return await asyncio.get_running_loop().run_in_executor(
                None, self._fleet.fleet_request, op
            )
        if op.startswith("admin."):
            if self._draining:
                return protocol.error_response(
                    code=protocol.SHUTTING_DOWN, error="server is draining"
                )
            if self._fleet is not None:
                # a fleet worker never mutates alone: the op rides the
                # control channel to the supervisor, which broadcasts it
                # to every worker and replies once all have converged
                return await asyncio.get_running_loop().run_in_executor(
                    None, self._fleet.admin_request, _admin_payload(request)
                )
            return self.engine.admin(request)
        return await self._serve_decision(request)

    async def _serve_decision(self, request: protocol.ServeRequest) -> dict:
        """Admission control + deadline around one decide/query op."""
        cfg = self.config
        if self._draining:
            return protocol.error_response(
                code=protocol.SHUTTING_DOWN, error="server is draining"
            )
        if not self._ready:
            # up but not ready (snapshot replay still running): shed with
            # the same OVERLOADED + retry_after_ms contract as saturation
            # so existing client backoff handles the warm-up window
            if self._obs.enabled:
                self._obs.counter("repro_serve_shed_total").inc()
            return protocol.error_response(
                code=protocol.OVERLOADED,
                error="server is not ready; retry later",
                retry_after_ms=cfg.retry_after_ms,
            )
        loop = asyncio.get_running_loop()
        deadline_s = (
            request.deadline_ms / 1000.0
            if request.deadline_ms is not None
            else cfg.default_deadline
        )
        deadline_at = loop.time() + deadline_s
        sem = self._sem
        assert sem is not None
        if sem.locked() and self._queued >= cfg.max_queue:
            # saturated and the wait queue is full: shed, don't buffer
            remaining_ms = round(max(0.0, deadline_at - loop.time()) * 1000.0, 3)
            if self._obs.enabled:
                self._obs.counter("repro_serve_shed_total").inc()
            self._record_admission_provenance(
                request, protocol.OVERLOADED, remaining_ms
            )
            return protocol.error_response(
                code=protocol.OVERLOADED,
                error="server is at capacity; retry later",
                retry_after_ms=cfg.retry_after_ms,
                deadline_remaining_ms=remaining_ms,
            )
        self._queued += 1
        if self._obs.enabled:
            self._obs.gauge("repro_serve_queue_depth").set(self._queued)
        queue_started = time.perf_counter()
        try:
            try:
                await asyncio.wait_for(
                    sem.acquire(), timeout=max(0.0, deadline_at - loop.time())
                )
            except asyncio.TimeoutError:
                if self._obs.enabled:
                    self._obs.counter("repro_serve_timeouts_total").inc()
                waited = time.perf_counter() - queue_started
                obstrace.record_span(
                    "repro_serve_queue", queue_started, waited,
                    error="deadline",
                )
                self._record_admission_provenance(
                    request, protocol.TIMEOUT, 0.0,
                    queue_ms=round(waited * 1000.0, 4),
                )
                return protocol.error_response(
                    code=protocol.TIMEOUT,
                    error=f"deadline of {deadline_s:.3f}s expired while queued",
                )
        finally:
            self._queued -= 1
            if self._obs.enabled:
                self._obs.gauge("repro_serve_queue_depth").set(self._queued)
        if obstrace.recording_trace_id() is not None:
            waited = time.perf_counter() - queue_started
            obstrace.record_span("repro_serve_queue", queue_started, waited)
            obstrace.annotate(queue_ms=round(waited * 1000.0, 4))
        self._inflight += 1
        if self._obs.enabled:
            self._obs.gauge("repro_serve_inflight").set(self._inflight)
        try:
            # yield once while holding the slot: engine calls are
            # synchronous, so without this no other connection could ever
            # observe the server occupied (and cfg.handling_delay lets
            # tests hold the slot long enough to fill the queue)
            if cfg.handling_delay > 0:
                await asyncio.sleep(cfg.handling_delay)
            else:
                await asyncio.sleep(0)
            if loop.time() > deadline_at:
                if self._obs.enabled:
                    self._obs.counter("repro_serve_timeouts_total").inc()
                self._record_admission_provenance(request, protocol.TIMEOUT, 0.0)
                return protocol.error_response(
                    code=protocol.TIMEOUT,
                    error=f"deadline of {deadline_s:.3f}s expired before execution",
                )
            if obstrace.recording_trace_id() is not None:
                obstrace.annotate(
                    deadline_remaining_ms=round(
                        max(0.0, deadline_at - loop.time()) * 1000.0, 3
                    )
                )
            if request.op == "decide":
                return self.engine.decide(request)
            return self.engine.query(request)
        except PrimaError as exc:
            _LOGGER.exception("decision failed: %s", exc)
            return protocol.error_response(code=protocol.INTERNAL, error=str(exc))
        finally:
            self._inflight -= 1
            if self._obs.enabled:
                self._obs.gauge("repro_serve_inflight").set(self._inflight)
            sem.release()

    def _admission_info(self) -> dict:
        """The admission-control configuration (stats / healthz)."""
        cfg = self.config
        return {
            "max_inflight": cfg.max_inflight,
            "max_queue": cfg.max_queue,
            "default_deadline_ms": round(cfg.default_deadline * 1000.0, 3),
            "retry_after_ms": cfg.retry_after_ms,
        }

    def _record_admission_provenance(
        self,
        request: protocol.ServeRequest,
        code: str,
        remaining_ms: float,
        queue_ms: float | None = None,
    ) -> None:
        """Provenance for a request the engine never saw (shed/timeout).

        These decisions write no audit entries — the side-record is the
        *only* explanation of why a caller got OVERLOADED or TIMEOUT, so
        it carries the deadline budget left at the moment of the verdict.
        No-op when untraced.
        """
        trace_id = obstrace.current_trace_id()
        if trace_id is None:
            return
        obstrace.annotate(deadline_remaining_ms=remaining_ms)
        self.engine.provenance.record(
            DecisionProvenance(
                trace_id=trace_id,
                op=request.op,
                user=request.user,
                role=request.role,
                purpose=request.purpose,
                decision=code,
                categories=tuple(request.categories),
                versions=self.engine.versions(),
                queue_ms=queue_ms,
                deadline_remaining_ms=remaining_ms,
            )
        )

    # ------------------------------------------------------------------
    # the HTTP/1.1 shim
    # ------------------------------------------------------------------
    async def _handle_http(
        self,
        request_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            parts = request_line.decode("latin-1").strip().split()
            if len(parts) != 3:
                raise ValueError(request_line)
            method, target, _version = parts
            headers: dict[str, str] = {}
            while True:
                line = await asyncio.wait_for(
                    reader.readline(), timeout=self.config.idle_timeout
                )
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or "0")
            if length > self.config.max_frame_bytes:
                await self._http_respond(
                    writer, 400, {"error": "request body too large"}
                )
                return
            body = await reader.readexactly(length) if length else b""
        except (asyncio.TimeoutError, asyncio.IncompleteReadError, ValueError):
            self._count_rejected("http_malformed")
            return

        if method == "GET" and target == "/healthz":
            status = 503 if self._draining else 200
            health = {
                "status": "draining" if self._draining else "ok",
                "ready": self.ready,
                "versions": self.engine.versions(),
                "inflight": self._inflight,
                "queued": self._queued,
                "audit_entries": len(self.engine.audit_log),
                "admission": self._admission_info(),
            }
            if self.daemon is not None:
                health["refine_daemon"] = self.daemon.status()
            await self._http_respond(writer, status, health)
        elif method == "GET" and target == "/livez":
            # liveness: the process is up and the listener answers; never
            # 503s while the loop runs, even during warm-up or drain
            await self._http_respond(writer, 200, {"status": "live"})
        elif method == "GET" and target == "/readyz":
            # readiness: admit traffic only once the snapshot is loaded
            # and we are not draining — the gate supervisors and load
            # drivers wait on
            ready = self.ready
            await self._http_respond(
                writer,
                200 if ready else 503,
                {
                    "status": "ready" if ready else "not-ready",
                    "ready": ready,
                    "draining": self._draining,
                },
            )
        elif method == "GET" and target in ("/fleet/status", "/fleet/metrics"):
            if self._fleet is None:
                await self._http_respond(
                    writer, 404, {"error": "this server is not part of a fleet"}
                )
                return
            op = "fleet.status" if target.endswith("status") else "fleet.metrics"
            response = await asyncio.get_running_loop().run_in_executor(
                None, self._fleet.fleet_request, op
            )
            if op == "fleet.metrics" and response.get("ok"):
                # merged Prometheus text can exceed the 64 KiB frame cap;
                # HTTP has no such limit, so this is the primary exposure
                await self._http_respond(
                    writer,
                    200,
                    response.get("metrics", ""),
                    content_type="text/plain; version=0.0.4; charset=utf-8",
                )
            else:
                await self._http_respond(
                    writer,
                    protocol.HTTP_STATUS.get(
                        response.get("code", protocol.INTERNAL), 500
                    ),
                    response,
                )
        elif method == "GET" and target == "/metrics":
            await self._http_respond(
                writer,
                200,
                render_registry(self._obs),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
        elif method == "GET" and (
            target == "/traces"
            or target.startswith("/traces?")
            or target.startswith("/traces/")
        ):
            await self._http_traces(writer, target)
        elif method == "POST" and target == "/decide":
            payload_response, trace_id = await self._http_decide(
                body, headers.get("traceparent")
            )
            code = payload_response.get("code", protocol.INTERNAL)
            extra = {}
            if code == protocol.OVERLOADED:
                extra["Retry-After"] = str(
                    max(1, self.config.retry_after_ms // 1000 or 1)
                )
            if trace_id:
                # headers are outside the byte-identity contract, so the
                # server-side id is safe to surface here (curl → /traces)
                extra["X-Trace-Id"] = trace_id
            await self._http_respond(
                writer,
                protocol.HTTP_STATUS.get(code, 500),
                payload_response,
                extra_headers=extra,
            )
        else:
            await self._http_respond(
                writer, 404, {"error": f"no route for {method} {target}"}
            )

    async def _http_decide(
        self, body: bytes, traceparent: str | None = None
    ) -> tuple[dict, str | None]:
        try:
            payload = protocol.decode_frame(body or b"{}")
            payload.setdefault("op", "decide")
            if payload["op"] not in protocol.DECISION_OPS:
                raise protocol.ProtocolError(
                    f"POST /decide serves decision ops only, got {payload['op']!r}"
                )
            request = protocol.parse_request(payload)
        except protocol.ProtocolError as exc:
            self._count_rejected("malformed")
            self._count_request("invalid", exc.code)
            return protocol.error_response(code=exc.code, error=str(exc)), None
        # a malformed traceparent header is *ignored* (fresh trace), per
        # the W3C spec — only the strict body field hard-rejects
        if traceparent is None or not obstrace.TRACEPARENT_RE.match(traceparent):
            traceparent = request.trace or None
        response, trace_id = await self._traced_decision(request, traceparent)
        if request.trace:
            response["trace"] = request.trace.split("-", 2)[1]
        self._count_request(request.op, response.get("code", protocol.INTERNAL))
        return response, trace_id

    async def _http_traces(
        self, writer: asyncio.StreamWriter, target: str
    ) -> None:
        """``GET /traces`` (summaries) and ``GET /traces/<id>`` (full).

        ``?slow=1`` orders by descending duration; ``?limit=N`` bounds
        the listing.  A full trace is joined with its decision-provenance
        records so one fetch explains the request end to end.
        """
        parts = urlsplit(target)
        store = self._tracer.store
        if parts.path.startswith("/traces/"):
            trace_id = parts.path[len("/traces/"):]
            trace = store.get(trace_id)
            if trace is None:
                await self._http_respond(
                    writer, 404, {"error": f"no retained trace {trace_id!r}"}
                )
                return
            payload = dict(trace)
            payload["provenance"] = self.engine.provenance.for_trace(trace_id)
            await self._http_respond(writer, 200, payload)
            return
        query = parse_qs(parts.query)
        try:
            limit = int(query.get("limit", ["50"])[0])
        except ValueError:
            await self._http_respond(
                writer, 400, {"error": "'limit' must be an integer"}
            )
            return
        slow = query.get("slow", ["0"])[0] not in ("", "0", "false")
        traces = store.slow(limit) if slow else store.list(limit)
        await self._http_respond(
            writer, 200, {"tracer": self._tracer.stats(), "traces": traces}
        )

    async def _http_respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict | str,
        content_type: str = "application/json",
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        if isinstance(payload, str):
            body = payload.encode("utf-8")
        else:
            body = (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")
        reason = {200: "OK", 400: "Bad Request", 403: "Forbidden",
                  404: "Not Found", 500: "Internal Server Error",
                  503: "Service Unavailable", 504: "Gateway Timeout"}.get(
            status, "Unknown"
        )
        head = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in (extra_headers or {}).items():
            head.append(f"{name}: {value}")
        await self._best_effort_write(
            writer, ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body
        )


class ServerThread:
    """A PdpServer on a private event loop in a daemon thread.

    Lets synchronous code — tests, the benchmark driver, the CLI client
    commands — stand up a real server in-process::

        with ServerThread(engine, ServerConfig(port=0)) as srv:
            client = PdpClient(srv.host, srv.port)
            ...

    Exiting the context performs the graceful drain-then-stop shutdown.
    """

    def __init__(
        self,
        engine: PdpEngine,
        config: ServerConfig | None = None,
        daemon=None,
        fleet=None,
        listener=None,
        ready: bool = True,
    ) -> None:
        self.server = PdpServer(
            engine, config, daemon=daemon, fleet=fleet,
            listener=listener, ready=ready,
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> "ServerThread":
        """Start the loop thread; returns once the port is listening."""
        if self._thread is not None:
            raise ServeError("server thread is already running")
        started = threading.Event()
        failure: list[BaseException] = []
        loop = asyncio.new_event_loop()
        self._loop = loop

        def _run() -> None:
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.server.start())
            except BaseException as exc:  # surface bind errors to start()
                failure.append(exc)
                started.set()
                loop.close()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
                loop.close()

        self._thread = threading.Thread(target=_run, name="pdp-server", daemon=True)
        self._thread.start()
        if not started.wait(10.0):
            raise ServeError("server did not start within 10s")
        if failure:
            self._thread.join(5.0)
            self._thread = None
            raise ServeError(f"server failed to start: {failure[0]}") from failure[0]
        return self

    @property
    def host(self) -> str:
        """The server's bound host."""
        return self.server.host

    @property
    def port(self) -> int:
        """The server's bound (possibly ephemeral) port."""
        return self.server.port

    def stop(self, drain: bool = True, timeout: float = 15.0) -> None:
        """Gracefully shut the server down and join the loop thread."""
        thread, loop = self._thread, self._loop
        if thread is None or loop is None:
            return
        self._thread = None
        future = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(drain=drain), loop
        )
        try:
            future.result(timeout=timeout)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
