"""Clients for the PDP server: synchronous sockets and asyncio streams.

Both clients speak the NDJSON frame protocol of
:mod:`repro.serve.protocol` and share one retry discipline
(:class:`RetryPolicy`): **connection establishment** retries with
exponential backoff, and a request that dies on a broken connection is
retried on a fresh connection — but only for idempotent ops (``ping``,
``decide``, ``query``, ``stats``; a ``decide`` re-sent after a transport
failure at worst duplicates an audit entry for the same decision, which
the refinement pipeline's frequency thresholds tolerate, while an admin
mutation must not be silently replayed).  Transport failures after the
retry budget surface as :class:`~repro.errors.ServeError`.

The response's ``ok``/``code`` is *not* converted into an exception:
``DENIED`` or ``OVERLOADED`` are answers, not transport failures, and
callers (the load driver above all) need to see and count them.
"""

from __future__ import annotations

import asyncio
import socket
import time
from dataclasses import dataclass

from repro.errors import ServeError
from repro.serve import protocol

#: Ops safe to replay on a fresh connection after a transport failure.
_IDEMPOTENT_OPS = frozenset({"ping", "decide", "query", "stats"})


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff for connection/transport failures."""

    attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 1.0
    backoff: float = 2.0
    #: extra attempts spent waiting out ``OVERLOADED`` responses (0 keeps
    #: the historical behaviour: an OVERLOADED answer is returned as-is).
    #: Only idempotent ops are retried, and each retry reconnects — in a
    #: fleet a fresh connection may land on a less loaded worker.
    overload_retries: int = 0
    #: ceiling in seconds on any single server-directed ``retry_after_ms``
    #: wait, so a misconfigured server cannot stall a client arbitrarily
    max_retry_after: float = 2.0

    def delay(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (0-based)."""
        return min(self.max_delay, self.base_delay * (self.backoff ** attempt))

    def overload_delay(self, response: dict, attempt: int) -> float:
        """Sleep before overload retry ``attempt``, honouring the server.

        The server's ``retry_after_ms`` hint wins when present (it knows
        its own drain rate); the fixed exponential schedule is only the
        fallback for responses that omit the hint.
        """
        hint = response.get("retry_after_ms")
        if isinstance(hint, (int, float)) and not isinstance(hint, bool) and hint >= 0:
            return min(self.max_retry_after, hint / 1000.0)
        return self.delay(attempt)


class _RequestIds:
    """Monotonic request-id source shared by both client shapes."""

    def __init__(self) -> None:
        self._next = 0

    def take(self) -> int:
        self._next += 1
        return self._next


class _ClientOps:
    """The op surface both clients expose; subclasses provide _call."""

    def _call(self, payload: dict, idempotent: bool):
        raise NotImplementedError

    def _op(self, op: str, idempotent: bool = True, **fields):
        payload = {"op": op, "id": self._ids.take()}
        payload.update({k: v for k, v in fields.items() if v is not None})
        return self._call(payload, idempotent)

    def request(self, payload: dict, idempotent: bool = True):
        """Send one raw request payload (an ``id`` is added if missing)."""
        body = dict(payload)
        body.setdefault("id", self._ids.take())
        return self._call(body, idempotent)

    def ping(self):
        """Liveness probe; returns the server's version stamp."""
        return self._op("ping")

    def decide(self, user, role, purpose, categories, exception=False,
               truth="", deadline_ms=None, trace=None):
        """One category-level PDP decision.

        ``trace`` takes a ``traceparent`` string (see
        :func:`repro.obs.trace.format_traceparent`) linking the server's
        trace to the caller's; the response echoes the trace id back.
        """
        return self._op(
            "decide", user=user, role=role, purpose=purpose,
            categories=list(categories), exception=exception, truth=truth,
            deadline_ms=deadline_ms, trace=trace,
        )

    def query(self, user, role, purpose, sql, exception=False, truth="",
              deadline_ms=None, trace=None):
        """One fully enforced SQL query (``trace`` as in :meth:`decide`)."""
        return self._op(
            "query", user=user, role=role, purpose=purpose, sql=sql,
            exception=exception, truth=truth, deadline_ms=deadline_ms,
            trace=trace,
        )

    def stats(self):
        """Engine + server statistics."""
        return self._op("stats")

    def add_rule(self, rule, note=""):
        """Hot-load one policy rule (copy-on-write snapshot swap)."""
        return self._op("admin.add_rule", idempotent=False, rule=rule, note=note)

    def retire_rule(self, rule, note=""):
        """Hot-retire one policy rule (copy-on-write snapshot swap)."""
        return self._op("admin.retire_rule", idempotent=False, rule=rule, note=note)

    def record_consent(self, patient, purpose, allowed, data=None):
        """Hot-record one consent directive."""
        return self._op(
            "admin.consent", idempotent=False, patient=patient,
            purpose=purpose, allowed=allowed, data=data,
        )

    def shutdown_server(self):
        """Ask the server (the whole fleet, when addressed at one of its
        workers) to drain and stop."""
        return self._op("admin.shutdown", idempotent=False)

    def fleet_status(self):
        """Supervisor-side fleet status (workers, versions, respawns)."""
        return self._op("fleet.status")

    def fleet_metrics(self):
        """Merged Prometheus text across every worker (``metrics`` key)."""
        return self._op("fleet.metrics")

    def fleet_sync(self):
        """Fan out an audit-log ``sync()`` to every worker (durability
        barrier; safe to repeat)."""
        return self._op("fleet.sync")


class PdpClient(_ClientOps):
    """Blocking socket client (tests, benchmarks, the CLI)."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 10.0,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry or RetryPolicy()
        self._ids = _RequestIds()
        self._sock: socket.socket | None = None
        self._file = None

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------
    def connect(self) -> "PdpClient":
        """Open the connection, retrying with backoff; idempotent."""
        if self._sock is not None:
            return self
        last: Exception | None = None
        for attempt in range(self.retry.attempts):
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
                self._sock = sock
                self._file = sock.makefile("rb")
                return self
            except OSError as exc:
                last = exc
                if attempt + 1 < self.retry.attempts:
                    time.sleep(self.retry.delay(attempt))
        raise ServeError(
            f"could not connect to {self.host}:{self.port} after "
            f"{self.retry.attempts} attempts: {last}"
        ) from last

    def close(self) -> None:
        """Close the connection (safe to call repeatedly)."""
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "PdpClient":
        return self.connect()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _roundtrip(self, frame: bytes) -> dict:
        assert self._sock is not None and self._file is not None
        self._sock.sendall(frame)
        line = self._file.readline(protocol.MAX_FRAME_BYTES + 1)
        if not line or not line.endswith(b"\n"):
            raise ConnectionResetError("server closed the connection mid-response")
        return protocol.decode_frame(line)

    def _call_once(self, payload: dict, idempotent: bool) -> dict:
        frame = protocol.encode_frame(payload)
        self.connect()
        attempts = self.retry.attempts if idempotent else 1
        last: Exception | None = None
        for attempt in range(attempts):
            try:
                return self._roundtrip(frame)
            except (OSError, ConnectionResetError, BrokenPipeError) as exc:
                last = exc
                self.close()
                if attempt + 1 < attempts:
                    time.sleep(self.retry.delay(attempt))
                    self.connect()
        raise ServeError(
            f"request {payload.get('op')!r} failed after {attempts} "
            f"attempt(s): {last}"
        ) from last

    def _call(self, payload: dict, idempotent: bool) -> dict:
        response = self._call_once(payload, idempotent)
        retries = self.retry.overload_retries if idempotent else 0
        for attempt in range(retries):
            if response.get("code") != protocol.OVERLOADED:
                break
            # honour the server's retry_after_ms, then reconnect: in a
            # fleet the fresh connection may land on a less loaded worker
            self.close()
            time.sleep(self.retry.overload_delay(response, attempt))
            response = self._call_once(payload, idempotent)
        return response


class AsyncPdpClient(_ClientOps):
    """The same surface over asyncio streams (every op is a coroutine)."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 10.0,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry or RetryPolicy()
        self._ids = _RequestIds()
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> "AsyncPdpClient":
        """Open the connection, retrying with backoff; idempotent."""
        if self._writer is not None:
            return self
        last: Exception | None = None
        for attempt in range(self.retry.attempts):
            try:
                self._reader, self._writer = await asyncio.wait_for(
                    asyncio.open_connection(
                        self.host, self.port, limit=protocol.MAX_FRAME_BYTES
                    ),
                    timeout=self.timeout,
                )
                return self
            except (OSError, asyncio.TimeoutError) as exc:
                last = exc
                if attempt + 1 < self.retry.attempts:
                    await asyncio.sleep(self.retry.delay(attempt))
        raise ServeError(
            f"could not connect to {self.host}:{self.port} after "
            f"{self.retry.attempts} attempts: {last}"
        ) from last

    async def close(self) -> None:
        """Close the connection (safe to call repeatedly)."""
        writer = self._writer
        self._reader = self._writer = None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionResetError):
                pass

    async def __aenter__(self) -> "AsyncPdpClient":
        return await self.connect()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    async def _roundtrip(self, frame: bytes) -> dict:
        assert self._reader is not None and self._writer is not None
        self._writer.write(frame)
        await self._writer.drain()
        line = await asyncio.wait_for(self._reader.readline(), self.timeout)
        if not line or not line.endswith(b"\n"):
            raise ConnectionResetError("server closed the connection mid-response")
        return protocol.decode_frame(line)

    async def _call_once(self, payload: dict, idempotent: bool) -> dict:
        frame = protocol.encode_frame(payload)
        await self.connect()
        attempts = self.retry.attempts if idempotent else 1
        last: Exception | None = None
        for attempt in range(attempts):
            try:
                return await self._roundtrip(frame)
            except (OSError, ConnectionResetError, asyncio.TimeoutError) as exc:
                last = exc
                await self.close()
                if attempt + 1 < attempts:
                    await asyncio.sleep(self.retry.delay(attempt))
                    await self.connect()
        raise ServeError(
            f"request {payload.get('op')!r} failed after {attempts} "
            f"attempt(s): {last}"
        ) from last

    async def _call(self, payload: dict, idempotent: bool) -> dict:
        response = await self._call_once(payload, idempotent)
        retries = self.retry.overload_retries if idempotent else 0
        for attempt in range(retries):
            if response.get("code") != protocol.OVERLOADED:
                break
            # honour the server's retry_after_ms, then reconnect: in a
            # fleet the fresh connection may land on a less loaded worker
            await self.close()
            await asyncio.sleep(self.retry.overload_delay(response, attempt))
            response = await self._call_once(payload, idempotent)
        return response
