"""The decision engine: versioned snapshots over Active Enforcement.

The server owns exactly one :class:`PdpEngine`.  The engine owns a
:class:`SnapshotManager` whose *current* :class:`EngineSnapshot` bundles
one :class:`~repro.hdb.enforcement.ActiveEnforcer` with the policy store
and consent store it reads.  Snapshots are **copy-on-write**: an admin
mutation clones both stores, applies the change, builds a fresh enforcer
over the same database/auditor, and swaps the bundle in with a single
reference assignment — in-flight decisions keep the snapshot they
resolved at admission, so a hot reload can never produce a half-updated
decision.  Every response is stamped with the snapshot's versions
``{snapshot, policy, consent, vocab}`` (``vocab`` being the interner's
vocabulary version from PR 1).

Two decision shapes:

``decide``
    The pure PDP path — ``(user, role, purpose, data categories)`` in,
    permitted/masked categories out.  Verdicts come from the interned
    :class:`~repro.serve.cache.DecisionCache`; compliance auditing runs
    on every request (cache hits included) with exactly the enforcer's
    entry semantics, so the served trail is indistinguishable from an
    in-process one.
``query``
    Full Active Enforcement — the SQL is rewritten, executed, and
    consent-masked by the snapshot's enforcer, byte-identical to calling
    :meth:`ActiveEnforcer.execute` in process (E18 asserts this).

Auditing is write-through: hand :func:`build_demo_engine` a
:class:`~repro.store.durable.DurableAuditLog` and every served decision
lands in the crash-safe segmented store, ready for
``repro refine --store-dir`` against the live service.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.audit.schema import AccessOp, AccessStatus
from repro.errors import AccessDeniedError, EnforcementError, PrimaError
from repro.hdb.consent import ConsentStore
from repro.hdb.enforcement import AccessRequest, ActiveEnforcer
from repro.obs import trace as obstrace
from repro.obs.provenance import DecisionProvenance, ProvenanceLedger
from repro.obs.runtime import get_registry
from repro.policy.parser import parse_rule
from repro.policy.store import PolicyStore
from repro.serve import protocol
from repro.serve.cache import DecisionCache
from repro.serve.protocol import ServeRequest
from repro.sqlmini.errors import SqlError
from repro.vocab.tree import canonical
from repro.vocab.vocabulary import Vocabulary


@dataclass(frozen=True)
class EngineSnapshot:
    """One immutable generation of the service's decision state."""

    snapshot_id: int
    enforcer: ActiveEnforcer
    policy_store: PolicyStore
    consent: ConsentStore
    vocabulary: Vocabulary

    def versions(self) -> dict:
        """The version stamp carried by every response."""
        return {
            "snapshot": self.snapshot_id,
            "policy": self.policy_store.revision,
            "consent": self.consent.version,
            "vocab": self.vocabulary.version,
        }


class SnapshotManager:
    """Copy-on-write swaps of the engine's decision state."""

    def __init__(self, enforcer: ActiveEnforcer) -> None:
        self._obs = get_registry()
        # Serialises writers: admin ops arrive on the server's event loop,
        # but an embedded refinement daemon mutates from its own thread.
        # Readers stay lock-free — they grab ``current`` once per request.
        self._mutate_lock = threading.Lock()
        self._snapshot_id = 1
        self._current = EngineSnapshot(
            snapshot_id=1,
            enforcer=enforcer,
            policy_store=enforcer.policy_store,
            consent=enforcer.consent,
            vocabulary=enforcer.vocabulary,
        )

    @property
    def current(self) -> EngineSnapshot:
        """The live snapshot (grab once per request)."""
        return self._current

    @property
    def auditor(self):
        """The compliance auditor — shared across snapshots so the
        logical clock and trail are continuous over reloads."""
        return self._current.enforcer.auditor

    def mutate(self, fn) -> tuple[EngineSnapshot, object]:
        """Apply ``fn(policy_store, consent)`` on clones; swap; return.

        ``fn`` runs against private clones, so concurrent readers of the
        old snapshot are never exposed to a partial update; the swap is
        one reference assignment.  Concurrent writers (admin ops on the
        event loop, an embedded refinement daemon on its own thread) are
        serialised under a lock so no mutation is lost to a racing clone.
        Returns ``(new snapshot, fn result)``.
        """
        with self._mutate_lock:
            base = self._current
            store = base.policy_store.clone()
            consent = base.consent.clone()
            changed = fn(store, consent)
            enforcer = ActiveEnforcer(
                database=base.enforcer.database,
                policy_store=store,
                consent=consent,
                auditor=base.enforcer.auditor,
                vocabulary=base.vocabulary,
                ledger=base.enforcer.ledger,
            )
            for binding in base.enforcer.bindings:
                enforcer.bind_table(binding)
            self._snapshot_id += 1
            snapshot = EngineSnapshot(
                snapshot_id=self._snapshot_id,
                enforcer=enforcer,
                policy_store=store,
                consent=consent,
                vocabulary=base.vocabulary,
            )
            self._current = snapshot  # the atomic swap
        if self._obs.enabled:
            self._obs.counter("repro_serve_snapshot_swaps_total").inc()
            self._obs.gauge("repro_serve_snapshot_version").set(snapshot.snapshot_id)
        return snapshot, changed


class PdpEngine:
    """Decision + admin surface the server exposes over the wire."""

    def __init__(
        self,
        manager: SnapshotManager,
        cache: DecisionCache | None = None,
        provenance: ProvenanceLedger | None = None,
    ) -> None:
        self.manager = manager
        self.cache = cache
        #: decision provenance side-records (7-attribute audit schema
        #: stays untouched); only populated for traced requests
        self.provenance = provenance if provenance is not None else ProvenanceLedger()
        self._obs = get_registry()
        self.decisions_served = 0
        self.queries_served = 0

    # ------------------------------------------------------------------
    # read surface
    # ------------------------------------------------------------------
    @property
    def audit_log(self):
        """The write-through audit trail (in-memory or durable)."""
        return self.manager.auditor.log

    def versions(self) -> dict:
        """The current snapshot's version stamp."""
        return self.manager.current.versions()

    def stats(self) -> dict:
        """JSON-ready engine statistics for the ``stats`` op."""
        snapshot = self.manager.current
        enforcer_stats = snapshot.enforcer.stats
        return {
            "versions": snapshot.versions(),
            "decisions_served": self.decisions_served,
            "queries_served": self.queries_served,
            "audit_entries": len(self.audit_log),
            "active_rules": len(snapshot.policy_store),
            "decision_cache": self.cache.stats() if self.cache else None,
            "permit_cache": {
                "hits": enforcer_stats.permit_cache_hits,
                "misses": enforcer_stats.permit_cache_misses,
                "invalidations": enforcer_stats.permit_cache_invalidations,
            },
        }

    # ------------------------------------------------------------------
    # the decision paths
    # ------------------------------------------------------------------
    def decide(self, request: ServeRequest) -> dict:
        """The category-level PDP decision, audited write-through.

        Mirrors the enforcer's audit semantics exactly: a fully denied
        request writes DENY entries and answers ``DENIED``; an allowed
        request writes ALLOW entries for the permitted categories plus
        DENY entries for any masked ones.
        """
        snapshot = self.manager.current
        trace_id = obstrace.recording_trace_id()
        started = time.perf_counter()
        entries_before = len(self.audit_log) if trace_id else 0
        role = canonical(request.role)
        purpose = canonical(request.purpose)
        categories = tuple(sorted({canonical(c) for c in request.categories}))
        if request.exception:
            status = AccessStatus.EXCEPTION
            permitted = frozenset(categories)
            cache_state = "bypass"
        else:
            status = AccessStatus.REGULAR
            permitted, cache_state = self._permitted(
                snapshot, role, purpose, categories
            )
        masked = tuple(sorted(set(categories) - permitted))
        returned = tuple(sorted(permitted))
        auditor = self.manager.auditor
        self.decisions_served += 1
        versions = snapshot.versions()
        if categories and not permitted:
            auditor.record_access(
                user=request.user, role=role, purpose=purpose,
                categories=masked, op=AccessOp.DENY, status=status,
                truth=request.truth,
            )
            response = protocol.error_response(
                code=protocol.DENIED,
                error=f"policy permits none of {list(masked)} for role "
                      f"{role!r} and purpose {purpose!r}",
                decision="deny", returned=[], masked=list(masked),
                versions=versions,
            )
        else:
            auditor.record_access(
                user=request.user, role=role, purpose=purpose,
                categories=returned, op=AccessOp.ALLOW, status=status,
                truth=request.truth,
            )
            if masked:
                auditor.record_access(
                    user=request.user, role=role, purpose=purpose,
                    categories=masked, op=AccessOp.DENY, status=status,
                    truth=request.truth,
                )
            response = protocol.ok_response(
                decision="allow",
                status="exception" if request.exception else "regular",
                returned=list(returned), masked=list(masked),
                versions=versions,
            )
        if trace_id is not None:
            self._record_provenance(
                trace_id=trace_id, request=request, snapshot=snapshot,
                role=role, purpose=purpose, categories=categories,
                resolve=categories if status is AccessStatus.REGULAR else (),
                response=response, status=status, cache_state=cache_state,
                entries_before=entries_before, started=started,
                versions=versions,
            )
        return response

    def _record_provenance(
        self,
        *,
        trace_id: str,
        request: ServeRequest,
        snapshot: EngineSnapshot,
        role: str,
        purpose: str,
        categories: tuple[str, ...],
        resolve: tuple[str, ...],
        response: dict,
        status: AccessStatus,
        cache_state: str,
        entries_before: int,
        started: float,
        versions: dict,
    ) -> None:
        """Record the why-record for one traced decision (side channel).

        Never touches ``response`` — provenance must not perturb the E20
        byte-identity of the wire protocol.  ``resolve`` names the
        categories whose covering rule revision should be looked up (the
        enforcer memoises the lookup, so this is cheap after the first
        traced request per key).
        """
        matched: dict[str, int | None] = {}
        for category in resolve:
            matched[category] = snapshot.enforcer.policy_decision(
                category, purpose, role
            )[1]
        entry_ids = tuple(range(entries_before, len(self.audit_log)))
        builder = obstrace.current()
        annotations = builder.annotations if builder is not None else {}
        self.provenance.record(
            DecisionProvenance(
                trace_id=trace_id,
                op=request.op,
                user=request.user,
                role=role,
                purpose=purpose,
                decision=response["code"],
                status=(
                    "exception" if status is AccessStatus.EXCEPTION else "regular"
                ),
                categories=categories,
                matched_rules=matched,
                versions=versions,
                cache=cache_state,
                queue_ms=annotations.get("queue_ms"),
                handle_ms=round((time.perf_counter() - started) * 1000.0, 4),
                entry_ids=entry_ids,
                deadline_remaining_ms=annotations.get("deadline_remaining_ms"),
            )
        )
        if entry_ids:
            obstrace.annotate(entry_ids=list(entry_ids))

    def _permitted(
        self,
        snapshot: EngineSnapshot,
        role: str,
        purpose: str,
        categories: tuple[str, ...],
    ) -> tuple[frozenset[str], str]:
        """The policy verdict, via the interned decision cache.

        Returns ``(permitted categories, cache state)`` where the state
        is ``hit``/``miss``/``off`` — the provenance record's ``cache``.
        """
        cache = self.cache
        if cache is None:
            return (
                frozenset(
                    category
                    for category in categories
                    if snapshot.enforcer.policy_permits(category, purpose, role)
                ),
                "off",
            )
        key = cache.key(
            snapshot.policy_store.revision, snapshot.consent.version,
            role, purpose, categories,
        )
        permitted = cache.get(key)
        if permitted is not None:
            return permitted, "hit"
        permitted = frozenset(
            category
            for category in categories
            if snapshot.enforcer.policy_permits(category, purpose, role)
        )
        cache.put(key, permitted)
        return permitted, "miss"

    def query(self, request: ServeRequest) -> dict:
        """Full Active Enforcement over one SQL request."""
        snapshot = self.manager.current
        trace_id = obstrace.recording_trace_id()
        started = time.perf_counter()
        entries_before = len(self.audit_log) if trace_id else 0
        access = AccessRequest(
            user=request.user, role=request.role, purpose=request.purpose,
            sql=request.sql, exception=request.exception, truth=request.truth,
        )
        self.queries_served += 1
        versions = snapshot.versions()
        status = (
            AccessStatus.EXCEPTION if request.exception else AccessStatus.REGULAR
        )
        try:
            result = snapshot.enforcer.execute(access)
        except AccessDeniedError as exc:
            response = protocol.error_response(
                code=protocol.DENIED, error=exc.reason, decision="deny",
                versions=versions,
            )
            if trace_id is not None:
                self._record_provenance(
                    trace_id=trace_id, request=request, snapshot=snapshot,
                    role=canonical(request.role),
                    purpose=canonical(request.purpose),
                    categories=(), resolve=(), response=response,
                    status=status, cache_state="off",
                    entries_before=entries_before, started=started,
                    versions=versions,
                )
            return response
        except (EnforcementError, SqlError) as exc:
            # raised before anything executed or was audited: the query
            # never entered the trail, exactly like a malformed frame
            return protocol.error_response(
                code=protocol.BAD_REQUEST, error=str(exc), versions=versions
            )
        response = protocol.ok_response(
            decision="allow",
            status=result.status.name.lower(),
            returned=list(result.categories_returned),
            masked=list(result.categories_masked),
            cells_masked=result.cells_masked_by_consent,
            rows_dropped=result.rows_dropped_by_consent,
            columns=list(result.result.columns),
            rows=[list(row) for row in result.result.rows],
            versions=versions,
        )
        if trace_id is not None:
            categories = tuple(
                sorted(
                    set(result.categories_returned)
                    | set(result.categories_masked)
                )
            )
            self._record_provenance(
                trace_id=trace_id, request=request, snapshot=snapshot,
                role=canonical(request.role),
                purpose=canonical(request.purpose),
                categories=categories,
                resolve=categories if status is AccessStatus.REGULAR else (),
                response=response, status=status, cache_state="off",
                entries_before=entries_before, started=started,
                versions=versions,
            )
        return response

    # ------------------------------------------------------------------
    # admin surface (each call = one copy-on-write snapshot swap)
    # ------------------------------------------------------------------
    def admin(self, request: ServeRequest) -> dict:
        """Apply one admin op; answers with the new version stamp."""
        try:
            if request.op == "admin.add_rule":
                rule = parse_rule(request.rule)
                snapshot, changed = self.manager.mutate(
                    lambda store, consent: store.add(
                        rule, added_by="serve-admin", origin="serve",
                        note=request.note,
                    )
                )
            elif request.op == "admin.retire_rule":
                rule = parse_rule(request.rule)
                snapshot, changed = self.manager.mutate(
                    lambda store, consent: store.retire(
                        rule, added_by="serve-admin", note=request.note
                    )
                )
            else:  # admin.consent
                snapshot, changed = self.manager.mutate(
                    lambda store, consent: consent.record(
                        request.patient, request.purpose, request.allowed,
                        data=request.data,
                    )
                )
                changed = True
        except PrimaError as exc:
            return protocol.error_response(code=protocol.BAD_REQUEST, error=str(exc))
        if self.cache is not None:
            self.cache.invalidate()
        return protocol.ok_response(
            changed=bool(changed), versions=snapshot.versions()
        )

    def adopt_rules(
        self,
        rules,
        added_by: str = "refine-daemon",
        note: str = "",
    ) -> tuple[EngineSnapshot, int]:
        """Adopt a batch of mined rules in ONE snapshot swap.

        The in-process admin path for the refinement daemon: all rules of
        a mining round land atomically (readers see none or all), and the
        decision cache is invalidated iff anything changed.  Idempotent —
        re-adopting present rules is a no-op that swaps nothing.
        """
        batch = tuple(rules)
        current = self.manager.current.policy_store
        if all(rule in current for rule in batch):
            return self.manager.current, 0
        snapshot, added = self.manager.mutate(
            lambda store, consent: store.add_all(
                batch, added_by=added_by, origin="refinement", note=note
            )
        )
        if self.cache is not None and added:
            self.cache.invalidate()
        return snapshot, int(added)


def build_demo_engine(
    rows: int = 200,
    seed: int = 7,
    rules=None,
    audit_log=None,
    cache: bool = True,
    cache_size: int = 4096,
) -> PdpEngine:
    """The standard served deployment: the E6 clinical database.

    Built from :func:`repro.experiments.harness.clinical_db_setup` with
    the same ``rows``/``seed``, so an in-process control center built the
    same way is *the same system* — the E18 identity assertion depends on
    this.  ``audit_log`` accepts a durable log for write-through
    persistence; ``rules`` replaces the demo policy.
    """
    from repro.experiments.harness import clinical_db_setup

    setup = clinical_db_setup(
        rows=rows, seed=seed, audit_log=audit_log, rules=rules
    )
    manager = SnapshotManager(setup.control_center.enforcer)
    if audit_log is not None and len(audit_log) > 0:
        # restarting over an existing durable trail (server restart, or a
        # fleet worker respawn into its old segment directory): the fresh
        # logical clock would start below the trail's last tick and the
        # store's non-decreasing-time invariant would reject the first
        # append.  Jump the clock past what is already durable.
        time_range = getattr(audit_log, "time_range", None)
        if callable(time_range):
            manager.auditor.clock.advance_to(time_range()[1] + 1)
    return PdpEngine(manager, DecisionCache(cache_size) if cache else None)
