"""The PDP wire protocol: newline-delimited JSON frames.

One frame is one UTF-8 JSON object terminated by ``\\n``.  Clients send
request frames carrying an ``op`` (plus op-specific fields) and receive
exactly one response frame per request, in order.  Responses always carry
``ok``/``code`` and — for any frame the engine actually served — the
``versions`` stamp ``{snapshot, policy, consent, vocab}`` so a client can
detect a hot reload between two answers (``vocab`` is the interner's
vocabulary version from PR 1).

The protocol is deliberately strict: a frame that is not a JSON object,
names an unknown op, or is missing/mistyping a required field is rejected
with ``BAD_REQUEST`` *before* it reaches enforcement, so rejected frames
never produce audit entries.  Oversized frames (no newline within
:data:`MAX_FRAME_BYTES`) terminate the connection after one
``BAD_REQUEST`` response — an unbounded line is indistinguishable from a
memory-exhaustion attack.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ServeError
from repro.obs.trace import TRACEPARENT_RE

#: Hard ceiling on one frame (request or response), newline included.
MAX_FRAME_BYTES = 64 * 1024

# ----------------------------------------------------------------------
# response codes
# ----------------------------------------------------------------------

OK = "OK"
DENIED = "DENIED"
BAD_REQUEST = "BAD_REQUEST"
OVERLOADED = "OVERLOADED"
TIMEOUT = "TIMEOUT"
SHUTTING_DOWN = "SHUTTING_DOWN"
INTERNAL = "INTERNAL"

#: Every code a response frame may carry.
CODES = frozenset(
    {OK, DENIED, BAD_REQUEST, OVERLOADED, TIMEOUT, SHUTTING_DOWN, INTERNAL}
)

#: The HTTP status the shim maps each code onto.
HTTP_STATUS = {
    OK: 200,
    DENIED: 403,
    BAD_REQUEST: 400,
    OVERLOADED: 503,
    TIMEOUT: 504,
    SHUTTING_DOWN: 503,
    INTERNAL: 500,
}

#: Ops the server accepts over the frame protocol.
OPS = frozenset(
    {
        "ping",
        "decide",
        "query",
        "stats",
        "admin.add_rule",
        "admin.retire_rule",
        "admin.consent",
        "admin.shutdown",
        "fleet.status",
        "fleet.metrics",
        "fleet.sync",
    }
)

#: Ops that run through the decision engine (and admission control).
DECISION_OPS = frozenset({"decide", "query"})


class ProtocolError(ServeError):
    """A frame violated the wire protocol; carries the response code."""

    def __init__(self, message: str, code: str = BAD_REQUEST) -> None:
        self.code = code
        super().__init__(message)


# ----------------------------------------------------------------------
# frames
# ----------------------------------------------------------------------


def encode_frame(payload: dict) -> bytes:
    """Serialise one frame: compact JSON + newline."""
    if not isinstance(payload, dict):
        raise ProtocolError(f"frames are JSON objects, got {type(payload).__name__}")
    data = json.dumps(payload, separators=(",", ":"), ensure_ascii=False)
    frame = data.encode("utf-8") + b"\n"
    if len(frame) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(frame)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return frame


def decode_frame(line: bytes | str) -> dict:
    """Parse one frame line into a dict; rejects anything else."""
    if isinstance(line, bytes):
        if len(line) > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"frame of {len(line)} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte limit"
            )
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"frame is not UTF-8: {exc}") from exc
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame is not JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frames are JSON objects, got {type(payload).__name__}"
        )
    return payload


# ----------------------------------------------------------------------
# requests
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ServeRequest:
    """One validated request frame."""

    op: str
    id: object = None
    user: str = ""
    role: str = ""
    purpose: str = ""
    categories: tuple[str, ...] = ()
    sql: str = ""
    exception: bool = False
    truth: str = ""
    deadline_ms: float | None = None
    #: optional caller trace link, a strict ``traceparent`` string
    #: (``00-<32 hex>-<16 hex>-<2 hex>``); when present, the response
    #: echoes the trace id back — with tracing enabled *or* disabled,
    #: so responses stay byte-identical either way (E20)
    trace: str = ""
    # admin fields
    rule: str = ""
    patient: str = ""
    allowed: bool = True
    data: str | None = None
    note: str = field(default="", repr=False)


def _string(payload: dict, key: str, required: bool = True) -> str:
    value = payload.get(key, "" if not required else None)
    if value is None:
        raise ProtocolError(f"{payload.get('op')!r} requires a {key!r} string")
    if not isinstance(value, str):
        raise ProtocolError(f"{key!r} must be a string, got {type(value).__name__}")
    if required and not value.strip():
        raise ProtocolError(f"{key!r} must be a non-empty string")
    return value


def _bool(payload: dict, key: str, default: bool) -> bool:
    value = payload.get(key, default)
    if not isinstance(value, bool):
        raise ProtocolError(f"{key!r} must be a boolean, got {value!r}")
    return value


def _categories(payload: dict) -> tuple[str, ...]:
    value = payload.get("categories")
    if not isinstance(value, (list, tuple)) or not value:
        raise ProtocolError("'decide' requires a non-empty 'categories' list")
    out = []
    for item in value:
        if not isinstance(item, str) or not item.strip():
            raise ProtocolError(f"categories must be non-empty strings, got {item!r}")
        out.append(item)
    return tuple(out)


def _trace(payload: dict) -> str:
    value = payload.get("trace")
    if value is None:
        return ""
    if not isinstance(value, str) or not TRACEPARENT_RE.match(value):
        raise ProtocolError(
            "'trace' must be a traceparent string "
            f"'00-<32 hex>-<16 hex>-<2 hex>', got {value!r}"
        )
    return value


def _deadline(payload: dict) -> float | None:
    value = payload.get("deadline_ms")
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)) or value <= 0:
        raise ProtocolError(f"'deadline_ms' must be a positive number, got {value!r}")
    return float(value)


def parse_request(payload: dict) -> ServeRequest:
    """Validate a decoded frame into a :class:`ServeRequest`.

    Raises :class:`ProtocolError` (→ ``BAD_REQUEST``) on any violation;
    by contract nothing that fails here may reach the audit trail.
    """
    op = payload.get("op")
    if not isinstance(op, str):
        raise ProtocolError("every request frame needs a string 'op'")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r} (expected one of {sorted(OPS)})")
    request_id = payload.get("id")

    if op in ("ping", "stats", "admin.shutdown",
              "fleet.status", "fleet.metrics", "fleet.sync"):
        return ServeRequest(op=op, id=request_id)
    if op == "decide":
        return ServeRequest(
            op=op,
            id=request_id,
            user=_string(payload, "user"),
            role=_string(payload, "role"),
            purpose=_string(payload, "purpose"),
            categories=_categories(payload),
            exception=_bool(payload, "exception", False),
            truth=_string(payload, "truth", required=False),
            deadline_ms=_deadline(payload),
            trace=_trace(payload),
        )
    if op == "query":
        return ServeRequest(
            op=op,
            id=request_id,
            user=_string(payload, "user"),
            role=_string(payload, "role"),
            purpose=_string(payload, "purpose"),
            sql=_string(payload, "sql"),
            exception=_bool(payload, "exception", False),
            truth=_string(payload, "truth", required=False),
            deadline_ms=_deadline(payload),
            trace=_trace(payload),
        )
    if op in ("admin.add_rule", "admin.retire_rule"):
        return ServeRequest(
            op=op,
            id=request_id,
            rule=_string(payload, "rule"),
            note=_string(payload, "note", required=False),
        )
    # op == "admin.consent"
    data = payload.get("data")
    if data is not None and (not isinstance(data, str) or not data.strip()):
        raise ProtocolError(f"'data' must be a non-empty string or null, got {data!r}")
    return ServeRequest(
        op=op,
        id=request_id,
        patient=_string(payload, "patient"),
        purpose=_string(payload, "purpose"),
        allowed=_bool(payload, "allowed", True),
        data=data,
    )


# ----------------------------------------------------------------------
# responses
# ----------------------------------------------------------------------


def ok_response(request_id: object = None, **fields: object) -> dict:
    """Build a success response frame."""
    response: dict = {"ok": True, "code": OK}
    if request_id is not None:
        response["id"] = request_id
    response.update(fields)
    return response


def error_response(
    request_id: object = None, code: str = INTERNAL, error: str = "", **fields: object
) -> dict:
    """Build an error response frame for ``code``."""
    if code not in CODES or code == OK:
        raise ServeError(f"not an error code: {code!r}")
    response: dict = {"ok": False, "code": code, "error": error}
    if request_id is not None:
        response["id"] = request_id
    response.update(fields)
    return response
