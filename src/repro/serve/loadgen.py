"""Load drivers replaying workload traffic against a live PDP server.

Two driver shapes:

* :func:`run_load` — the original **closed-loop** driver: N client
  threads, each sending its next request the moment the previous answer
  lands.  Preserves per-client ordering (the E18 identity phase depends
  on a single-client run being in order), but its latency numbers suffer
  *coordinated omission*: when the server stalls, the stalled client
  simply stops issuing requests, so the stall is sampled once instead of
  once per request that *should* have been sent.

* :func:`run_load_open` — the **open-loop** driver: requests follow a
  fixed target-RPS arrival schedule (request *i* is *intended* at
  ``t0 + i/rate``) and latency is measured **from the intended send
  time**, not from whenever a client got around to sending.  A server
  stall therefore penalises every request scheduled during the stall,
  which is what a real arrival process would experience.  Results land
  in a mergeable :class:`LatencyHistogram`;
  :func:`saturation_sweep` steps a rate ladder to find the knee.

Feed either driver decision payloads — typically
:func:`repro.workload.traces.decision_payloads` over a synthetic audit
log.  Shed (``OVERLOADED``) responses are outcomes, not errors.  The
E18/E21 benchmarks and ``repro serve --load`` sit on these.
"""

from __future__ import annotations

import itertools
import math
import multiprocessing
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.obs.trace import format_traceparent, new_span_id, new_trace_id
from repro.serve.client import PdpClient, RetryPolicy


def percentile(samples: list[float], fraction: float) -> float:
    """The ``fraction`` quantile (nearest-rank) of ``samples``; 0 if empty."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = math.ceil(fraction * len(ordered))
    return ordered[min(len(ordered) - 1, max(0, rank - 1))]


@dataclass
class LoadReport:
    """What one load run did, ready for the benchmark JSON record."""

    requests: int = 0
    ok: int = 0
    denied: int = 0
    shed: int = 0
    errors: int = 0
    seconds: float = 0.0
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    codes: dict = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Completed requests per second."""
        return self.requests / self.seconds if self.seconds > 0 else 0.0

    def summary(self) -> dict:
        """JSON-ready flattening of the report."""
        return {
            "requests": self.requests,
            "ok": self.ok,
            "denied": self.denied,
            "shed": self.shed,
            "errors": self.errors,
            "seconds": round(self.seconds, 6),
            "throughput_rps": round(self.throughput, 2),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "codes": dict(sorted(self.codes.items())),
        }


def run_load(
    host: str,
    port: int,
    payloads: list[dict],
    clients: int = 4,
    timeout: float = 30.0,
    trace_every: int = 0,
) -> LoadReport:
    """Replay ``payloads`` against ``host:port`` with ``clients`` threads.

    Payload *i* goes to client ``i % clients``, so a single-client run
    preserves the original order exactly (the E18 identity phase depends
    on that).  ``trace_every=N`` stamps every N-th decision payload with
    a fresh client-side ``traceparent`` (``trace`` field), so a load run
    leaves linkable traces behind for ``repro trace``; 0 stamps nothing.
    Returns the merged :class:`LoadReport`.
    """
    clients = max(1, min(clients, len(payloads) or 1))
    shards: list[list[dict]] = [[] for _ in range(clients)]
    for index, payload in enumerate(payloads):
        if trace_every > 0 and index % trace_every == 0 and (
            payload.get("op", "decide") in ("decide", "query")
        ):
            payload = dict(payload)
            payload["trace"] = format_traceparent(new_trace_id(), new_span_id())
        shards[index % clients].append(payload)

    lock = threading.Lock()
    latencies: list[float] = []
    report = LoadReport()

    def worker(shard: list[dict]) -> None:
        local_lat: list[float] = []
        local_codes: dict[str, int] = {}
        local_errors = 0
        client = PdpClient(host, port, timeout=timeout, retry=RetryPolicy())
        try:
            client.connect()
            for payload in shard:
                begun = time.perf_counter()
                try:
                    response = client.request(payload)
                    code = response.get("code", "INTERNAL")
                except Exception:
                    local_errors += 1
                    continue
                local_lat.append((time.perf_counter() - begun) * 1000.0)
                local_codes[code] = local_codes.get(code, 0) + 1
        finally:
            client.close()
        with lock:
            latencies.extend(local_lat)
            report.errors += local_errors
            for code, count in local_codes.items():
                report.codes[code] = report.codes.get(code, 0) + count

    threads = [
        threading.Thread(target=worker, args=(shard,), name=f"pdp-load-{i}")
        for i, shard in enumerate(shards)
        if shard
    ]
    begun = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.seconds = time.perf_counter() - begun
    report.requests = len(latencies)
    report.ok = report.codes.get("OK", 0)
    report.denied = report.codes.get("DENIED", 0)
    report.shed = report.codes.get("OVERLOADED", 0)
    report.p50_ms = percentile(latencies, 0.50)
    report.p99_ms = percentile(latencies, 0.99)
    return report


# ----------------------------------------------------------------------
# the open-loop driver
# ----------------------------------------------------------------------

#: first bucket's upper bound in milliseconds
_HIST_BASE_MS = 0.001
#: geometric growth factor between bucket bounds
_HIST_GROWTH = 1.25
#: bucket count — the last bound is ~27 minutes, far past any deadline
_HIST_BUCKETS = 96
_HIST_LOG_GROWTH = math.log(_HIST_GROWTH)


class LatencyHistogram:
    """Log-bucketed latency histogram: mergeable, interpolated quantiles.

    Geometric buckets (±12.5% relative error) keep recording O(1) and
    the state small enough to ship between load-driver processes, while
    :meth:`merge` makes multi-process fan-out exact: merging shard
    histograms is the same as recording into one.
    """

    __slots__ = ("counts", "count", "sum", "max")

    def __init__(self) -> None:
        self.counts = [0] * _HIST_BUCKETS
        self.count = 0
        self.sum = 0.0
        self.max = 0.0

    @staticmethod
    def _index(ms: float) -> int:
        if ms <= _HIST_BASE_MS:
            return 0
        index = int(math.log(ms / _HIST_BASE_MS) / _HIST_LOG_GROWTH) + 1
        return min(index, _HIST_BUCKETS - 1)

    @staticmethod
    def _bound(index: int) -> float:
        return _HIST_BASE_MS * (_HIST_GROWTH ** index)

    def record(self, ms: float) -> None:
        """Record one latency sample in milliseconds."""
        self.counts[self._index(ms)] += 1
        self.count += 1
        self.sum += ms
        if ms > self.max:
            self.max = ms

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other``'s samples into this histogram; returns self."""
        for index, value in enumerate(other.counts):
            self.counts[index] += value
        self.count += other.count
        self.sum += other.sum
        if other.max > self.max:
            self.max = other.max
        return self

    def quantile(self, fraction: float) -> float:
        """The ``fraction`` quantile in ms, interpolated within a bucket."""
        if self.count == 0:
            return 0.0
        target = fraction * self.count
        cumulative = 0
        for index, value in enumerate(self.counts):
            if value == 0:
                continue
            if cumulative + value >= target:
                lower = 0.0 if index == 0 else self._bound(index - 1)
                upper = min(self._bound(index), self.max) or self._bound(index)
                within = (target - cumulative) / value
                return lower + (upper - lower) * within
            cumulative += value
        return self.max

    @property
    def mean(self) -> float:
        """Arithmetic mean latency in ms (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        """Picklable/JSON-ready state (sparse bucket encoding)."""
        return {
            "count": self.count,
            "sum": self.sum,
            "max": self.max,
            "buckets": [
                [index, value]
                for index, value in enumerate(self.counts)
                if value
            ],
        }

    @classmethod
    def from_dict(cls, state: dict) -> "LatencyHistogram":
        """Rebuild a histogram from :meth:`to_dict` state."""
        hist = cls()
        hist.count = int(state.get("count", 0))
        hist.sum = float(state.get("sum", 0.0))
        hist.max = float(state.get("max", 0.0))
        for index, value in state.get("buckets", []):
            hist.counts[int(index)] = int(value)
        return hist


@dataclass
class OpenLoadReport:
    """One open-loop run: schedule adherence + intended-time latency."""

    target_rps: float = 0.0
    scheduled: int = 0
    completed: int = 0
    errors: int = 0
    seconds: float = 0.0
    codes: dict = field(default_factory=dict)
    histogram: LatencyHistogram = field(default_factory=LatencyHistogram)
    #: requests whose *send* started late (the schedule slipped); high
    #: values mean the measured latencies include client-side queueing —
    #: exactly what coordinated omission used to hide
    late_sends: int = 0

    @property
    def achieved_rps(self) -> float:
        """Completed requests per second of wall-clock run time."""
        return self.completed / self.seconds if self.seconds > 0 else 0.0

    @property
    def ok(self) -> int:
        return self.codes.get("OK", 0)

    @property
    def shed(self) -> int:
        return self.codes.get("OVERLOADED", 0)

    def summary(self) -> dict:
        """JSON-ready flattening of the report."""
        hist = self.histogram
        return {
            "target_rps": round(self.target_rps, 2),
            "achieved_rps": round(self.achieved_rps, 2),
            "scheduled": self.scheduled,
            "completed": self.completed,
            "ok": self.ok,
            "shed": self.shed,
            "errors": self.errors,
            "late_sends": self.late_sends,
            "seconds": round(self.seconds, 6),
            "p50_ms": round(hist.quantile(0.50), 3),
            "p90_ms": round(hist.quantile(0.90), 3),
            "p99_ms": round(hist.quantile(0.99), 3),
            "max_ms": round(hist.max, 3),
            "mean_ms": round(hist.mean, 4),
            "codes": dict(sorted(self.codes.items())),
        }


def _open_load_shard(task: tuple) -> dict:
    """One open-loop shard (module-level so 'spawn' can pickle it).

    ``task`` is ``(host, port, payloads, target_rps, clients, timeout)``;
    returns a picklable dict merged by :func:`run_load_open`.
    """
    host, port, payloads, target_rps, clients, timeout = task
    total = len(payloads)
    interval = 1.0 / target_rps if target_rps > 0 else 0.0
    clients = max(1, min(clients, total or 1))
    counter = itertools.count()
    counter_lock = threading.Lock()
    merge_lock = threading.Lock()
    hist = LatencyHistogram()
    codes: dict[str, int] = {}
    errors = 0
    late = 0
    # small lead so request 0 is not already behind schedule by the time
    # the worker threads have spun up
    start = time.perf_counter() + 0.05

    def worker() -> None:
        nonlocal errors, late
        local_hist = LatencyHistogram()
        local_codes: dict[str, int] = {}
        local_errors = 0
        local_late = 0
        client = PdpClient(host, port, timeout=timeout, retry=RetryPolicy())
        try:
            client.connect()
            while True:
                with counter_lock:
                    index = next(counter)
                if index >= total:
                    break
                intended = start + index * interval
                lag = intended - time.perf_counter()
                if lag > 0:
                    time.sleep(lag)
                else:
                    local_late += 1
                try:
                    response = client.request(payloads[index])
                    code = response.get("code", "INTERNAL")
                except Exception:
                    local_errors += 1
                    continue
                # the coordinated-omission fix: latency runs from the
                # *intended* send time, so client-side schedule slip is
                # charged to the server that caused it
                local_hist.record((time.perf_counter() - intended) * 1000.0)
                local_codes[code] = local_codes.get(code, 0) + 1
        finally:
            client.close()
        with merge_lock:
            hist.merge(local_hist)
            errors += local_errors
            late += local_late
            for code, count in local_codes.items():
                codes[code] = codes.get(code, 0) + count

    threads = [
        threading.Thread(target=worker, name=f"pdp-open-load-{i}", daemon=True)
        for i in range(clients)
    ]
    begun = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return {
        "scheduled": total,
        "seconds": time.perf_counter() - begun,
        "errors": errors,
        "late_sends": late,
        "codes": codes,
        "histogram": hist.to_dict(),
    }


def run_load_open(
    host: str,
    port: int,
    payloads: list[dict],
    target_rps: float,
    clients: int = 4,
    timeout: float = 30.0,
    processes: int = 1,
) -> OpenLoadReport:
    """Drive ``payloads`` at ``target_rps`` on an open-loop schedule.

    Request *i* is intended at ``t0 + i/target_rps``; when the driver
    falls behind it sends immediately but still measures latency from
    the intended time (no coordinated omission).  ``clients`` bounds the
    in-flight requests per driver process; ``processes > 1`` fans the
    schedule out over that many *driver processes* (spawn context, each
    taking an interleaved payload shard at ``target_rps/processes``) so
    one GIL cannot cap the offered load when benchmarking a multi-worker
    fleet.  A very large ``target_rps`` degenerates into a max-rate
    capacity probe.  Returns the merged :class:`OpenLoadReport`.
    """
    if target_rps <= 0:
        raise ValueError(f"target_rps must be positive, got {target_rps!r}")
    processes = max(1, min(processes, len(payloads) or 1))
    if processes == 1:
        raws = [
            _open_load_shard((host, port, payloads, target_rps, clients, timeout))
        ]
    else:
        shards = [payloads[i::processes] for i in range(processes)]
        rate = target_rps / processes
        tasks = [
            (host, port, shard, rate, clients, timeout)
            for shard in shards
            if shard
        ]
        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(
            max_workers=len(tasks), mp_context=context
        ) as pool:
            raws = list(pool.map(_open_load_shard, tasks))
    report = OpenLoadReport(target_rps=target_rps)
    for raw in raws:
        report.scheduled += raw["scheduled"]
        report.errors += raw["errors"]
        report.late_sends += raw["late_sends"]
        report.seconds = max(report.seconds, raw["seconds"])
        for code, count in raw["codes"].items():
            report.codes[code] = report.codes.get(code, 0) + count
        report.histogram.merge(LatencyHistogram.from_dict(raw["histogram"]))
    report.completed = report.histogram.count
    return report


def saturation_sweep(
    host: str,
    port: int,
    payloads: list[dict],
    rates: list[float],
    clients: int = 4,
    timeout: float = 30.0,
    processes: int = 1,
) -> list[OpenLoadReport]:
    """Step an open-loop rate ladder; one :class:`OpenLoadReport` per rung.

    Each rung replays the same ``payloads`` at the next target rate; the
    knee is visible where ``achieved_rps`` stops tracking ``target_rps``
    and the intended-time percentiles blow up.
    """
    return [
        run_load_open(
            host, port, payloads, rate,
            clients=clients, timeout=timeout, processes=processes,
        )
        for rate in rates
    ]
