"""A load driver replaying workload traffic against a live PDP server.

Feed it decision payloads — typically
:func:`repro.workload.traces.decision_payloads` over a synthetic audit
log from the workload generator — and it partitions them across N
client threads, each with its own blocking :class:`PdpClient`
connection, and measures what the server actually did: throughput,
latency percentiles, and the per-code outcome counts (``OVERLOADED``
shedding included — shed responses are outcomes, not errors).  The E18
benchmark and ``repro serve --load`` both sit on this.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field

from repro.obs.trace import format_traceparent, new_span_id, new_trace_id
from repro.serve.client import PdpClient, RetryPolicy


def percentile(samples: list[float], fraction: float) -> float:
    """The ``fraction`` quantile (nearest-rank) of ``samples``; 0 if empty."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = math.ceil(fraction * len(ordered))
    return ordered[min(len(ordered) - 1, max(0, rank - 1))]


@dataclass
class LoadReport:
    """What one load run did, ready for the benchmark JSON record."""

    requests: int = 0
    ok: int = 0
    denied: int = 0
    shed: int = 0
    errors: int = 0
    seconds: float = 0.0
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    codes: dict = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Completed requests per second."""
        return self.requests / self.seconds if self.seconds > 0 else 0.0

    def summary(self) -> dict:
        """JSON-ready flattening of the report."""
        return {
            "requests": self.requests,
            "ok": self.ok,
            "denied": self.denied,
            "shed": self.shed,
            "errors": self.errors,
            "seconds": round(self.seconds, 6),
            "throughput_rps": round(self.throughput, 2),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "codes": dict(sorted(self.codes.items())),
        }


def run_load(
    host: str,
    port: int,
    payloads: list[dict],
    clients: int = 4,
    timeout: float = 30.0,
    trace_every: int = 0,
) -> LoadReport:
    """Replay ``payloads`` against ``host:port`` with ``clients`` threads.

    Payload *i* goes to client ``i % clients``, so a single-client run
    preserves the original order exactly (the E18 identity phase depends
    on that).  ``trace_every=N`` stamps every N-th decision payload with
    a fresh client-side ``traceparent`` (``trace`` field), so a load run
    leaves linkable traces behind for ``repro trace``; 0 stamps nothing.
    Returns the merged :class:`LoadReport`.
    """
    clients = max(1, min(clients, len(payloads) or 1))
    shards: list[list[dict]] = [[] for _ in range(clients)]
    for index, payload in enumerate(payloads):
        if trace_every > 0 and index % trace_every == 0 and (
            payload.get("op", "decide") in ("decide", "query")
        ):
            payload = dict(payload)
            payload["trace"] = format_traceparent(new_trace_id(), new_span_id())
        shards[index % clients].append(payload)

    lock = threading.Lock()
    latencies: list[float] = []
    report = LoadReport()

    def worker(shard: list[dict]) -> None:
        local_lat: list[float] = []
        local_codes: dict[str, int] = {}
        local_errors = 0
        client = PdpClient(host, port, timeout=timeout, retry=RetryPolicy())
        try:
            client.connect()
            for payload in shard:
                begun = time.perf_counter()
                try:
                    response = client.request(payload)
                    code = response.get("code", "INTERNAL")
                except Exception:
                    local_errors += 1
                    continue
                local_lat.append((time.perf_counter() - begun) * 1000.0)
                local_codes[code] = local_codes.get(code, 0) + 1
        finally:
            client.close()
        with lock:
            latencies.extend(local_lat)
            report.errors += local_errors
            for code, count in local_codes.items():
                report.codes[code] = report.codes.get(code, 0) + count

    threads = [
        threading.Thread(target=worker, args=(shard,), name=f"pdp-load-{i}")
        for i, shard in enumerate(shards)
        if shard
    ]
    begun = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.seconds = time.perf_counter() - begun
    report.requests = len(latencies)
    report.ok = report.codes.get("OK", 0)
    report.denied = report.codes.get("DENIED", 0)
    report.shed = report.codes.get("OVERLOADED", 0)
    report.p50_ms = percentile(latencies, 0.50)
    report.p99_ms = percentile(latencies, 0.99)
    return report
