"""Secondary index structures for :class:`~repro.sqlmini.table.Table`.

Two index kinds cover the predicate shapes the optimizer routes:

- :class:`HashIndex` — key → sorted row positions; serves equality and
  ``IN`` seeks in O(1) per key.
- :class:`OrderedIndex` — a sorted list of ``(key, position)`` pairs
  maintained with :mod:`bisect`; serves range predicates (``<``, ``<=``,
  ``>``, ``>=``, ``BETWEEN``) and equality in O(log n + matches).

Both kinds exclude NULL keys entirely: no SQL comparison predicate ever
matches NULL, so indexed seeks and filtered scans agree by construction.
Seek results are always *ascending row positions*, which is scan order —
an index seek therefore yields rows in exactly the order a filtered full
scan would, keeping planned execution byte-identical to the reference
executor.

Keys within one index are homogeneous because column values pass through
:func:`~repro.sqlmini.types.coerce` before storage.  Cross-family probes
(e.g. probing an INTEGER index with ``True``, which Python dicts would
conflate with ``1``) are rejected by the :func:`family_of` guard at the
call sites, matching ``compare()``'s "incomparable → unknown" semantics.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort

from repro.sqlmini.types import SqlType, Value

#: Index kinds understood by CREATE INDEX and the optimizer.
INDEX_KINDS = ("hash", "ordered")

_AFTER_ANY_POSITION = float("inf")


def family_of(value: Value) -> str | None:
    """The comparison family of a runtime value (None for NULL).

    Mirrors :func:`repro.sqlmini.types.compare`: bool is its own family
    (``True`` never equals ``1`` in SQL even though Python dicts say so),
    int and float share the number family, str is text.
    """
    if value is None:
        return None
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "number"
    if isinstance(value, str):
        return "text"
    return None


def family_of_type(sql_type: SqlType) -> str:
    """The comparison family every stored value of ``sql_type`` has."""
    if sql_type in (SqlType.INTEGER, SqlType.REAL):
        return "number"
    if sql_type is SqlType.TEXT:
        return "text"
    return "bool"


class HashIndex:
    """Equality index: key → ascending row positions."""

    kind = "hash"
    __slots__ = ("_buckets",)

    def __init__(self) -> None:
        self._buckets: dict[Value, list[int]] = {}

    def add(self, key: Value, position: int) -> None:
        """Record that the row at ``position`` has ``key`` (NULL ignored)."""
        if key is None:
            return
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = [position]
        elif position > bucket[-1]:
            bucket.append(position)  # the common append-at-end insert
        else:
            insort(bucket, position)

    def remove(self, key: Value, position: int) -> None:
        """Forget the ``(key, position)`` entry, if present."""
        if key is None:
            return
        bucket = self._buckets.get(key)
        if not bucket:
            return
        at = bisect_left(bucket, position)
        if at < len(bucket) and bucket[at] == position:
            bucket.pop(at)
            if not bucket:
                del self._buckets[key]

    def bulk_add(self, items) -> None:
        """Load many ``(key, position)`` pairs (backfill/rebuild path)."""
        for key, position in items:
            self.add(key, position)

    def seek(self, key: Value) -> list[int]:
        """Ascending positions whose column equals ``key`` (NULL → none).

        Callers must not mutate the returned list.
        """
        if key is None:
            return []
        return self._buckets.get(key, [])

    def seek_many(self, keys: tuple[Value, ...]) -> list[int]:
        """Ascending positions matching any key (an ``IN`` seek)."""
        merged: set[int] = set()
        for key in keys:
            if key is not None:
                merged.update(self._buckets.get(key, ()))
        return sorted(merged)

    def clear(self) -> None:
        """Drop every entry (rebuilds reuse the same index object)."""
        self._buckets.clear()

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())


class OrderedIndex:
    """Range index: sorted ``(key, position)`` pairs, bisect-searched."""

    kind = "ordered"
    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: list[tuple[Value, int]] = []

    def add(self, key: Value, position: int) -> None:
        """Record that the row at ``position`` has ``key`` (NULL ignored)."""
        if key is None:
            return
        insort(self._entries, (key, position))

    def remove(self, key: Value, position: int) -> None:
        """Forget the ``(key, position)`` entry, if present."""
        if key is None:
            return
        at = bisect_left(self._entries, (key, position))
        if at < len(self._entries) and self._entries[at] == (key, position):
            self._entries.pop(at)

    def bulk_add(self, items) -> None:
        """Load many ``(key, position)`` pairs, sorting once.

        Per-pair ``insort`` is O(n) in list shifts; a backfill over a
        large table would go quadratic, so bulk loads extend-then-sort.
        """
        self._entries.extend(
            (key, position) for key, position in items if key is not None
        )
        self._entries.sort()

    def seek(self, key: Value) -> list[int]:
        """Ascending positions whose column equals ``key``."""
        return self.seek_range(key, True, key, True)

    def seek_range(
        self,
        low: Value,
        low_inclusive: bool,
        high: Value,
        high_inclusive: bool,
    ) -> list[int]:
        """Ascending positions with ``low <op> column <op> high``.

        A ``None`` bound means unbounded on that side.  Entries never hold
        NULL keys, so the slice is purely key-ordered.
        """
        entries = self._entries
        if low is None:
            lo = 0
        elif low_inclusive:
            lo = bisect_left(entries, (low,))
        else:
            lo = bisect_right(entries, (low, _AFTER_ANY_POSITION))
        if high is None:
            hi = len(entries)
        elif high_inclusive:
            hi = bisect_right(entries, (high, _AFTER_ANY_POSITION))
        else:
            hi = bisect_left(entries, (high,))
        return sorted(position for _, position in entries[lo:hi])

    def clear(self) -> None:
        """Drop every entry (rebuilds reuse the same index object)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


Index = HashIndex | OrderedIndex


def make_index(kind: str) -> Index:
    """Instantiate an index of ``kind`` (``hash`` or ``ordered``)."""
    if kind == "hash":
        return HashIndex()
    if kind == "ordered":
        return OrderedIndex()
    raise ValueError(f"unknown index kind {kind!r} (expected one of {INDEX_KINDS})")
