"""Reference (unoptimized) query execution for differential testing.

This is the pre-planner execution strategy preserved verbatim: nested-loop
joins over dict environments, WHERE evaluated against every surviving row
combination, no indexes, no pushdown, no compilation.  It defines the
*semantics* the planned executor must match — the differential test suite
asserts that :class:`~repro.sqlmini.executor.Executor` and
:class:`ReferenceExecutor` return byte-identical results for any query
with an ORDER BY (and multiset-identical results otherwise, where SQL
leaves row order unspecified and the optimizer may reorder joins), and
the E22 benchmark uses it as the full-scan baseline.

Both executors bind through :func:`repro.sqlmini.planner.bind_select`, so
they share name resolution and validation; only execution differs.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.sqlmini import ast
from repro.sqlmini.aggregates import Accumulator, make_accumulator
from repro.sqlmini.executor import ResultSet, _invert_sort_key
from repro.sqlmini.expressions import evaluate, to_bool
from repro.sqlmini.planner import BoundSelect, CatalogLike, bind_select
from repro.sqlmini.types import Value, sort_key


class ReferenceExecutor:
    """Executes SELECT/UNION ALL the slow, obviously-correct way."""

    def __init__(self, catalog: CatalogLike) -> None:
        self._catalog = catalog

    def execute(self, statement: ast.Statement) -> ResultSet:
        """Run one query statement (SELECT or UNION ALL)."""
        if isinstance(statement, ast.Select):
            return self.execute_select(statement)
        if isinstance(statement, ast.UnionAll):
            partials = [self.execute_select(select) for select in statement.selects]
            rows = tuple(row for partial in partials for row in partial.rows)
            return ResultSet(columns=partials[0].columns, rows=rows)
        raise TypeError(f"reference executor only runs queries, got {statement!r}")

    def execute_select(self, select: ast.Select) -> ResultSet:
        """Bind and run one SELECT by brute-force enumeration."""
        bound = bind_select(select, self._catalog)
        if bound.aggregate_mode:
            output_rows = self._grouped_rows(bound)
        else:
            output_rows = self._plain_rows(bound)
        if select.distinct:
            seen: dict[tuple[Value, ...], None] = {}
            deduped: list[tuple[tuple[Value, ...], tuple]] = []
            for row, key in output_rows:
                if row not in seen:
                    seen[row] = None
                    deduped.append((row, key))
            output_rows = deduped
        if select.order_by:
            output_rows.sort(key=lambda pair: pair[1])
        rows = [row for row, _ in output_rows]
        if select.limit is not None:
            rows = rows[: select.limit]
        return ResultSet(columns=bound.output_names, rows=tuple(rows))

    # ------------------------------------------------------------------
    # nested-loop input
    # ------------------------------------------------------------------
    def _input_envs(self, bound: BoundSelect) -> Iterator[dict[str, Value]]:
        """Yield joined-row environments passing all join conditions.

        Each join condition is checked as soon as its table's row is
        fixed; later tables are padded with NULLs for the check (the
        binder guarantees conditions never reference them).
        """

        def matches(bound_table, chosen: list[tuple[Value, ...]], depth: int) -> bool:
            partial = bound.env_for(
                tuple(chosen)
                + tuple(
                    (None,) * len(later.table.schema.columns)
                    for later in bound.tables[depth + 1 :]
                )
            )
            return to_bool(evaluate(bound_table.condition, partial)) is True

        def combos(depth: int, chosen: list[tuple[Value, ...]]) -> Iterator[dict[str, Value]]:
            if depth == len(bound.tables):
                yield bound.env_for(tuple(chosen))
                return
            bound_table = bound.tables[depth]
            matched_any = False
            for row in bound_table.table.scan():
                chosen.append(row)
                if bound_table.condition is not None and not matches(
                    bound_table, chosen, depth
                ):
                    chosen.pop()
                    continue
                matched_any = True
                yield from combos(depth + 1, chosen)
                chosen.pop()
            if bound_table.outer and not matched_any:
                # LEFT JOIN null extension: keep the left rows alive
                chosen.append((None,) * len(bound_table.table.schema.columns))
                yield from combos(depth + 1, chosen)
                chosen.pop()

        return combos(0, [])

    def _filtered_envs(self, bound: BoundSelect) -> Iterator[dict[str, Value]]:
        where = bound.where
        for env in self._input_envs(bound):
            if where is None or to_bool(evaluate(where, env)) is True:
                yield env

    # ------------------------------------------------------------------
    # projection
    # ------------------------------------------------------------------
    def _plain_rows(
        self, bound: BoundSelect
    ) -> list[tuple[tuple[Value, ...], tuple]]:
        results: list[tuple[tuple[Value, ...], tuple]] = []
        aliases = {
            item.alias: item.expr
            for item in bound.items
            if item.alias and not isinstance(item.expr, ast.Star)
        }
        for env in self._filtered_envs(bound):
            values: list[Value] = []
            for item in bound.items:
                if isinstance(item.expr, ast.Star):
                    values.extend(env[f"{alias}.{name}"] for alias, name in bound.visible)
                else:
                    values.append(evaluate(item.expr, env))
            order_env = dict(env)
            for alias, expr in aliases.items():
                order_env[alias] = evaluate(expr, env)
            key = self._order_key(bound, order_env, None)
            results.append((tuple(values), key))
        return results

    def _grouped_rows(
        self, bound: BoundSelect
    ) -> list[tuple[tuple[Value, ...], tuple]]:
        group_exprs = bound.group_by
        groups: dict[tuple[Value, ...], list[Accumulator]] = {}
        for env in self._filtered_envs(bound):
            key = tuple(evaluate(expr, env) for expr in group_exprs)
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = [make_accumulator(call) for call in bound.aggregates]
                groups[key] = accumulators
            for call, accumulator in zip(bound.aggregates, accumulators):
                accumulator.add(self._aggregate_input(call, env))
        if not group_exprs and not groups:
            # global aggregate over zero rows still yields one output row
            groups[()] = [make_accumulator(call) for call in bound.aggregates]
        results: list[tuple[tuple[Value, ...], tuple]] = []
        for key, accumulators in groups.items():
            replacements: dict[ast.Expression, Value] = {}
            for expr, value in zip(group_exprs, key):
                replacements[expr] = value
            for call, accumulator in zip(bound.aggregates, accumulators):
                replacements[call] = accumulator.result()
            if bound.having is not None:
                if to_bool(evaluate(bound.having, {}, replacements)) is not True:
                    continue
            values = tuple(
                evaluate(item.expr, {}, replacements) for item in bound.items
            )
            alias_env = {
                item.alias: value
                for item, value in zip(bound.items, values)
                if item.alias
            }
            order_key = self._order_key(bound, alias_env, replacements)
            results.append((values, order_key))
        return results

    @staticmethod
    def _aggregate_input(call: ast.FuncCall, env: dict[str, Value]) -> Value:
        if len(call.args) == 1 and isinstance(call.args[0], ast.Star):
            return 1  # COUNT(*): any non-informative marker
        return evaluate(call.args[0], env)

    @staticmethod
    def _order_key(
        bound: BoundSelect,
        env: dict[str, Value],
        replacements: dict[ast.Expression, Value] | None,
    ) -> tuple:
        key: list[tuple] = []
        for order in bound.order_by:
            value = evaluate(order.expr, env, replacements)
            base = sort_key(value)
            if not order.ascending:
                base = _invert_sort_key(base)
            key.append(base)
        return tuple(key)
