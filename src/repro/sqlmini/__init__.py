"""sqlmini — the in-memory relational substrate.

The paper's PRIMA instantiation sits on DB2 plus the Hippocratic Database
middleware; this package is the offline stand-in.  It provides typed
in-memory tables, a SQL subset (SELECT with WHERE / INNER JOIN / GROUP BY /
HAVING / ORDER BY / LIMIT / DISTINCT / UNION ALL, plus CREATE TABLE,
INSERT, UPDATE, DELETE), aggregates including ``COUNT(DISTINCT …)``, and
read-only views — everything Algorithm 5's ``dataAnalysis`` query shape and
the HDB middleware need.

Public surface: :class:`Database`, :class:`ResultSet`, the schema types,
and :func:`parse` for tooling that wants raw ASTs.
"""

from repro.sqlmini.database import Database
from repro.sqlmini.errors import (
    SqlCatalogError,
    SqlError,
    SqlExecutionError,
    SqlLexError,
    SqlParseError,
    SqlPlanError,
    SqlTypeError,
)
from repro.sqlmini.executor import ResultSet
from repro.sqlmini.parser import parse, parse_expression
from repro.sqlmini.schema import Column, TableSchema
from repro.sqlmini.table import Table, ViewTable
from repro.sqlmini.types import SqlType

__all__ = [
    "Column",
    "Database",
    "ResultSet",
    "SqlCatalogError",
    "SqlError",
    "SqlExecutionError",
    "SqlLexError",
    "SqlParseError",
    "SqlPlanError",
    "SqlType",
    "SqlTypeError",
    "Table",
    "TableSchema",
    "ViewTable",
    "parse",
    "parse_expression",
]
