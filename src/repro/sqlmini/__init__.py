"""sqlmini — the in-memory relational substrate.

The paper's PRIMA instantiation sits on DB2 plus the Hippocratic Database
middleware; this package is the offline stand-in.  It provides typed
in-memory tables, a SQL subset (SELECT with WHERE / INNER JOIN / GROUP BY /
HAVING / ORDER BY / LIMIT / DISTINCT / UNION ALL, plus CREATE TABLE,
INSERT, UPDATE, DELETE), aggregates including ``COUNT(DISTINCT …)``, and
read-only views — everything Algorithm 5's ``dataAnalysis`` query shape and
the HDB middleware need.

Queries run through a plan-DAG pipeline — parse, bind (canonicalizing
names), lower to a logical plan, optimize (predicate pushdown, secondary
index routing, join reordering) and execute compiled plans.  ``CREATE
[HASH|ORDERED] INDEX`` declares secondary indexes; ``Database.explain``
renders the optimized plan.  :class:`ReferenceExecutor` preserves the
original nested-loop strategy as the differential-testing oracle.

Public surface: :class:`Database`, :class:`ResultSet`, the schema types,
:func:`parse` for tooling that wants raw ASTs, and the plan/:mod:`index
<repro.sqlmini.indexes>` helpers.
"""

from repro.sqlmini.database import Database
from repro.sqlmini.errors import (
    SqlCatalogError,
    SqlError,
    SqlExecutionError,
    SqlLexError,
    SqlParseError,
    SqlPlanError,
    SqlTypeError,
)
from repro.sqlmini.executor import ResultSet
from repro.sqlmini.indexes import HashIndex, OrderedIndex
from repro.sqlmini.optimizer import build_plan
from repro.sqlmini.parser import parse, parse_expression
from repro.sqlmini.plan import render_plan, walk_plan
from repro.sqlmini.planner import bind_select
from repro.sqlmini.reference import ReferenceExecutor
from repro.sqlmini.schema import Column, TableSchema
from repro.sqlmini.table import Table, ViewTable
from repro.sqlmini.types import SqlType

__all__ = [
    "Column",
    "Database",
    "HashIndex",
    "OrderedIndex",
    "ReferenceExecutor",
    "ResultSet",
    "SqlCatalogError",
    "SqlError",
    "SqlExecutionError",
    "SqlLexError",
    "SqlParseError",
    "SqlPlanError",
    "SqlType",
    "SqlTypeError",
    "Table",
    "TableSchema",
    "ViewTable",
    "bind_select",
    "build_plan",
    "parse",
    "parse_expression",
    "render_plan",
    "walk_plan",
]
