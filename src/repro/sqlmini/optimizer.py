"""Logical plan construction and optimization for sqlmini.

:func:`build_plan` lowers a :class:`~repro.sqlmini.planner.BoundSelect`
into a :class:`Plan` — a DAG of :mod:`repro.sqlmini.plan` nodes — applying
three rewrites:

**Predicate pushdown.**  The WHERE clause is split into its top-level
conjuncts (safe under three-valued logic: a conjunction is True iff every
conjunct is True).  Each conjunct sinks to the earliest depth at which all
referenced tables are joined; conjuncts over a single table sink all the
way into that table's access path.  Two guards keep LEFT JOIN semantics
intact: a WHERE conjunct never sinks *into* an outer-joined table's access
path (it must see the null-extended row, e.g. the ``WHERE d.code IS NULL``
anti-join), and ON-clause residuals stay at their join so they keep
deciding null extension.  Constant conjuncts stay at the top.

**Index routing.**  A pushed conjunct of sargable shape — ``col = lit``,
``col <op> lit``, ``col BETWEEN lit AND lit``, ``col IN (lits)`` — turns
the access path into an index seek when the table has a usable index
(hash for equality/IN, ordered for ranges).  Comparison families are
checked at plan time (probing an INTEGER index with a bool would conflate
``True`` with ``1`` under Python dict equality, which SQL rejects), so a
mismatched literal simply stays a filter that drops every row.  Equality
joins against a hash-indexed column become per-left-row index lookups.

**Join reordering.**  For inner-only joins over heap tables the planner
starts from the smallest estimated table and greedily prefers tables
reachable through an indexed equality join.  Reordering changes row
arrival order, so it is gated to queries whose output order carries no
contract: plain multi-table SELECTs with no ORDER BY, LIMIT, DISTINCT or
grouping.  Everything else keeps FROM order, making planned execution
byte-identical to the reference executor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sqlmini import ast
from repro.sqlmini.indexes import HashIndex, family_of, family_of_type
from repro.sqlmini.plan import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    IndexLookupNode,
    IndexSeekNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SeekEq,
    SeekIn,
    SeekRange,
    SeekSpec,
    SortNode,
)
from repro.sqlmini.planner import BoundSelect, BoundTable
from repro.sqlmini.table import Table


@dataclass(frozen=True)
class Plan:
    """An optimized plan plus what the executor needs to run it."""

    root: PlanNode
    #: the subtree below Aggregate/Project — yields flat joined rows
    input_root: PlanNode
    bound: BoundSelect
    #: tables in execution order (== FROM order unless reordered)
    exec_tables: tuple[BoundTable, ...]
    #: ``alias.column`` -> slot in the flat row tuple, in execution order
    layout: dict[str, int]
    reordered: bool
    #: conjuncts pushed below their syntactic position
    pushed: int


def split_conjuncts(expr: ast.Expression | None) -> list[ast.Expression]:
    """Flatten a conjunction into its top-level conjuncts, in order."""
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def _ref_aliases(expr: ast.Expression) -> frozenset[str]:
    """The table aliases an expression references (canonical refs only)."""
    return frozenset(
        ref.table for ref in ast.collect_columns(expr) if ref.table is not None
    )


def _split_eq(expr: ast.Expression):
    """``(column_ref, other_side)`` for an equality, else ``(None, None)``."""
    if isinstance(expr, ast.BinaryOp) and expr.op == "=":
        return (expr.left, expr.right)
    return (None, None)


def _sargable(
    expr: ast.Expression, alias: str, table: Table
) -> tuple[SeekSpec, str, object] | None:
    """Match ``expr`` to an index seek on ``table``; None when not sargable.

    Returns ``(spec, index_kind, index)``.  Literal values whose comparison
    family differs from the column's declared family are rejected here —
    the predicate stays a filter and (correctly) matches nothing.
    """
    if isinstance(expr, ast.BinaryOp) and expr.op in ("=", "<", "<=", ">", ">="):
        op = expr.op
        column_ref, literal = expr.left, expr.right
        if isinstance(column_ref, ast.Literal) and isinstance(literal, ast.ColumnRef):
            column_ref, literal = literal, column_ref
            op = {"=": "=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
        if not (
            isinstance(column_ref, ast.ColumnRef)
            and column_ref.table == alias
            and isinstance(literal, ast.Literal)
        ):
            return None
        column = column_ref.name
        value = literal.value
        if value is None:
            return None
        if family_of(value) != family_of_type(table.schema.sql_type_of(column)):
            return None
        if op == "=":
            index = table.equality_index(column)
            if index is None:
                return None
            return SeekEq(column, value), index.kind, index
        index = table.range_index(column)
        if index is None:
            return None
        if op == "<":
            spec = SeekRange(column, high=value, high_inclusive=False)
        elif op == "<=":
            spec = SeekRange(column, high=value)
        elif op == ">":
            spec = SeekRange(column, low=value, low_inclusive=False)
        else:
            spec = SeekRange(column, low=value)
        return spec, "ordered", index
    if isinstance(expr, ast.Between) and not expr.negated:
        if not (
            isinstance(expr.operand, ast.ColumnRef)
            and expr.operand.table == alias
            and isinstance(expr.low, ast.Literal)
            and isinstance(expr.high, ast.Literal)
        ):
            return None
        column = expr.operand.name
        low, high = expr.low.value, expr.high.value
        family = family_of_type(table.schema.sql_type_of(column))
        if low is None or high is None:
            return None
        if family_of(low) != family or family_of(high) != family:
            return None
        index = table.range_index(column)
        if index is None:
            return None
        return SeekRange(column, low=low, high=high), "ordered", index
    if isinstance(expr, ast.InList) and not expr.negated:
        if not (
            isinstance(expr.operand, ast.ColumnRef)
            and expr.operand.table == alias
            and all(isinstance(option, ast.Literal) for option in expr.options)
        ):
            return None
        column = expr.operand.name
        index = table.equality_index(column)
        if not isinstance(index, HashIndex):
            return None
        family = family_of_type(table.schema.sql_type_of(column))
        # NULL and family-mismatched options can never compare equal; the
        # remaining keys reproduce the filter's accepted set exactly
        values = tuple(
            option.value
            for option in expr.options
            if option.value is not None and family_of(option.value) == family
        )
        return SeekIn(column, values), "hash", index
    return None


class _Builder:
    def __init__(self, bound: BoundSelect) -> None:
        self.bound = bound
        self.pushed = 0

    # ------------------------------------------------------------------
    # join order
    # ------------------------------------------------------------------
    def choose_order(self) -> tuple[tuple[BoundTable, ...], bool]:
        bound = self.bound
        tables = bound.tables
        select = bound.select
        reorder_safe = (
            len(tables) > 1
            and not any(table.outer for table in tables)
            and not bound.order_by
            and select.limit is None
            and not select.distinct
            and not bound.aggregate_mode
            and all(isinstance(table.table, Table) for table in tables)
        )
        if not reorder_safe:
            return tables, False
        pool = [
            conjunct
            for table in tables[1:]
            for conjunct in split_conjuncts(table.condition)
        ] + split_conjuncts(bound.where)
        remaining = list(tables)
        chosen: list[BoundTable] = []
        chosen_aliases: set[str] = set()

        def estimate(table: BoundTable) -> int:
            return len(table.table)

        def link_tier(candidate: BoundTable) -> int:
            tier = 2
            for conjunct in pool:
                aliases = _ref_aliases(conjunct)
                if candidate.alias not in aliases:
                    continue
                if not aliases <= chosen_aliases | {candidate.alias}:
                    continue
                tier = min(tier, 1)
                left, right = _split_eq(conjunct)
                for side, other in ((left, right), (right, left)):
                    if (
                        isinstance(side, ast.ColumnRef)
                        and side.table == candidate.alias
                        and candidate.table.equality_index(side.name) is not None
                        and other is not None
                        and _ref_aliases(other) <= chosen_aliases
                        and _ref_aliases(other)
                    ):
                        return 0
            return tier

        first = min(
            range(len(remaining)), key=lambda i: (estimate(remaining[i]), i)
        )
        chosen.append(remaining.pop(first))
        chosen_aliases.add(chosen[0].alias)
        while remaining:
            best = min(
                range(len(remaining)),
                key=lambda i: (link_tier(remaining[i]), estimate(remaining[i]), i),
            )
            chosen.append(remaining.pop(best))
            chosen_aliases.add(chosen[-1].alias)
        order = tuple(chosen)
        return order, order != tables

    # ------------------------------------------------------------------
    # access paths
    # ------------------------------------------------------------------
    def access_path(
        self, table: BoundTable, conjuncts: list[ast.Expression]
    ) -> PlanNode:
        """Leaf node for one table, with pushed filters and index seeks."""
        storage = table.table
        seek_at = -1
        seek = None
        if isinstance(storage, Table):
            for position, conjunct in enumerate(conjuncts):
                seek = _sargable(conjunct, table.alias, storage)
                if seek is not None:
                    seek_at = position
                    break
        node: PlanNode
        if seek is not None:
            spec, index_kind, index = seek
            node = IndexSeekNode(
                alias=table.alias,
                table_name=storage.name,
                table=storage,
                index_kind=index_kind,
                spec=spec,
                index=index,
            )
            self.pushed += 1
        else:
            estimated = len(storage) if isinstance(storage, Table) else None
            node = ScanNode(
                alias=table.alias,
                table_name=storage.name,
                table=storage,
                estimated_rows=estimated,
            )
        for position, conjunct in enumerate(conjuncts):
            if position == seek_at:
                continue
            node = FilterNode(node, conjunct, pushed=True)
            self.pushed += 1
        return node

    # ------------------------------------------------------------------
    # the full plan
    # ------------------------------------------------------------------
    def build(self) -> Plan:
        bound = self.bound
        select = bound.select
        exec_tables, reordered = self.choose_order()
        depth_of = {table.alias: depth for depth, table in enumerate(exec_tables)}
        top = len(exec_tables) - 1

        access: list[list[ast.Expression]] = [[] for _ in exec_tables]
        residual: list[list[ast.Expression]] = [[] for _ in exec_tables]
        post: list[list[ast.Expression]] = [[] for _ in exec_tables]

        if reordered:
            # inner-only: ON conditions and WHERE are one conjunct pool
            pool = [
                conjunct
                for table in bound.tables[1:]
                for conjunct in split_conjuncts(table.condition)
            ] + split_conjuncts(bound.where)
            for conjunct in pool:
                aliases = _ref_aliases(conjunct)
                if not aliases:
                    post[top].append(conjunct)
                    continue
                depth = max(depth_of[alias] for alias in aliases)
                if aliases == {exec_tables[depth].alias}:
                    access[depth].append(conjunct)
                elif depth == 0:
                    post[0].append(conjunct)
                else:
                    residual[depth].append(conjunct)
        else:
            for depth, table in enumerate(exec_tables[1:], start=1):
                for conjunct in split_conjuncts(table.condition):
                    aliases = _ref_aliases(conjunct)
                    if aliases <= {table.alias}:
                        # single-table (or constant) ON conjunct: filtering
                        # the access path preserves null extension — a left
                        # row matches iff some right row passes the whole
                        # ON condition, pushed part included
                        access[depth].append(conjunct)
                        if aliases:
                            self.pushed += 1
                    else:
                        residual[depth].append(conjunct)
            for conjunct in split_conjuncts(bound.where):
                aliases = _ref_aliases(conjunct)
                if not aliases:
                    post[top].append(conjunct)
                    continue
                depth = max(depth_of[alias] for alias in aliases)
                table = exec_tables[depth]
                if aliases == {table.alias} and not table.outer:
                    access[depth].append(conjunct)
                else:
                    post[depth].append(conjunct)
                if depth < top or aliases == {table.alias} and not table.outer:
                    self.pushed += 1

        node = self.access_path(exec_tables[0], access[0])
        for conjunct in post[0]:
            node = FilterNode(node, conjunct, pushed=len(exec_tables) > 1)
        for depth in range(1, len(exec_tables)):
            table = exec_tables[depth]
            right, extra_residual = self._right_side(
                table, access[depth], residual[depth]
            )
            node = JoinNode(
                left=node,
                right=right,
                residual=tuple(extra_residual),
                outer=table.outer,
            )
            for conjunct in post[depth]:
                node = FilterNode(node, conjunct, pushed=depth < top)

        layout: dict[str, int] = {}
        for table in exec_tables:
            for column in table.table.schema.columns:
                layout[f"{table.alias}.{column.name}"] = len(layout)

        root: PlanNode = node
        if bound.aggregate_mode:
            root = AggregateNode(
                root,
                group_by=bound.group_by,
                aggregates=bound.aggregates,
                having=bound.having,
            )
        root = ProjectNode(root, items=bound.items, output_names=bound.output_names)
        if select.distinct:
            root = DistinctNode(root)
        if bound.order_by:
            root = SortNode(root, order_by=bound.order_by)
        if select.limit is not None:
            root = LimitNode(root, limit=select.limit)

        return Plan(
            root=root,
            input_root=node,
            bound=bound,
            exec_tables=exec_tables,
            layout=layout,
            reordered=reordered,
            pushed=self.pushed,
        )

    def _right_side(
        self,
        table: BoundTable,
        access_conjuncts: list[ast.Expression],
        residual_conjuncts: list[ast.Expression],
    ) -> tuple[PlanNode, list[ast.Expression]]:
        """Pick lookup-join vs re-scanned access path for a joined table."""
        storage = table.table
        if isinstance(storage, Table):
            for position, conjunct in enumerate(residual_conjuncts):
                left, right = _split_eq(conjunct)
                for side, other in ((left, right), (right, left)):
                    if not (
                        isinstance(side, ast.ColumnRef) and side.table == table.alias
                    ):
                        continue
                    index = storage.equality_index(side.name)
                    if not isinstance(index, HashIndex):
                        continue
                    other_aliases = _ref_aliases(other)
                    if not other_aliases or table.alias in other_aliases:
                        continue
                    lookup = IndexLookupNode(
                        alias=table.alias,
                        table_name=storage.name,
                        table=storage,
                        column=side.name,
                        key_expr=other,
                        index=index,
                    )
                    self.pushed += 1
                    # the matched conjunct is subsumed by the hash probe;
                    # pushed access conjuncts re-join the residual, applied
                    # per candidate row
                    remaining = (
                        access_conjuncts
                        + residual_conjuncts[:position]
                        + residual_conjuncts[position + 1 :]
                    )
                    return lookup, remaining
        return self.access_path(table, access_conjuncts), residual_conjuncts


def build_plan(bound: BoundSelect) -> Plan:
    """Lower and optimize one bound SELECT into an executable plan."""
    return _Builder(bound).build()
