"""Recursive-descent parser for the sqlmini SQL dialect.

Supported statements::

    SELECT [DISTINCT] items FROM table [alias]
        [INNER JOIN table [alias] ON cond]...
        [WHERE cond] [GROUP BY exprs] [HAVING cond]
        [ORDER BY exprs [ASC|DESC]] [LIMIT n]
    SELECT ... UNION ALL SELECT ...
    CREATE TABLE name (col TYPE [NOT NULL], ...)
    CREATE [HASH|ORDERED] INDEX name ON table (column)
    INSERT INTO name [(cols)] VALUES (...), (...)
    DELETE FROM name [WHERE cond]
    UPDATE name SET col = expr [, ...] [WHERE cond]

Expression grammar (loosest to tightest): OR, AND, NOT, comparison
(``= <> != < <= > >= LIKE IN BETWEEN IS [NOT] NULL``), additive,
multiplicative, unary minus, primary.
"""

from __future__ import annotations

from repro.sqlmini import ast
from repro.sqlmini.errors import SqlParseError
from repro.sqlmini.lexer import Token, TokenType, tokenize


def parse(sql: str) -> ast.Statement:
    """Parse one SQL statement (a trailing ``;`` is tolerated)."""
    return _Parser(tokenize(sql)).parse_statement()


def parse_expression(text: str) -> ast.Expression:
    """Parse a standalone expression (used by tests and rewriters)."""
    parser = _Parser(tokenize(text))
    expr = parser.expression()
    parser.expect_eof()
    return expr


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def accept_keyword(self, *words: str) -> bool:
        if self.current.is_keyword(*words):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise SqlParseError(f"expected {word.upper()}, got {self.current.value!r}")

    def accept_punct(self, char: str) -> bool:
        token = self.current
        if token.type is TokenType.PUNCT and token.value == char:
            self.advance()
            return True
        return False

    def expect_punct(self, char: str) -> None:
        if not self.accept_punct(char):
            raise SqlParseError(f"expected {char!r}, got {self.current.value!r}")

    def expect_identifier(self, what: str = "identifier") -> str:
        token = self.current
        if token.type is TokenType.IDENTIFIER:
            self.advance()
            return token.value
        raise SqlParseError(f"expected {what}, got {token.value!r}")

    def expect_eof(self) -> None:
        self.accept_punct(";")
        if self.current.type is not TokenType.EOF:
            raise SqlParseError(f"unexpected trailing input: {self.current.value!r}")

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def parse_statement(self) -> ast.Statement:
        token = self.current
        if token.is_keyword("select"):
            statement = self.select_statement()
        elif token.is_keyword("create"):
            statement = self.create_statement()
        elif token.is_keyword("insert"):
            statement = self.insert_statement()
        elif token.is_keyword("delete"):
            statement = self.delete_statement()
        elif token.is_keyword("update"):
            statement = self.update_statement()
        else:
            raise SqlParseError(f"unsupported statement start {token.value!r}")
        self.expect_eof()
        return statement

    def select_statement(self) -> ast.Select | ast.UnionAll:
        selects = [self.select_core()]
        while self.current.is_keyword("union"):
            self.advance()
            self.expect_keyword("all")
            selects.append(self.select_core())
        if len(selects) == 1:
            return selects[0]
        return ast.UnionAll(tuple(selects))

    def select_core(self) -> ast.Select:
        self.expect_keyword("select")
        distinct = self.accept_keyword("distinct")
        items = self.select_items()
        self.expect_keyword("from")
        table = self.expect_identifier("table name")
        table_alias = self.optional_alias()
        joins = []
        while self.current.is_keyword("inner", "join", "left"):
            outer = False
            if self.accept_keyword("left"):
                self.accept_keyword("outer")
                outer = True
            else:
                self.accept_keyword("inner")
            self.expect_keyword("join")
            join_table = self.expect_identifier("join table name")
            join_alias = self.optional_alias()
            self.expect_keyword("on")
            condition = self.expression()
            joins.append(ast.JoinClause(join_table, join_alias, condition, outer))
        where = self.expression() if self.accept_keyword("where") else None
        group_by: tuple[ast.Expression, ...] = ()
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_by = tuple(self.expression_list())
        having = self.expression() if self.accept_keyword("having") else None
        order_by: list[ast.OrderItem] = []
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            while True:
                expr = self.expression()
                ascending = True
                if self.accept_keyword("desc"):
                    ascending = False
                else:
                    self.accept_keyword("asc")
                order_by.append(ast.OrderItem(expr, ascending))
                if not self.accept_punct(","):
                    break
        limit = None
        if self.accept_keyword("limit"):
            token = self.current
            if token.type is not TokenType.NUMBER or "." in token.value:
                raise SqlParseError(f"LIMIT expects an integer, got {token.value!r}")
            limit = int(token.value)
            self.advance()
        return ast.Select(
            items=tuple(items),
            table=table,
            table_alias=table_alias,
            joins=tuple(joins),
            where=where,
            group_by=group_by,
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
        )

    def optional_alias(self) -> str | None:
        if self.accept_keyword("as"):
            return self.expect_identifier("alias")
        if self.current.type is TokenType.IDENTIFIER:
            return self.advance().value
        return None

    def select_items(self) -> list[ast.SelectItem]:
        items: list[ast.SelectItem] = []
        while True:
            if self.current.type is TokenType.OPERATOR and self.current.value == "*":
                self.advance()
                items.append(ast.SelectItem(ast.Star()))
            else:
                expr = self.expression()
                alias = None
                if self.accept_keyword("as"):
                    alias = self.expect_identifier("alias")
                elif self.current.type is TokenType.IDENTIFIER:
                    alias = self.advance().value
                items.append(ast.SelectItem(expr, alias))
            if not self.accept_punct(","):
                return items

    def create_statement(self) -> ast.CreateTable | ast.CreateIndex:
        self.expect_keyword("create")
        if not self.current.is_keyword("table"):
            return self.create_index_statement()
        self.expect_keyword("table")
        table = self.expect_identifier("table name")
        self.expect_punct("(")
        columns: list[ast.ColumnDef] = []
        while True:
            name = self.expect_identifier("column name")
            type_name = self.expect_identifier("type name")
            not_null = False
            if self.accept_keyword("not"):
                self.expect_keyword("null")
                not_null = True
            columns.append(ast.ColumnDef(name, type_name, not_null))
            if not self.accept_punct(","):
                break
        self.expect_punct(")")
        return ast.CreateTable(table, tuple(columns))

    def create_index_statement(self) -> ast.CreateIndex:
        """``CREATE [HASH|ORDERED] INDEX name ON table (column)``.

        ``INDEX``/``HASH``/``ORDERED`` are contextual words, not reserved
        keywords, so columns may still use those names.
        """
        kind = "hash"
        word = self.expect_identifier("TABLE or INDEX")
        if word in ("hash", "ordered"):
            kind = word
            word = self.expect_identifier("INDEX")
        if word != "index":
            raise SqlParseError(
                f"expected TABLE, INDEX, HASH INDEX or ORDERED INDEX "
                f"after CREATE, got {word!r}"
            )
        name = self.expect_identifier("index name")
        self.expect_keyword("on")
        table = self.expect_identifier("table name")
        self.expect_punct("(")
        column = self.expect_identifier("column name")
        self.expect_punct(")")
        return ast.CreateIndex(name, table, column, kind)

    def insert_statement(self) -> ast.Insert:
        self.expect_keyword("insert")
        self.expect_keyword("into")
        table = self.expect_identifier("table name")
        columns: tuple[str, ...] = ()
        if self.accept_punct("("):
            names = [self.expect_identifier("column name")]
            while self.accept_punct(","):
                names.append(self.expect_identifier("column name"))
            self.expect_punct(")")
            columns = tuple(names)
        self.expect_keyword("values")
        rows: list[tuple[ast.Expression, ...]] = []
        while True:
            self.expect_punct("(")
            rows.append(tuple(self.expression_list()))
            self.expect_punct(")")
            if not self.accept_punct(","):
                break
        return ast.Insert(table, columns, tuple(rows))

    def delete_statement(self) -> ast.Delete:
        self.expect_keyword("delete")
        self.expect_keyword("from")
        table = self.expect_identifier("table name")
        where = self.expression() if self.accept_keyword("where") else None
        return ast.Delete(table, where)

    def update_statement(self) -> ast.Update:
        self.expect_keyword("update")
        table = self.expect_identifier("table name")
        self.expect_keyword("set")
        assignments: list[tuple[str, ast.Expression]] = []
        while True:
            column = self.expect_identifier("column name")
            token = self.current
            if token.type is not TokenType.OPERATOR or token.value != "=":
                raise SqlParseError(f"expected '=' in SET, got {token.value!r}")
            self.advance()
            assignments.append((column, self.expression()))
            if not self.accept_punct(","):
                break
        where = self.expression() if self.accept_keyword("where") else None
        return ast.Update(table, tuple(assignments), where)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def expression_list(self) -> list[ast.Expression]:
        exprs = [self.expression()]
        while self.accept_punct(","):
            exprs.append(self.expression())
        return exprs

    def expression(self) -> ast.Expression:
        return self.or_expr()

    def or_expr(self) -> ast.Expression:
        left = self.and_expr()
        while self.accept_keyword("or"):
            left = ast.BinaryOp("OR", left, self.and_expr())
        return left

    def and_expr(self) -> ast.Expression:
        left = self.not_expr()
        while self.accept_keyword("and"):
            left = ast.BinaryOp("AND", left, self.not_expr())
        return left

    def not_expr(self) -> ast.Expression:
        if self.accept_keyword("not"):
            return ast.UnaryOp("NOT", self.not_expr())
        return self.comparison()

    def comparison(self) -> ast.Expression:
        left = self.additive()
        token = self.current
        if token.type is TokenType.OPERATOR and token.value in (
            "=", "<>", "!=", "<", "<=", ">", ">=",
        ):
            op = "<>" if token.value == "!=" else token.value
            self.advance()
            return ast.BinaryOp(op, left, self.additive())
        if token.is_keyword("is"):
            self.advance()
            negated = self.accept_keyword("not")
            self.expect_keyword("null")
            return ast.IsNull(left, negated)
        negated = False
        if token.is_keyword("not"):
            # lookahead for NOT IN / NOT LIKE / NOT BETWEEN
            nxt = self._tokens[self._pos + 1]
            if nxt.is_keyword("in", "like", "between"):
                self.advance()
                negated = True
                token = self.current
        if token.is_keyword("in"):
            self.advance()
            self.expect_punct("(")
            options = tuple(self.expression_list())
            self.expect_punct(")")
            return ast.InList(left, options, negated)
        if token.is_keyword("like"):
            self.advance()
            pattern = self.additive()
            expr: ast.Expression = ast.BinaryOp("LIKE", left, pattern)
            if negated:
                expr = ast.UnaryOp("NOT", expr)
            return expr
        if token.is_keyword("between"):
            self.advance()
            low = self.additive()
            self.expect_keyword("and")
            high = self.additive()
            return ast.Between(left, low, high, negated)
        return left

    def additive(self) -> ast.Expression:
        left = self.multiplicative()
        while (
            self.current.type is TokenType.OPERATOR
            and self.current.value in ("+", "-")
        ):
            op = self.advance().value
            left = ast.BinaryOp(op, left, self.multiplicative())
        return left

    def multiplicative(self) -> ast.Expression:
        left = self.unary()
        while (
            self.current.type is TokenType.OPERATOR
            and self.current.value in ("*", "/", "%")
        ):
            op = self.advance().value
            left = ast.BinaryOp(op, left, self.unary())
        return left

    def unary(self) -> ast.Expression:
        if self.current.type is TokenType.OPERATOR and self.current.value == "-":
            self.advance()
            operand = self.unary()
            # constant-fold negative numeric literals so that printing and
            # re-parsing an AST is the identity (-1 stays Literal(-1))
            if (
                isinstance(operand, ast.Literal)
                and isinstance(operand.value, (int, float))
                and not isinstance(operand.value, bool)
            ):
                return ast.Literal(-operand.value)
            return ast.UnaryOp("-", operand)
        if self.current.type is TokenType.OPERATOR and self.current.value == "+":
            self.advance()
            return self.unary()
        return self.primary()

    def primary(self) -> ast.Expression:
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            value: ast.Value = float(token.value) if "." in token.value else int(token.value)
            return ast.Literal(value)
        if token.type is TokenType.STRING:
            self.advance()
            return ast.Literal(token.value)
        if token.is_keyword("null"):
            self.advance()
            return ast.Literal(None)
        if token.is_keyword("true"):
            self.advance()
            return ast.Literal(True)
        if token.is_keyword("false"):
            self.advance()
            return ast.Literal(False)
        if token.is_keyword("case"):
            return self.case_expression()
        if self.accept_punct("("):
            expr = self.expression()
            self.expect_punct(")")
            return expr
        if token.type is TokenType.IDENTIFIER:
            self.advance()
            if self.accept_punct("("):
                return self.function_call(token.value)
            if self.accept_punct("."):
                column = self.expect_identifier("column name")
                return ast.ColumnRef(column, table=token.value)
            return ast.ColumnRef(token.value)
        raise SqlParseError(f"unexpected token {token.value!r} in expression")

    def case_expression(self) -> ast.Case:
        """Parse a searched CASE expression (the CASE keyword is current)."""
        self.expect_keyword("case")
        whens: list[tuple[ast.Expression, ast.Expression]] = []
        while self.accept_keyword("when"):
            condition = self.expression()
            self.expect_keyword("then")
            whens.append((condition, self.expression()))
        if not whens:
            raise SqlParseError("CASE requires at least one WHEN branch")
        default = self.expression() if self.accept_keyword("else") else None
        self.expect_keyword("end")
        return ast.Case(tuple(whens), default)

    def function_call(self, name: str) -> ast.FuncCall:
        distinct = self.accept_keyword("distinct")
        if self.current.type is TokenType.OPERATOR and self.current.value == "*":
            self.advance()
            self.expect_punct(")")
            return ast.FuncCall(name.lower(), (ast.Star(),), distinct)
        if self.accept_punct(")"):
            return ast.FuncCall(name.lower(), (), distinct)
        args = tuple(self.expression_list())
        self.expect_punct(")")
        return ast.FuncCall(name.lower(), args, distinct)
