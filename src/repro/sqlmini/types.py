"""Value types for the sqlmini engine.

Values are plain Python objects — ``int``, ``float``, ``str``, ``bool`` and
``None`` — tagged at the schema level with a :class:`SqlType`.  The helpers
here centralise coercion (what Python value is acceptable for a declared
type) and SQL comparison semantics (NULL never compares equal to anything,
including itself).
"""

from __future__ import annotations

from enum import Enum
from typing import Any

from repro.sqlmini.errors import SqlTypeError

#: The Python value type used throughout the engine.
Value = Any


class SqlType(str, Enum):
    """Declared column types."""

    INTEGER = "INTEGER"
    REAL = "REAL"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"

    @classmethod
    def parse(cls, name: str) -> "SqlType":
        """Parse a type name, accepting common aliases (INT, FLOAT, ...)."""
        alias = name.strip().upper()
        mapping = {
            "INT": cls.INTEGER,
            "INTEGER": cls.INTEGER,
            "BIGINT": cls.INTEGER,
            "REAL": cls.REAL,
            "FLOAT": cls.REAL,
            "DOUBLE": cls.REAL,
            "TEXT": cls.TEXT,
            "VARCHAR": cls.TEXT,
            "STRING": cls.TEXT,
            "BOOLEAN": cls.BOOLEAN,
            "BOOL": cls.BOOLEAN,
        }
        try:
            return mapping[alias]
        except KeyError:
            raise SqlTypeError(f"unknown SQL type {name!r}") from None


def coerce(value: Value, sql_type: SqlType, column: str = "?") -> Value:
    """Coerce ``value`` into ``sql_type``; NULL passes through.

    Accepted widenings: ``int`` → REAL.  ``bool`` is *not* accepted for
    INTEGER (and vice versa) so that flag columns stay honest.  Raises
    :class:`SqlTypeError` otherwise.
    """
    if value is None:
        return None
    if sql_type is SqlType.INTEGER:
        if isinstance(value, bool) or not isinstance(value, int):
            raise SqlTypeError(f"column {column!r} expects INTEGER, got {value!r}")
        return value
    if sql_type is SqlType.REAL:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SqlTypeError(f"column {column!r} expects REAL, got {value!r}")
        return float(value)
    if sql_type is SqlType.TEXT:
        if not isinstance(value, str):
            raise SqlTypeError(f"column {column!r} expects TEXT, got {value!r}")
        return value
    if sql_type is SqlType.BOOLEAN:
        if not isinstance(value, bool):
            raise SqlTypeError(f"column {column!r} expects BOOLEAN, got {value!r}")
        return value
    raise SqlTypeError(f"unhandled SQL type {sql_type!r}")  # pragma: no cover


def compare(left: Value, right: Value) -> int | None:
    """Three-valued SQL comparison.

    Returns ``-1``/``0``/``1`` like a comparator, or ``None`` when either
    side is NULL or the values are incomparable (e.g. TEXT vs INTEGER) —
    conditions built on a ``None`` comparison evaluate to unknown, which
    filters treat as false.
    """
    if left is None or right is None:
        return None
    if isinstance(left, bool) or isinstance(right, bool):
        if isinstance(left, bool) and isinstance(right, bool):
            return (left > right) - (left < right)
        return None
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return (left > right) - (left < right)
    if isinstance(left, str) and isinstance(right, str):
        return (left > right) - (left < right)
    return None


def sort_key(value: Value) -> tuple:
    """Total-order key for ORDER BY: NULLs first, then by type family."""
    if value is None:
        return (0, 0, "")
    if isinstance(value, bool):
        return (1, int(value), "")
    if isinstance(value, (int, float)):
        return (2, value, "")
    return (3, 0, str(value))
