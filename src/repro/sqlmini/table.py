"""Row storage for the sqlmini engine.

A :class:`Table` stores rows as tuples in insertion order and optionally
maintains secondary indexes on single columns — hash indexes for equality
seeks and ordered (bisect) indexes for range seeks (see
:mod:`repro.sqlmini.indexes`).  Indexes are used by the query optimizer
for sargable predicates and by the HDB enforcement layer for fast consent
lookups; they are maintained incrementally on insert/update and rebuilt on
compacting deletes.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from repro.sqlmini.errors import SqlCatalogError
from repro.sqlmini.indexes import INDEX_KINDS, Index, make_index
from repro.sqlmini.schema import TableSchema
from repro.sqlmini.types import Value


class Table:
    """An in-memory heap table with optional secondary indexes."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: list[tuple[Value, ...]] = []
        #: column name -> index kind -> index structure
        self._indexes: dict[str, dict[str, Index]] = {}
        #: flat (column position, index) pairs, for maintenance loops
        self._maintained: list[tuple[int, Index]] = []

    @property
    def name(self) -> str:
        return self.schema.name

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, values: tuple[Value, ...] | list[Value]) -> int:
        """Validate and append one row; returns its position."""
        row = self.schema.validate_row(values)
        position = len(self._rows)
        self._rows.append(row)
        for column_position, index in self._maintained:
            index.add(row[column_position], position)
        return position

    def insert_mapping(self, mapping: dict[str, Value]) -> int:
        """Insert from a column→value mapping (missing columns → NULL)."""
        return self.insert(self.schema.row_from_mapping(mapping))

    def insert_many(self, rows: list[tuple[Value, ...]] | list[list[Value]]) -> int:
        """Insert every row; returns the number inserted."""
        for row in rows:
            self.insert(row)
        return len(rows)

    def replace_row(self, position: int, values: tuple[Value, ...] | list[Value]) -> None:
        """Replace the row at ``position`` in place, maintaining indexes.

        UPDATE uses this so positions stay stable and only the touched
        index keys move.
        """
        row = self.schema.validate_row(values)
        old = self._rows[position]
        self._rows[position] = row
        for column_position, index in self._maintained:
            old_key = old[column_position]
            new_key = row[column_position]
            if old_key != new_key:
                index.remove(old_key, position)
                index.add(new_key, position)

    def delete_where(self, predicate: Callable[[tuple[Value, ...]], bool]) -> int:
        """Delete rows matching ``predicate``; returns the count removed.

        Deletion compacts the heap, so row positions shift; indexes are
        rebuilt.  Fine for the audit-retention use case this serves.
        """
        kept = [row for row in self._rows if not predicate(row)]
        removed = len(self._rows) - len(kept)
        if removed:
            self._rows = kept
            self._rebuild_indexes()
        return removed

    def clear(self) -> None:
        """Remove every row, keeping schema and index definitions."""
        self._rows.clear()
        for _, index in self._maintained:
            index.clear()

    # ------------------------------------------------------------------
    # indexes
    # ------------------------------------------------------------------
    def create_index(self, column: str, kind: str = "hash") -> None:
        """Create an index of ``kind`` on ``column`` (no-op if present)."""
        name = column.strip().lower()
        position = self.schema.position(name)  # validates existence
        if kind not in INDEX_KINDS:
            raise SqlCatalogError(
                f"unknown index kind {kind!r} (expected one of {INDEX_KINDS})"
            )
        kinds = self._indexes.setdefault(name, {})
        if kind in kinds:
            return
        index = make_index(kind)
        index.bulk_add(
            (row[position], row_position)
            for row_position, row in enumerate(self._rows)
        )
        kinds[kind] = index
        self._maintained.append((position, index))

    def _rebuild_indexes(self) -> None:
        for column_position, index in self._maintained:
            index.clear()
            index.bulk_add(
                (row[column_position], row_position)
                for row_position, row in enumerate(self._rows)
            )

    def has_index(self, column: str, kind: str | None = None) -> bool:
        """True iff an index (of ``kind``, when given) exists on ``column``."""
        kinds = self._indexes.get(column.strip().lower())
        if not kinds:
            return False
        return kind is None or kind in kinds

    def index_specs(self) -> tuple[tuple[str, str], ...]:
        """Every ``(column, kind)`` index, in column order."""
        return tuple(
            (column, kind)
            for column, kinds in sorted(self._indexes.items())
            for kind in sorted(kinds)
        )

    def equality_index(self, column: str) -> Index | None:
        """The best index for equality seeks on ``column``, if any."""
        kinds = self._indexes.get(column.strip().lower())
        if not kinds:
            return None
        # explicit None checks: an *empty* index is falsy (len 0) but usable
        hash_index = kinds.get("hash")
        return hash_index if hash_index is not None else kinds.get("ordered")

    def range_index(self, column: str) -> Index | None:
        """The ordered index on ``column``, if any."""
        kinds = self._indexes.get(column.strip().lower())
        if not kinds:
            return None
        return kinds.get("ordered")

    def lookup(self, column: str, value: Value) -> Iterator[tuple[Value, ...]]:
        """Yield rows where ``column`` equals ``value``.

        Uses an equality-capable index when one exists, otherwise scans.
        NULL never matches (SQL equality semantics).  This legacy helper
        keeps Python ``==`` key semantics; planned queries instead go
        through the optimizer, which guards comparison families.
        """
        if value is None:
            return
        name = column.strip().lower()
        index = self.equality_index(name)
        if index is not None:
            for row_position in index.seek(value):
                yield self._rows[row_position]
            return
        position = self.schema.position(name)
        for row in self._rows:
            if row[position] == value:
                yield row

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def scan(self) -> Iterator[tuple[Value, ...]]:
        """Yield every row in insertion order."""
        return iter(self._rows)

    def row_at(self, position: int) -> tuple[Value, ...]:
        """The stored row at ``position`` (used by index seeks)."""
        return self._rows[position]

    def rows_at(self, positions: list[int]) -> Iterator[tuple[Value, ...]]:
        """Yield the rows at ``positions`` (which the caller keeps sorted)."""
        rows = self._rows
        for position in positions:
            yield rows[position]

    def rows(self) -> tuple[tuple[Value, ...], ...]:
        """Snapshot of all rows."""
        return tuple(self._rows)

    def column_values(self, column: str) -> list[Value]:
        """All values of one column, in row order."""
        position = self.schema.position(column)
        return [row[position] for row in self._rows]

    def __repr__(self) -> str:
        return f"Table(name={self.name!r}, rows={len(self._rows)})"


class ViewTable:
    """A read-only virtual table over a row-producing callable.

    This is how the federation layer exposes a consolidated audit view
    without copying rows: the callable re-enumerates the underlying logs on
    every scan, so readers always see current data.
    """

    def __init__(self, schema: TableSchema, producer: Callable[[], Iterator[tuple[Value, ...]]]) -> None:
        self.schema = schema
        self._producer = producer

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return sum(1 for _ in self._producer())

    def scan(self) -> Iterator[tuple[Value, ...]]:
        """Re-enumerate the producer (views never cache)."""
        return self._producer()

    def has_index(self, column: str, kind: str | None = None) -> bool:
        """Views carry no indexes."""
        return False

    def index_specs(self) -> tuple[tuple[str, str], ...]:
        """Views carry no indexes."""
        return ()

    def equality_index(self, column: str) -> None:
        """Views carry no indexes."""
        return None

    def range_index(self, column: str) -> None:
        """Views carry no indexes."""
        return None

    def lookup(self, column: str, value: Value) -> Iterator[tuple[Value, ...]]:
        """Scan the producer for rows where ``column`` equals ``value``."""
        if value is None:
            return
        position = self.schema.position(column)
        for row in self._producer():
            if row[position] == value:
                yield row

    def insert(self, values: object) -> int:
        """Always refuses: views are read-only."""
        raise SqlCatalogError(f"view {self.name!r} is read-only")

    def __repr__(self) -> str:
        return f"ViewTable(name={self.name!r})"
