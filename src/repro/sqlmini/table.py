"""Row storage for the sqlmini engine.

A :class:`Table` stores rows as tuples in insertion order and optionally
maintains hash indexes on single columns.  Indexes are used by the executor
for equality predicates and by the HDB enforcement layer for fast consent
lookups; they are maintained incrementally on insert/delete.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable, Iterator

from repro.sqlmini.errors import SqlCatalogError
from repro.sqlmini.schema import TableSchema
from repro.sqlmini.types import Value


class Table:
    """An in-memory heap table with optional per-column hash indexes."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: list[tuple[Value, ...]] = []
        #: column name -> value -> set of row positions
        self._indexes: dict[str, dict[Value, set[int]]] = {}

    @property
    def name(self) -> str:
        return self.schema.name

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, values: tuple[Value, ...] | list[Value]) -> int:
        """Validate and append one row; returns its position."""
        row = self.schema.validate_row(values)
        position = len(self._rows)
        self._rows.append(row)
        for column, index in self._indexes.items():
            index[row[self.schema.position(column)]].add(position)
        return position

    def insert_mapping(self, mapping: dict[str, Value]) -> int:
        """Insert from a column→value mapping (missing columns → NULL)."""
        return self.insert(self.schema.row_from_mapping(mapping))

    def insert_many(self, rows: list[tuple[Value, ...]] | list[list[Value]]) -> int:
        """Insert every row; returns the number inserted."""
        for row in rows:
            self.insert(row)
        return len(rows)

    def delete_where(self, predicate: Callable[[tuple[Value, ...]], bool]) -> int:
        """Delete rows matching ``predicate``; returns the count removed.

        Deletion compacts the heap, so row positions shift; indexes are
        rebuilt.  Fine for the audit-retention use case this serves.
        """
        kept = [row for row in self._rows if not predicate(row)]
        removed = len(self._rows) - len(kept)
        if removed:
            self._rows = kept
            for column in list(self._indexes):
                self._build_index(column)
        return removed

    def clear(self) -> None:
        """Remove every row, keeping schema and index definitions."""
        self._rows.clear()
        for index in self._indexes.values():
            index.clear()

    # ------------------------------------------------------------------
    # indexes
    # ------------------------------------------------------------------
    def create_index(self, column: str) -> None:
        """Create a hash index on ``column`` (no-op if present)."""
        name = column.strip().lower()
        self.schema.position(name)  # validates existence
        if name not in self._indexes:
            self._build_index(name)

    def _build_index(self, column: str) -> None:
        position = self.schema.position(column)
        index: dict[Value, set[int]] = defaultdict(set)
        for row_position, row in enumerate(self._rows):
            index[row[position]].add(row_position)
        self._indexes[column] = index

    def has_index(self, column: str) -> bool:
        """True iff a hash index exists on ``column``."""
        return column.strip().lower() in self._indexes

    def lookup(self, column: str, value: Value) -> Iterator[tuple[Value, ...]]:
        """Yield rows where ``column`` equals ``value``.

        Uses the hash index when one exists, otherwise scans.  NULL never
        matches (SQL equality semantics).
        """
        if value is None:
            return
        name = column.strip().lower()
        index = self._indexes.get(name)
        if index is not None:
            for row_position in sorted(index.get(value, ())):
                yield self._rows[row_position]
            return
        position = self.schema.position(name)
        for row in self._rows:
            if row[position] == value:
                yield row

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def scan(self) -> Iterator[tuple[Value, ...]]:
        """Yield every row in insertion order."""
        return iter(self._rows)

    def rows(self) -> tuple[tuple[Value, ...], ...]:
        """Snapshot of all rows."""
        return tuple(self._rows)

    def column_values(self, column: str) -> list[Value]:
        """All values of one column, in row order."""
        position = self.schema.position(column)
        return [row[position] for row in self._rows]

    def __repr__(self) -> str:
        return f"Table(name={self.name!r}, rows={len(self._rows)})"


class ViewTable:
    """A read-only virtual table over a row-producing callable.

    This is how the federation layer exposes a consolidated audit view
    without copying rows: the callable re-enumerates the underlying logs on
    every scan, so readers always see current data.
    """

    def __init__(self, schema: TableSchema, producer: Callable[[], Iterator[tuple[Value, ...]]]) -> None:
        self.schema = schema
        self._producer = producer

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return sum(1 for _ in self._producer())

    def scan(self) -> Iterator[tuple[Value, ...]]:
        """Re-enumerate the producer (views never cache)."""
        return self._producer()

    def has_index(self, column: str) -> bool:
        """Views carry no indexes."""
        return False

    def lookup(self, column: str, value: Value) -> Iterator[tuple[Value, ...]]:
        """Scan the producer for rows where ``column`` equals ``value``."""
        if value is None:
            return
        position = self.schema.position(column)
        for row in self._producer():
            if row[position] == value:
                yield row

    def insert(self, values: object) -> int:
        """Always refuses: views are read-only."""
        raise SqlCatalogError(f"view {self.name!r} is read-only")

    def __repr__(self) -> str:
        return f"ViewTable(name={self.name!r})"
