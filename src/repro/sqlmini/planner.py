"""Name resolution and validation for SELECT statements.

The planner *binds* a parsed :class:`~repro.sqlmini.ast.Select` against the
catalog: it resolves table names to storage objects, computes the visible
column namespace (qualified and bare names, detecting ambiguity), decides
whether the query is an aggregate query, and collects the aggregate calls
the executor must accumulate.  Execution itself lives in
:mod:`repro.sqlmini.executor`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.sqlmini import ast
from repro.sqlmini.errors import SqlPlanError
from repro.sqlmini.schema import TableSchema
from repro.sqlmini.types import Value


class TableLike(Protocol):
    """What the planner needs from a table (heap tables and views)."""

    schema: TableSchema

    def scan(self):
        """Yield every stored row."""
        ...  # pragma: no cover - protocol

    def __len__(self) -> int: ...  # pragma: no cover - protocol


class CatalogLike(Protocol):
    """What the planner needs from the database catalog."""

    def table(self, name: str) -> TableLike:
        """Resolve a table or view by name."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True, slots=True)
class BoundTable:
    """One table in the FROM clause, with its effective alias."""

    table: TableLike
    alias: str
    condition: ast.Expression | None  # join condition (None for the base)
    outer: bool = False  # LEFT JOIN: emit a NULL row when nothing matches


@dataclass(frozen=True)
class BoundSelect:
    """A SELECT statement bound to the catalog and validated."""

    select: ast.Select
    tables: tuple[BoundTable, ...]
    #: every visible column as (alias, column name), in namespace order
    visible: tuple[tuple[str, str], ...]
    #: bare column name -> qualified key; ambiguous names are absent
    bare_names: dict[str, str]
    aggregate_mode: bool
    #: distinct aggregate calls across select list, HAVING and ORDER BY
    aggregates: tuple[ast.FuncCall, ...]
    output_names: tuple[str, ...]

    def env_for(self, rows: tuple[tuple[Value, ...], ...]) -> dict[str, Value]:
        """Build the evaluation environment for one joined row combo.

        ``rows`` holds one storage row per bound table, in FROM order.
        """
        env: dict[str, Value] = {}
        for bound, row in zip(self.tables, rows):
            for position, column in enumerate(bound.table.schema.columns):
                env[f"{bound.alias}.{column.name}"] = row[position]
        for bare, qualified in self.bare_names.items():
            env[bare] = env[qualified]
        return env


def bind_select(select: ast.Select, catalog: CatalogLike) -> BoundSelect:
    """Resolve and validate ``select`` against ``catalog``."""
    tables: list[BoundTable] = []
    base = catalog.table(select.table)
    tables.append(BoundTable(base, select.table_alias or select.table, None))
    for join in select.joins:
        joined = catalog.table(join.table)
        tables.append(
            BoundTable(joined, join.alias or join.table, join.condition, join.outer)
        )

    aliases = [bound.alias for bound in tables]
    if len(set(aliases)) != len(aliases):
        raise SqlPlanError(f"duplicate table alias in FROM clause: {aliases}")

    visible: list[tuple[str, str]] = []
    counts: dict[str, int] = {}
    for bound in tables:
        for column in bound.table.schema.columns:
            visible.append((bound.alias, column.name))
            counts[column.name] = counts.get(column.name, 0) + 1
    bare_names = {
        name: f"{alias}.{name}"
        for alias, name in visible
        if counts[name] == 1
    }

    if select.where is not None and ast.contains_aggregate(select.where):
        raise SqlPlanError("aggregates are not allowed in WHERE (use HAVING)")
    for join in select.joins:
        if ast.contains_aggregate(join.condition):
            raise SqlPlanError("aggregates are not allowed in JOIN conditions")
    for expr in select.group_by:
        if ast.contains_aggregate(expr):
            raise SqlPlanError("aggregates are not allowed in GROUP BY")
        if isinstance(expr, ast.Star):
            raise SqlPlanError("'*' is not a valid GROUP BY expression")

    aggregates: list[ast.FuncCall] = []
    for item in select.items:
        if not isinstance(item.expr, ast.Star):
            aggregates.extend(ast.collect_aggregates(item.expr))
    if select.having is not None:
        aggregates.extend(ast.collect_aggregates(select.having))
    for order in select.order_by:
        aggregates.extend(ast.collect_aggregates(order.expr))
    # deduplicate while preserving order (frozen dataclasses hash by value)
    unique: dict[ast.FuncCall, None] = {}
    for call in aggregates:
        unique.setdefault(call, None)
    aggregate_mode = bool(select.group_by) or bool(unique)

    if select.having is not None and not aggregate_mode:
        raise SqlPlanError("HAVING requires GROUP BY or an aggregate select list")
    if aggregate_mode:
        for item in select.items:
            if isinstance(item.expr, ast.Star):
                raise SqlPlanError("'*' is not valid in an aggregated select list")
        for call in unique:
            for arg in call.args:
                if ast.contains_aggregate(arg):
                    raise SqlPlanError("nested aggregate calls are not allowed")

    output_names: list[str] = []
    for position, item in enumerate(select.items):
        if isinstance(item.expr, ast.Star):
            output_names.extend(name for _, name in visible)
        else:
            output_names.append(item.output_name(position))

    return BoundSelect(
        select=select,
        tables=tuple(tables),
        visible=tuple(visible),
        bare_names=bare_names,
        aggregate_mode=aggregate_mode,
        aggregates=tuple(unique),
        output_names=tuple(output_names),
    )
