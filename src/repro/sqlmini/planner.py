"""Name resolution, canonicalization and validation for SELECT statements.

The binder resolves a parsed :class:`~repro.sqlmini.ast.Select` against the
catalog and produces a :class:`BoundSelect` the optimizer can plan:

- table names resolve to storage objects; duplicate aliases are rejected;
- every column reference in every clause is **canonicalized** to its
  qualified ``alias.column`` spelling, so ``a`` and ``t.a`` are the same
  AST node after binding (group-scope replacement, predicate analysis and
  expression compilation all key on node equality);
- ORDER BY references to select-item aliases are intentionally left bare —
  an alias shadows any same-named column, exactly as the executor's sort
  environment resolves them;
- structural rules are enforced eagerly: aggregates are barred from
  WHERE/JOIN/GROUP BY, ``*`` from aggregated select lists, nested
  aggregates everywhere; JOIN ON conditions may not reference tables that
  have not been joined yet (forward references used to be silently
  evaluated against NULL padding, dropping rows); grouped queries may only
  project/order by grouped expressions, aggregates and literals; and
  ``SELECT DISTINCT ... ORDER BY`` requires every sort expression to
  appear in the select list.

Plan construction lives in :mod:`repro.sqlmini.optimizer`; execution in
:mod:`repro.sqlmini.executor`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.sqlmini import ast
from repro.sqlmini.errors import SqlPlanError
from repro.sqlmini.schema import TableSchema
from repro.sqlmini.types import Value


class TableLike(Protocol):
    """What the planner needs from a table (heap tables and views)."""

    schema: TableSchema

    def scan(self):
        """Yield every stored row."""
        ...  # pragma: no cover - protocol

    def __len__(self) -> int: ...  # pragma: no cover - protocol


class CatalogLike(Protocol):
    """What the planner needs from the database catalog."""

    def table(self, name: str) -> TableLike:
        """Resolve a table or view by name."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True, slots=True)
class BoundTable:
    """One table in the FROM clause, with its effective alias.

    ``condition`` is the canonicalized join condition (None for the base
    table).
    """

    table: TableLike
    alias: str
    condition: ast.Expression | None
    outer: bool = False  # LEFT JOIN: emit a NULL row when nothing matches


@dataclass(frozen=True)
class BoundSelect:
    """A SELECT statement bound to the catalog and validated.

    ``items`` / ``where`` / ``group_by`` / ``having`` / ``order_by`` are
    the canonicalized clauses; ``select`` keeps the original statement for
    shape flags (``distinct``, ``limit``) and diagnostics.
    """

    select: ast.Select
    tables: tuple[BoundTable, ...]
    #: every visible column as (alias, column name), in namespace order
    visible: tuple[tuple[str, str], ...]
    #: bare column name -> qualified key; ambiguous names are absent
    bare_names: dict[str, str]
    aggregate_mode: bool
    #: distinct canonical aggregate calls across items, HAVING and ORDER BY
    aggregates: tuple[ast.FuncCall, ...]
    output_names: tuple[str, ...]
    items: tuple[ast.SelectItem, ...]
    where: ast.Expression | None
    group_by: tuple[ast.Expression, ...]
    having: ast.Expression | None
    order_by: tuple[ast.OrderItem, ...]
    #: aliases of non-Star select items (ORDER BY may reference them bare)
    item_aliases: frozenset[str]

    def env_for(self, rows: tuple[tuple[Value, ...], ...]) -> dict[str, Value]:
        """Build the evaluation environment for one joined row combo.

        ``rows`` holds one storage row per bound table, in FROM order.
        Used by the reference executor; planned execution compiles
        expressions against flat-row layouts instead.
        """
        env: dict[str, Value] = {}
        for bound, row in zip(self.tables, rows):
            for position, column in enumerate(bound.table.schema.columns):
                env[f"{bound.alias}.{column.name}"] = row[position]
        for bare, qualified in self.bare_names.items():
            env[bare] = env[qualified]
        return env


class _Canonicalizer:
    """Rewrites column references to their qualified form."""

    def __init__(
        self,
        visible_keys: frozenset[str],
        bare_names: dict[str, str],
        item_aliases: frozenset[str] = frozenset(),
    ) -> None:
        self._visible = visible_keys
        self._bare = bare_names
        self._aliases = item_aliases

    def rewrite(self, expr: ast.Expression, allow_aliases: bool = False) -> ast.Expression:
        if isinstance(expr, (ast.Literal, ast.Star)):
            return expr
        if isinstance(expr, ast.ColumnRef):
            return self._column(expr, allow_aliases)
        if isinstance(expr, ast.BinaryOp):
            return ast.BinaryOp(
                expr.op,
                self.rewrite(expr.left, allow_aliases),
                self.rewrite(expr.right, allow_aliases),
            )
        if isinstance(expr, ast.UnaryOp):
            return ast.UnaryOp(expr.op, self.rewrite(expr.operand, allow_aliases))
        if isinstance(expr, ast.IsNull):
            return ast.IsNull(self.rewrite(expr.operand, allow_aliases), expr.negated)
        if isinstance(expr, ast.InList):
            return ast.InList(
                self.rewrite(expr.operand, allow_aliases),
                tuple(self.rewrite(option, allow_aliases) for option in expr.options),
                expr.negated,
            )
        if isinstance(expr, ast.Between):
            return ast.Between(
                self.rewrite(expr.operand, allow_aliases),
                self.rewrite(expr.low, allow_aliases),
                self.rewrite(expr.high, allow_aliases),
                expr.negated,
            )
        if isinstance(expr, ast.Case):
            return ast.Case(
                tuple(
                    (self.rewrite(condition, allow_aliases), self.rewrite(value, allow_aliases))
                    for condition, value in expr.whens
                ),
                None if expr.default is None else self.rewrite(expr.default, allow_aliases),
            )
        if isinstance(expr, ast.FuncCall):
            return ast.FuncCall(
                expr.name,
                tuple(self.rewrite(arg, allow_aliases) for arg in expr.args),
                expr.distinct,
            )
        raise SqlPlanError(f"cannot bind expression {expr!r}")  # pragma: no cover

    def _column(self, ref: ast.ColumnRef, allow_aliases: bool) -> ast.ColumnRef:
        if ref.table is not None:
            key = f"{ref.table}.{ref.name}"
            if key not in self._visible:
                raise SqlPlanError(f"unknown column {key!r}")
            return ref
        # an item alias shadows any same-named column in ORDER BY scope
        if allow_aliases and ref.name in self._aliases:
            return ref
        qualified = self._bare.get(ref.name)
        if qualified is None:
            raise SqlPlanError(f"unknown column {ref.name!r}")
        alias, _, _ = qualified.partition(".")
        return ast.ColumnRef(ref.name, table=alias)


def bind_select(select: ast.Select, catalog: CatalogLike) -> BoundSelect:
    """Resolve, canonicalize and validate ``select`` against ``catalog``."""
    tables: list[BoundTable] = []
    base = catalog.table(select.table)
    tables.append(BoundTable(base, select.table_alias or select.table, None))
    for join in select.joins:
        joined = catalog.table(join.table)
        tables.append(
            BoundTable(joined, join.alias or join.table, join.condition, join.outer)
        )

    aliases = [bound.alias for bound in tables]
    if len(set(aliases)) != len(aliases):
        raise SqlPlanError(f"duplicate table alias in FROM clause: {aliases}")

    visible: list[tuple[str, str]] = []
    counts: dict[str, int] = {}
    for bound in tables:
        for column in bound.table.schema.columns:
            visible.append((bound.alias, column.name))
            counts[column.name] = counts.get(column.name, 0) + 1
    bare_names = {
        name: f"{alias}.{name}"
        for alias, name in visible
        if counts[name] == 1
    }
    visible_keys = frozenset(f"{alias}.{name}" for alias, name in visible)

    if select.where is not None and ast.contains_aggregate(select.where):
        raise SqlPlanError("aggregates are not allowed in WHERE (use HAVING)")
    for join in select.joins:
        if ast.contains_aggregate(join.condition):
            raise SqlPlanError("aggregates are not allowed in JOIN conditions")
    for expr in select.group_by:
        if ast.contains_aggregate(expr):
            raise SqlPlanError("aggregates are not allowed in GROUP BY")
        if isinstance(expr, ast.Star):
            raise SqlPlanError("'*' is not a valid GROUP BY expression")

    item_aliases = frozenset(
        item.alias
        for item in select.items
        if item.alias and not isinstance(item.expr, ast.Star)
    )
    canon = _Canonicalizer(visible_keys, bare_names, item_aliases)

    # join conditions: canonicalize, then reject forward references — a
    # condition may only see tables already joined at its depth
    bound_tables: list[BoundTable] = [tables[0]]
    for depth in range(1, len(tables)):
        bound = tables[depth]
        condition = canon.rewrite(bound.condition)
        joined_so_far = set(aliases[: depth + 1])
        for ref in ast.collect_columns(condition):
            if ref.table not in joined_so_far:
                raise SqlPlanError(
                    f"JOIN ON condition for table {bound.alias!r} references "
                    f"{ref.table}.{ref.name}, but table {ref.table!r} is not "
                    "joined yet (forward references are not allowed)"
                )
        bound_tables.append(
            BoundTable(bound.table, bound.alias, condition, bound.outer)
        )

    where = None if select.where is None else canon.rewrite(select.where)
    group_by = tuple(canon.rewrite(expr) for expr in select.group_by)
    having = None if select.having is None else canon.rewrite(select.having)
    items = tuple(
        item
        if isinstance(item.expr, ast.Star)
        else ast.SelectItem(canon.rewrite(item.expr), item.alias)
        for item in select.items
    )
    order_by = tuple(
        ast.OrderItem(canon.rewrite(order.expr, allow_aliases=True), order.ascending)
        for order in select.order_by
    )

    aggregates: list[ast.FuncCall] = []
    for item in items:
        if not isinstance(item.expr, ast.Star):
            aggregates.extend(ast.collect_aggregates(item.expr))
    if having is not None:
        aggregates.extend(ast.collect_aggregates(having))
    for order in order_by:
        aggregates.extend(ast.collect_aggregates(order.expr))
    # deduplicate while preserving order (frozen dataclasses hash by value;
    # canonicalization makes SUM(b) and SUM(t.b) the same node)
    unique: dict[ast.FuncCall, None] = {}
    for call in aggregates:
        unique.setdefault(call, None)
    aggregate_mode = bool(group_by) or bool(unique)

    if having is not None and not aggregate_mode:
        raise SqlPlanError("HAVING requires GROUP BY or an aggregate select list")
    if aggregate_mode:
        for item in items:
            if isinstance(item.expr, ast.Star):
                raise SqlPlanError("'*' is not valid in an aggregated select list")
        for call in unique:
            for arg in call.args:
                if ast.contains_aggregate(arg):
                    raise SqlPlanError("nested aggregate calls are not allowed")
        grouped = frozenset(group_by)
        for item in items:
            _check_group_scope(item.expr, grouped, "select list")
        if having is not None:
            _check_group_scope(having, grouped, "HAVING")
        for order in order_by:
            _check_group_scope(
                order.expr, grouped, "ORDER BY", alias_names=item_aliases
            )

    if select.distinct and order_by:
        _check_distinct_order(items, order_by, item_aliases)

    output_names: list[str] = []
    for position, item in enumerate(select.items):
        if isinstance(item.expr, ast.Star):
            output_names.extend(name for _, name in visible)
        else:
            output_names.append(item.output_name(position))

    return BoundSelect(
        select=select,
        tables=tuple(bound_tables),
        visible=tuple(visible),
        bare_names=bare_names,
        aggregate_mode=aggregate_mode,
        aggregates=tuple(unique),
        output_names=tuple(output_names),
        items=items,
        where=where,
        group_by=group_by,
        having=having,
        order_by=order_by,
        item_aliases=item_aliases,
    )


def _check_group_scope(
    expr: ast.Expression,
    grouped: frozenset[ast.Expression],
    context: str,
    alias_names: frozenset[str] = frozenset(),
) -> None:
    """Reject group-scope expressions not derivable from the group key.

    A node is covered when it *is* a grouped expression (replaced whole at
    group scope), an aggregate call, a literal, a permitted bare alias
    reference (ORDER BY only), or when all of its children are covered.
    """

    def covered(node: ast.Expression) -> bool:
        if node in grouped:
            return True
        if isinstance(node, ast.Literal):
            return True
        if isinstance(node, ast.FuncCall):
            if node.name in ast.AGGREGATE_FUNCTIONS:
                return True
            return all(covered(arg) for arg in node.args)
        if isinstance(node, ast.ColumnRef):
            if node.table is None and node.name in alias_names:
                return True
            raise SqlPlanError(
                f"column {node} must appear in GROUP BY or inside an "
                f"aggregate to be used in the {context} of a grouped query"
            )
        if isinstance(node, ast.Star):
            raise SqlPlanError("'*' is only valid in a select list or COUNT(*)")
        if isinstance(node, ast.BinaryOp):
            return covered(node.left) and covered(node.right)
        if isinstance(node, ast.UnaryOp):
            return covered(node.operand)
        if isinstance(node, ast.IsNull):
            return covered(node.operand)
        if isinstance(node, ast.InList):
            return covered(node.operand) and all(covered(o) for o in node.options)
        if isinstance(node, ast.Between):
            return covered(node.operand) and covered(node.low) and covered(node.high)
        if isinstance(node, ast.Case):
            return all(
                covered(condition) and covered(value)
                for condition, value in node.whens
            ) and (node.default is None or covered(node.default))
        return True  # pragma: no cover - exhaustive over Expression

    covered(expr)


def _check_distinct_order(
    items: tuple[ast.SelectItem, ...],
    order_by: tuple[ast.OrderItem, ...],
    item_aliases: frozenset[str],
) -> None:
    """SELECT DISTINCT may only sort by select-list expressions.

    Sorting by a hidden column would pick the first-seen duplicate's value
    — result order would depend on insertion order, which standard SQL
    rejects.
    """
    has_star = any(isinstance(item.expr, ast.Star) for item in items)
    listed = {item.expr for item in items if not isinstance(item.expr, ast.Star)}
    for order in order_by:
        expr = order.expr
        if expr in listed:
            continue
        if isinstance(expr, ast.ColumnRef):
            if expr.table is None and expr.name in item_aliases:
                continue
            if has_star:
                # '*' expands every visible column into the select list
                continue
        raise SqlPlanError(
            "for SELECT DISTINCT, ORDER BY expressions must appear in the "
            "select list"
        )
