"""Planned statement execution for the sqlmini engine.

SELECT statements run through the full pipeline: the binder canonicalizes
and validates (:mod:`repro.sqlmini.planner`), the optimizer lowers to a
plan DAG with predicate pushdown and index routing
(:mod:`repro.sqlmini.optimizer`), and this module executes the plan.

Execution compiles every expression once per statement into closures over
flat-row slot positions (:func:`repro.sqlmini.expressions.compile_expression`)
instead of building a dict environment per row.  Joined rows are plain
tuple concatenations; joined tables are materialized once per statement
(not rescanned per outer row), and hash-indexed equality joins probe the
index per left row.  Grouped queries accumulate aggregates in a single
pass, then evaluate select items, HAVING and ORDER BY at group scope via
the replacement mechanism of :mod:`repro.sqlmini.expressions` — the same
group-key/aggregate substitution the reference executor uses, so results
stay byte-identical.

Row accounting (``repro_sqlmini_rows_scanned_total``) counts rows *read
from storage per table* — once for a scanned table, per probe for an
index lookup — not joined combinations; ``repro_sqlmini_index_seeks_total``
and ``repro_sqlmini_rows_skipped_by_index_total`` make index effectiveness
observable.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator
from dataclasses import dataclass

from repro.obs.runtime import get_registry
from repro.sqlmini import ast
from repro.sqlmini.aggregates import Accumulator, make_accumulator
from repro.sqlmini.errors import SqlCatalogError, SqlExecutionError, SqlPlanError
from repro.sqlmini.expressions import (
    compile_expression,
    compile_predicate,
    evaluate,
    to_bool,
)
from repro.sqlmini.indexes import family_of, family_of_type
from repro.sqlmini.optimizer import Plan, build_plan
from repro.sqlmini.plan import (
    FilterNode,
    IndexLookupNode,
    IndexSeekNode,
    JoinNode,
    PlanNode,
    ScanNode,
    SeekEq,
    SeekIn,
    SeekRange,
    render_plan,
    walk_plan,
)
from repro.sqlmini.planner import BoundSelect, bind_select
from repro.sqlmini.table import Table
from repro.sqlmini.types import Value, sort_key


@dataclass(frozen=True)
class ResultSet:
    """Query output: named columns plus row tuples."""

    columns: tuple[str, ...]
    rows: tuple[tuple[Value, ...], ...]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple[Value, ...]]:
        return iter(self.rows)

    def as_dicts(self) -> list[dict[str, Value]]:
        """Rows as column→value dictionaries."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def first(self) -> tuple[Value, ...] | None:
        """The first row, or None when empty."""
        return self.rows[0] if self.rows else None

    def scalar(self) -> Value:
        """The single value of a 1x1 result; raises otherwise."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise SqlExecutionError(
                f"scalar() needs a 1x1 result, got "
                f"{len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def column(self, name: str) -> list[Value]:
        """All values of one output column."""
        try:
            position = self.columns.index(name.strip().lower())
        except ValueError:
            raise SqlExecutionError(
                f"result has no column {name!r} (columns: {self.columns})"
            ) from None
        return [row[position] for row in self.rows]

    def __repr__(self) -> str:
        return f"ResultSet(columns={self.columns}, rows={len(self.rows)})"


def _layout(pairs: list[tuple[str, object]]) -> dict[str, int]:
    """``alias.column`` -> slot for a sequence of (alias, table) pairs."""
    layout: dict[str, int] = {}
    for alias, table in pairs:
        for column in table.schema.columns:
            layout[f"{alias}.{column.name}"] = len(layout)
    return layout


class Executor:
    """Executes statements against a catalog (the Database)."""

    def __init__(self, catalog) -> None:
        self._catalog = catalog
        # Row-level work keeps plain ints on the hot path; a weakly-held
        # collector flushes the deltas to the registry at snapshot time.
        self._obs = get_registry()
        self._statement_counts: dict[str, int] = {}
        self._rows_scanned = 0
        self._rows_returned = 0
        self._index_seeks = 0
        self._rows_skipped = 0
        self._pushed_predicates = 0
        self._plan_nodes: dict[str, int] = {}
        self._reported_statements: dict[str, int] = {}
        self._reported_rows = (0, 0)  # scanned, returned
        self._reported_index = (0, 0, 0)  # seeks, skipped, pushed
        self._reported_plan_nodes: dict[str, int] = {}
        if self._obs.enabled:
            self._obs.register_collector(self._flush_metrics)

    def _flush_metrics(self) -> None:
        reg = self._obs
        for kind, count in self._statement_counts.items():
            reg.counter("repro_sqlmini_statements_total", kind=kind).inc(
                count - self._reported_statements.get(kind, 0)
            )
            self._reported_statements[kind] = count
        scanned, returned = self._rows_scanned, self._rows_returned
        reg.counter("repro_sqlmini_rows_scanned_total").inc(
            scanned - self._reported_rows[0]
        )
        reg.counter("repro_sqlmini_rows_returned_total").inc(
            returned - self._reported_rows[1]
        )
        self._reported_rows = (scanned, returned)
        seeks, skipped, pushed = (
            self._index_seeks,
            self._rows_skipped,
            self._pushed_predicates,
        )
        reg.counter("repro_sqlmini_index_seeks_total").inc(
            seeks - self._reported_index[0]
        )
        reg.counter("repro_sqlmini_rows_skipped_by_index_total").inc(
            skipped - self._reported_index[1]
        )
        reg.counter("repro_sqlmini_plan_pushed_predicates_total").inc(
            pushed - self._reported_index[2]
        )
        self._reported_index = (seeks, skipped, pushed)
        for kind, count in self._plan_nodes.items():
            reg.counter("repro_sqlmini_plan_nodes_total", kind=kind).inc(
                count - self._reported_plan_nodes.get(kind, 0)
            )
            self._reported_plan_nodes[kind] = count

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def execute(self, statement: ast.Statement) -> ResultSet | int:
        """Run any statement; queries return a ResultSet, DML a count.

        Each statement runs inside a ``repro_sqlmini_statement`` span
        labelled by statement kind, and contributes to the statement/row
        counters (flushed lazily — see ``_flush_metrics``).
        """
        if not self._obs.enabled:
            return self._dispatch(statement)
        kind = type(statement).__name__.lower()
        self._statement_counts[kind] = self._statement_counts.get(kind, 0) + 1
        with self._obs.span("repro_sqlmini_statement", kind=kind):
            result = self._dispatch(statement)
        if isinstance(result, ResultSet):
            self._rows_returned += len(result.rows)
        return result

    def _dispatch(self, statement: ast.Statement) -> ResultSet | int:
        if isinstance(statement, ast.Select):
            return self.execute_select(statement)
        if isinstance(statement, ast.UnionAll):
            return self._execute_union(statement)
        if isinstance(statement, ast.CreateTable):
            return self._execute_create(statement)
        if isinstance(statement, ast.CreateIndex):
            return self._execute_create_index(statement)
        if isinstance(statement, ast.Insert):
            return self._execute_insert(statement)
        if isinstance(statement, ast.Delete):
            return self._execute_delete(statement)
        if isinstance(statement, ast.Update):
            return self._execute_update(statement)
        raise SqlPlanError(f"unsupported statement {statement!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------
    def plan_select(self, select: ast.Select) -> Plan:
        """Bind and optimize one SELECT without running it."""
        return build_plan(bind_select(select, self._catalog))

    def explain(self, statement: ast.Statement) -> str:
        """Render the optimized plan for a query statement."""
        if isinstance(statement, ast.Select):
            return render_plan(self.plan_select(statement).root)
        if isinstance(statement, ast.UnionAll):
            arms = [render_plan(self.plan_select(s).root) for s in statement.selects]
            return "\nUnionAll\n".join(arms)
        raise SqlPlanError(
            f"EXPLAIN supports queries, not {type(statement).__name__}"
        )

    def execute_select(self, select: ast.Select) -> ResultSet:
        """Bind, plan and run one SELECT."""
        bound = bind_select(select, self._catalog)
        plan = build_plan(bound)
        if self._obs.enabled:
            for node in walk_plan(plan.root):
                self._plan_nodes[node.kind] = self._plan_nodes.get(node.kind, 0) + 1
            self._pushed_predicates += plan.pushed
        input_run, _ = self._build_node(plan.input_root)
        if bound.aggregate_mode:
            output_rows = self._grouped_rows(bound, input_run, plan.layout)
        else:
            output_rows = self._plain_rows(bound, input_run, plan.layout)
        if select.distinct:
            seen: dict[tuple[Value, ...], None] = {}
            deduped: list[tuple[tuple[Value, ...], tuple]] = []
            for row, key in output_rows:
                if row not in seen:
                    seen[row] = None
                    deduped.append((row, key))
            output_rows = deduped
        if select.order_by:
            output_rows.sort(key=lambda pair: pair[1])
        rows = [row for row, _ in output_rows]
        if select.limit is not None:
            rows = rows[: select.limit]
        return ResultSet(columns=bound.output_names, rows=tuple(rows))

    # ------------------------------------------------------------------
    # plan-node execution
    # ------------------------------------------------------------------
    def _build_node(self, node: PlanNode):
        """Compile a plan subtree into a row generator.

        Returns ``(run, pairs)`` where ``run()`` yields flat row tuples
        and ``pairs`` lists the ``(alias, table)`` coverage in slot order.
        """
        if isinstance(node, ScanNode):
            return self._build_scan(node)
        if isinstance(node, IndexSeekNode):
            return self._build_seek(node)
        if isinstance(node, FilterNode):
            child_run, pairs = self._build_node(node.child)
            predicate = compile_predicate(node.predicate, _layout(pairs))

            def run_filter():
                for row in child_run():
                    if predicate(row):
                        yield row

            return run_filter, pairs
        if isinstance(node, JoinNode):
            return self._build_join(node)
        raise SqlPlanError(  # pragma: no cover - optimizer invariant
            f"unexpected input plan node {node!r}"
        )

    def _build_scan(self, node: ScanNode):
        table = node.table

        def run_scan():
            count = 0
            try:
                for row in table.scan():
                    count += 1
                    yield row
            finally:
                self._rows_scanned += count

        return run_scan, [(node.alias, table)]

    def _build_seek(self, node: IndexSeekNode):
        table = node.table
        index = node.index
        spec = node.spec

        def run_seek():
            if isinstance(spec, SeekEq):
                positions = index.seek(spec.value)
            elif isinstance(spec, SeekIn):
                positions = index.seek_many(spec.values)
            else:
                assert isinstance(spec, SeekRange)
                positions = index.seek_range(
                    spec.low, spec.low_inclusive, spec.high, spec.high_inclusive
                )
            self._index_seeks += 1
            self._rows_scanned += len(positions)
            self._rows_skipped += len(table) - len(positions)
            yield from table.rows_at(positions)

        return run_seek, [(node.alias, table)]

    def _build_join(self, node: JoinNode):
        left_run, left_pairs = self._build_node(node.left)
        right = node.right
        if isinstance(right, IndexLookupNode):
            return self._build_lookup_join(node, left_run, left_pairs, right)
        right_run, right_pairs = self._build_node(right)
        pairs = left_pairs + right_pairs
        layout = _layout(pairs)
        residuals = [compile_predicate(expr, layout) for expr in node.residual]
        outer = node.outer
        null_suffix = (None,) * len(right_pairs[0][1].schema.columns)

        def run_join():
            # the joined table is materialized once, lazily, so an empty
            # left side never touches it
            cache: list[tuple[Value, ...]] | None = None
            for lrow in left_run():
                if cache is None:
                    cache = list(right_run())
                matched = False
                for rrow in cache:
                    row = lrow + rrow
                    if all(passes(row) for passes in residuals):
                        matched = True
                        yield row
                if outer and not matched:
                    yield lrow + null_suffix

        return run_join, pairs

    def _build_lookup_join(self, node, left_run, left_pairs, right: IndexLookupNode):
        table = right.table
        pairs = left_pairs + [(right.alias, table)]
        layout = _layout(pairs)
        key_fn = compile_expression(right.key_expr, _layout(left_pairs))
        family = family_of_type(table.schema.sql_type_of(right.column))
        index = right.index
        residuals = [compile_predicate(expr, layout) for expr in node.residual]
        outer = node.outer
        null_suffix = (None,) * len(table.schema.columns)

        def run_lookup():
            seeks = scanned = skipped = 0
            total = len(table)
            try:
                for lrow in left_run():
                    key = key_fn(lrow)
                    seeks += 1
                    # cross-family probes (True vs 1) must miss, as
                    # compare() would return unknown
                    if key is None or family_of(key) != family:
                        positions: list[int] = []
                    else:
                        positions = index.seek(key)
                    scanned += len(positions)
                    skipped += total - len(positions)
                    matched = False
                    for position in positions:
                        row = lrow + table.row_at(position)
                        if all(passes(row) for passes in residuals):
                            matched = True
                            yield row
                    if outer and not matched:
                        yield lrow + null_suffix
            finally:
                self._index_seeks += seeks
                self._rows_scanned += scanned
                self._rows_skipped += skipped

        return run_lookup, pairs

    # ------------------------------------------------------------------
    # projection
    # ------------------------------------------------------------------
    def _plain_rows(
        self, bound: BoundSelect, input_run, layout: dict[str, int]
    ) -> list[tuple[tuple[Value, ...], tuple]]:
        """Project each input row; returns (output row, order key) pairs."""
        star_slots = [layout[f"{alias}.{name}"] for alias, name in bound.visible]
        item_fns = []
        for item in bound.items:
            if isinstance(item.expr, ast.Star):
                item_fns.append(None)
            else:
                item_fns.append(compile_expression(item.expr, layout))

        order_fns: list[tuple] = []
        alias_fns: list = []
        if bound.order_by:
            # select-item aliases extend the sort scope (and shadow
            # nothing: canonical refs are qualified, aliases are bare)
            extended = dict(layout)
            slot = len(layout)
            for item in bound.items:
                if item.alias and not isinstance(item.expr, ast.Star):
                    extended[item.alias] = slot
                    alias_fns.append(compile_expression(item.expr, layout))
                    slot += 1
            for order in bound.order_by:
                order_fns.append(
                    (compile_expression(order.expr, extended), order.ascending)
                )

        results: list[tuple[tuple[Value, ...], tuple]] = []
        for row in input_run():
            values: list[Value] = []
            for fn in item_fns:
                if fn is None:
                    values.extend(row[slot] for slot in star_slots)
                else:
                    values.append(fn(row))
            if order_fns:
                sort_row = row + tuple(fn(row) for fn in alias_fns)
                key = tuple(
                    sort_key(fn(sort_row))
                    if ascending
                    else _invert_sort_key(sort_key(fn(sort_row)))
                    for fn, ascending in order_fns
                )
            else:
                key = ()
            results.append((tuple(values), key))
        return results

    def _grouped_rows(
        self, bound: BoundSelect, input_run, layout: dict[str, int]
    ) -> list[tuple[tuple[Value, ...], tuple]]:
        """Group input rows, accumulate aggregates, project per group."""
        group_exprs = bound.group_by
        if group_exprs and all(
            isinstance(expr, ast.ColumnRef) for expr in group_exprs
        ):
            slots = [
                layout[f"{expr.table}.{expr.name}"] for expr in group_exprs
            ]

            def key_fn(row):
                return tuple(row[slot] for slot in slots)

        else:
            key_fns = [compile_expression(expr, layout) for expr in group_exprs]

            def key_fn(row):
                return tuple(fn(row) for fn in key_fns)

        agg_fns = [
            None
            if len(call.args) == 1 and isinstance(call.args[0], ast.Star)
            else compile_expression(call.args[0], layout)
            for call in bound.aggregates
        ]

        groups: dict[tuple[Value, ...], list[Accumulator]] = {}
        for row in input_run():
            key = key_fn(row)
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = [make_accumulator(call) for call in bound.aggregates]
                groups[key] = accumulators
            for fn, accumulator in zip(agg_fns, accumulators):
                # COUNT(*) feeds a non-informative marker
                accumulator.add(1 if fn is None else fn(row))
        if not group_exprs and not groups:
            # global aggregate over zero rows still yields one output row
            groups[()] = [make_accumulator(call) for call in bound.aggregates]

        results: list[tuple[tuple[Value, ...], tuple]] = []
        for key, accumulators in groups.items():
            replacements: dict[ast.Expression, Value] = {}
            for expr, value in zip(group_exprs, key):
                replacements[expr] = value
            for call, accumulator in zip(bound.aggregates, accumulators):
                replacements[call] = accumulator.result()
            if bound.having is not None:
                if to_bool(evaluate(bound.having, {}, replacements)) is not True:
                    continue
            values = tuple(
                evaluate(item.expr, {}, replacements) for item in bound.items
            )
            alias_env = {
                item.alias: value
                for item, value in zip(bound.items, values)
                if item.alias
            }
            order_key_parts: list[tuple] = []
            for order in bound.order_by:
                value = evaluate(order.expr, alias_env, replacements)
                base = sort_key(value)
                if not order.ascending:
                    base = _invert_sort_key(base)
                order_key_parts.append(base)
            results.append((values, tuple(order_key_parts)))
        return results

    # ------------------------------------------------------------------
    # UNION ALL
    # ------------------------------------------------------------------
    def _execute_union(self, union: ast.UnionAll) -> ResultSet:
        partials = [self.execute_select(select) for select in union.selects]
        width = len(partials[0].columns)
        for partial in partials[1:]:
            if len(partial.columns) != width:
                raise SqlPlanError(
                    "UNION ALL arms have different column counts: "
                    f"{width} vs {len(partial.columns)}"
                )
        rows = tuple(itertools.chain.from_iterable(p.rows for p in partials))
        return ResultSet(columns=partials[0].columns, rows=rows)

    # ------------------------------------------------------------------
    # DDL / DML
    # ------------------------------------------------------------------
    def _execute_create(self, create: ast.CreateTable) -> int:
        from repro.sqlmini.schema import Column, TableSchema
        from repro.sqlmini.types import SqlType

        columns = tuple(
            Column(col.name, SqlType.parse(col.type_name), nullable=not col.not_null)
            for col in create.columns
        )
        self._catalog.create_table(TableSchema(create.table, columns))
        return 0

    def _execute_create_index(self, create: ast.CreateIndex) -> int:
        table = self._catalog.table(create.table)
        if not isinstance(table, Table):
            raise SqlCatalogError(
                f"cannot create an index on view {create.table!r}"
            )
        table.create_index(create.column, kind=create.kind)
        return 0

    def _execute_insert(self, insert: ast.Insert) -> int:
        table = self._catalog.table(insert.table)
        schema = table.schema
        for row_exprs in insert.rows:
            values = [self._constant(expr) for expr in row_exprs]
            if insert.columns:
                if len(values) != len(insert.columns):
                    raise SqlPlanError(
                        f"INSERT names {len(insert.columns)} columns but "
                        f"provides {len(values)} values"
                    )
                table.insert(schema.row_from_mapping(dict(zip(insert.columns, values))))
            else:
                table.insert(values)
        return len(insert.rows)

    def _dml_table(self, name: str) -> Table:
        table = self._catalog.table(name)
        if not isinstance(table, Table):
            raise SqlCatalogError(f"view {name!r} is read-only")
        return table

    def _execute_delete(self, delete: ast.Delete) -> int:
        table = self._dml_table(delete.table)
        schema = table.schema
        if delete.where is None:
            return table.delete_where(lambda row: True)
        bare = {name: position for position, name in enumerate(schema.column_names)}
        matches = compile_predicate(delete.where, bare)
        return table.delete_where(matches)

    def _execute_update(self, update: ast.Update) -> int:
        table = self._dml_table(update.table)
        schema = table.schema
        bare = {name: position for position, name in enumerate(schema.column_names)}
        hit = (
            (lambda row: True)
            if update.where is None
            else compile_predicate(update.where, bare)
        )
        positions = [schema.position(name) for name, _ in update.assignments]
        value_fns = [
            compile_expression(expr, bare) for _, expr in update.assignments
        ]
        # validate every replacement before touching storage so a bad
        # assignment leaves the table unchanged
        staged: list[tuple[int, tuple[Value, ...]]] = []
        for row_position, row in enumerate(table.scan()):
            if not hit(row):
                continue
            updated = list(row)
            for position, fn in zip(positions, value_fns):
                updated[position] = fn(row)
            staged.append((row_position, schema.validate_row(updated)))
        for row_position, row in staged:
            table.replace_row(row_position, row)
        return len(staged)

    @staticmethod
    def _constant(expr: ast.Expression) -> Value:
        """Evaluate a VALUES expression (no column references allowed)."""
        return evaluate(expr, {})


def _invert_sort_key(key: tuple) -> tuple:
    """Invert a sort key for DESC ordering (NULLs sort last under DESC)."""
    family, number, text = key
    return (-family, -number if isinstance(number, (int, float)) else number, _InvertedText(text))


class _InvertedText(str):
    """A string wrapper with reversed ordering, for DESC text sorts."""

    __slots__ = ()

    def __lt__(self, other: str) -> bool:  # type: ignore[override]
        return str.__gt__(self, other)

    def __gt__(self, other: str) -> bool:  # type: ignore[override]
        return str.__lt__(self, other)

    def __le__(self, other: str) -> bool:  # type: ignore[override]
        return str.__ge__(self, other)

    def __ge__(self, other: str) -> bool:  # type: ignore[override]
        return str.__le__(self, other)
