"""Statement execution for the sqlmini engine.

The executor consumes parsed statements, binds SELECTs through the planner,
and produces :class:`ResultSet` objects (for queries) or affected-row
counts (for DML/DDL).  Grouped queries use the replacement mechanism of
:mod:`repro.sqlmini.expressions`: group keys and aggregate results are
injected as node-level substitutions when select items, HAVING and ORDER BY
are evaluated at group scope.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator
from dataclasses import dataclass

from repro.obs.runtime import get_registry
from repro.sqlmini import ast
from repro.sqlmini.aggregates import Accumulator, make_accumulator
from repro.sqlmini.errors import SqlExecutionError, SqlPlanError
from repro.sqlmini.expressions import evaluate, to_bool
from repro.sqlmini.planner import BoundSelect, bind_select
from repro.sqlmini.types import Value, sort_key


@dataclass(frozen=True)
class ResultSet:
    """Query output: named columns plus row tuples."""

    columns: tuple[str, ...]
    rows: tuple[tuple[Value, ...], ...]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple[Value, ...]]:
        return iter(self.rows)

    def as_dicts(self) -> list[dict[str, Value]]:
        """Rows as column→value dictionaries."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def first(self) -> tuple[Value, ...] | None:
        """The first row, or None when empty."""
        return self.rows[0] if self.rows else None

    def scalar(self) -> Value:
        """The single value of a 1x1 result; raises otherwise."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise SqlExecutionError(
                f"scalar() needs a 1x1 result, got "
                f"{len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def column(self, name: str) -> list[Value]:
        """All values of one output column."""
        try:
            position = self.columns.index(name.strip().lower())
        except ValueError:
            raise SqlExecutionError(
                f"result has no column {name!r} (columns: {self.columns})"
            ) from None
        return [row[position] for row in self.rows]

    def __repr__(self) -> str:
        return f"ResultSet(columns={self.columns}, rows={len(self.rows)})"


class Executor:
    """Executes statements against a catalog (the Database)."""

    def __init__(self, catalog) -> None:
        self._catalog = catalog
        # Row-level work keeps plain ints on the hot path; a weakly-held
        # collector flushes the deltas to the registry at snapshot time.
        self._obs = get_registry()
        self._statement_counts: dict[str, int] = {}
        self._rows_scanned = 0
        self._rows_returned = 0
        self._reported_statements: dict[str, int] = {}
        self._reported_rows = (0, 0)  # scanned, returned
        if self._obs.enabled:
            self._obs.register_collector(self._flush_metrics)

    def _flush_metrics(self) -> None:
        reg = self._obs
        for kind, count in self._statement_counts.items():
            reg.counter("repro_sqlmini_statements_total", kind=kind).inc(
                count - self._reported_statements.get(kind, 0)
            )
            self._reported_statements[kind] = count
        scanned, returned = self._rows_scanned, self._rows_returned
        reg.counter("repro_sqlmini_rows_scanned_total").inc(
            scanned - self._reported_rows[0]
        )
        reg.counter("repro_sqlmini_rows_returned_total").inc(
            returned - self._reported_rows[1]
        )
        self._reported_rows = (scanned, returned)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def execute(self, statement: ast.Statement) -> ResultSet | int:
        """Run any statement; queries return a ResultSet, DML a count.

        Each statement runs inside a ``repro_sqlmini_statement`` span
        labelled by statement kind, and contributes to the statement/row
        counters (flushed lazily — see ``_flush_metrics``).
        """
        if not self._obs.enabled:
            return self._dispatch(statement)
        kind = type(statement).__name__.lower()
        self._statement_counts[kind] = self._statement_counts.get(kind, 0) + 1
        with self._obs.span("repro_sqlmini_statement", kind=kind):
            result = self._dispatch(statement)
        if isinstance(result, ResultSet):
            self._rows_returned += len(result.rows)
        return result

    def _dispatch(self, statement: ast.Statement) -> ResultSet | int:
        if isinstance(statement, ast.Select):
            return self.execute_select(statement)
        if isinstance(statement, ast.UnionAll):
            return self._execute_union(statement)
        if isinstance(statement, ast.CreateTable):
            return self._execute_create(statement)
        if isinstance(statement, ast.Insert):
            return self._execute_insert(statement)
        if isinstance(statement, ast.Delete):
            return self._execute_delete(statement)
        if isinstance(statement, ast.Update):
            return self._execute_update(statement)
        raise SqlPlanError(f"unsupported statement {statement!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------
    def execute_select(self, select: ast.Select) -> ResultSet:
        """Bind and run one SELECT."""
        bound = bind_select(select, self._catalog)
        if bound.aggregate_mode:
            output_rows = self._grouped_rows(bound)
        else:
            output_rows = self._plain_rows(bound)
        if select.distinct:
            seen: dict[tuple[Value, ...], None] = {}
            deduped: list[tuple[tuple[Value, ...], tuple]] = []
            for row, key in output_rows:
                if row not in seen:
                    seen[row] = None
                    deduped.append((row, key))
            output_rows = deduped
        if select.order_by:
            output_rows.sort(key=lambda pair: pair[1])
        rows = [row for row, _ in output_rows]
        if select.limit is not None:
            rows = rows[: select.limit]
        return ResultSet(columns=bound.output_names, rows=tuple(rows))

    def _input_envs(self, bound: BoundSelect) -> Iterator[dict[str, Value]]:
        """Yield joined-row environments passing all join conditions.

        Nested-loop join: each join condition is checked as soon as its
        table's row is fixed (conditions may reference any earlier table),
        so non-matching prefixes are pruned early.
        """

        def matches(bound_table, chosen: list[tuple[Value, ...]], depth: int) -> bool:
            partial = bound.env_for(
                tuple(chosen)
                + tuple(
                    (None,) * len(later.table.schema.columns)
                    for later in bound.tables[depth + 1 :]
                )
            )
            return to_bool(evaluate(bound_table.condition, partial)) is True

        def combos(depth: int, chosen: list[tuple[Value, ...]]) -> Iterator[dict[str, Value]]:
            if depth == len(bound.tables):
                yield bound.env_for(tuple(chosen))
                return
            bound_table = bound.tables[depth]
            matched_any = False
            for row in bound_table.table.scan():
                chosen.append(row)
                if bound_table.condition is not None and not matches(
                    bound_table, chosen, depth
                ):
                    chosen.pop()
                    continue
                matched_any = True
                yield from combos(depth + 1, chosen)
                chosen.pop()
            if bound_table.outer and not matched_any:
                # LEFT JOIN null extension: keep the left rows alive
                chosen.append((None,) * len(bound_table.table.schema.columns))
                yield from combos(depth + 1, chosen)
                chosen.pop()

        return combos(0, [])

    def _filtered_envs(self, bound: BoundSelect) -> Iterator[dict[str, Value]]:
        where = bound.select.where
        scanned = 0
        try:
            for env in self._input_envs(bound):
                scanned += 1
                if where is None or to_bool(evaluate(where, env)) is True:
                    yield env
        finally:
            # plain-int accounting; the collector turns this into
            # repro_sqlmini_rows_scanned_total at snapshot time
            self._rows_scanned += scanned

    def _plain_rows(
        self, bound: BoundSelect
    ) -> list[tuple[tuple[Value, ...], tuple]]:
        """Project each filtered row; returns (output row, order key) pairs."""
        select = bound.select
        results: list[tuple[tuple[Value, ...], tuple]] = []
        aliases = {
            item.alias: item.expr
            for item in select.items
            if item.alias and not isinstance(item.expr, ast.Star)
        }
        for env in self._filtered_envs(bound):
            values: list[Value] = []
            for item in select.items:
                if isinstance(item.expr, ast.Star):
                    values.extend(env[f"{alias}.{name}"] for alias, name in bound.visible)
                else:
                    values.append(evaluate(item.expr, env))
            order_env = dict(env)
            for alias, expr in aliases.items():
                order_env[alias] = evaluate(expr, env)
            key = self._order_key(select, order_env, None)
            results.append((tuple(values), key))
        return results

    def _grouped_rows(
        self, bound: BoundSelect
    ) -> list[tuple[tuple[Value, ...], tuple]]:
        """Group filtered rows, accumulate aggregates, project per group."""
        select = bound.select
        group_exprs = select.group_by
        groups: dict[tuple[Value, ...], list[Accumulator]] = {}
        group_keys: dict[tuple[Value, ...], tuple[Value, ...]] = {}
        for env in self._filtered_envs(bound):
            key = tuple(evaluate(expr, env) for expr in group_exprs)
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = [make_accumulator(call) for call in bound.aggregates]
                groups[key] = accumulators
                group_keys[key] = key
            for call, accumulator in zip(bound.aggregates, accumulators):
                accumulator.add(self._aggregate_input(call, env))
        if not group_exprs and not groups:
            # global aggregate over zero rows still yields one output row
            groups[()] = [make_accumulator(call) for call in bound.aggregates]
        results: list[tuple[tuple[Value, ...], tuple]] = []
        for key, accumulators in groups.items():
            replacements: dict[ast.Expression, Value] = {}
            for expr, value in zip(group_exprs, key):
                replacements[expr] = value
            for call, accumulator in zip(bound.aggregates, accumulators):
                replacements[call] = accumulator.result()
            if select.having is not None:
                if to_bool(evaluate(select.having, {}, replacements)) is not True:
                    continue
            values = tuple(
                evaluate(item.expr, {}, replacements) for item in select.items
            )
            alias_env = {
                item.alias: value
                for item, value in zip(select.items, values)
                if item.alias
            }
            order_key = self._order_key(select, alias_env, replacements)
            results.append((values, order_key))
        return results

    @staticmethod
    def _aggregate_input(call: ast.FuncCall, env: dict[str, Value]) -> Value:
        if len(call.args) == 1 and isinstance(call.args[0], ast.Star):
            return 1  # COUNT(*): any non-informative marker
        return evaluate(call.args[0], env)

    @staticmethod
    def _order_key(
        select: ast.Select,
        env: dict[str, Value],
        replacements: dict[ast.Expression, Value] | None,
    ) -> tuple:
        key: list[tuple] = []
        for order in select.order_by:
            value = evaluate(order.expr, env, replacements)
            base = sort_key(value)
            if not order.ascending:
                base = _invert_sort_key(base)
            key.append(base)
        return tuple(key)

    # ------------------------------------------------------------------
    # UNION ALL
    # ------------------------------------------------------------------
    def _execute_union(self, union: ast.UnionAll) -> ResultSet:
        partials = [self.execute_select(select) for select in union.selects]
        width = len(partials[0].columns)
        for partial in partials[1:]:
            if len(partial.columns) != width:
                raise SqlPlanError(
                    "UNION ALL arms have different column counts: "
                    f"{width} vs {len(partial.columns)}"
                )
        rows = tuple(itertools.chain.from_iterable(p.rows for p in partials))
        return ResultSet(columns=partials[0].columns, rows=rows)

    # ------------------------------------------------------------------
    # DDL / DML
    # ------------------------------------------------------------------
    def _execute_create(self, create: ast.CreateTable) -> int:
        from repro.sqlmini.schema import Column, TableSchema
        from repro.sqlmini.types import SqlType

        columns = tuple(
            Column(col.name, SqlType.parse(col.type_name), nullable=not col.not_null)
            for col in create.columns
        )
        self._catalog.create_table(TableSchema(create.table, columns))
        return 0

    def _execute_insert(self, insert: ast.Insert) -> int:
        table = self._catalog.table(insert.table)
        schema = table.schema
        for row_exprs in insert.rows:
            values = [self._constant(expr) for expr in row_exprs]
            if insert.columns:
                if len(values) != len(insert.columns):
                    raise SqlPlanError(
                        f"INSERT names {len(insert.columns)} columns but "
                        f"provides {len(values)} values"
                    )
                table.insert(schema.row_from_mapping(dict(zip(insert.columns, values))))
            else:
                table.insert(values)
        return len(insert.rows)

    def _execute_delete(self, delete: ast.Delete) -> int:
        table = self._catalog.table(delete.table)
        schema = table.schema
        where = delete.where

        def matches(row: tuple[Value, ...]) -> bool:
            if where is None:
                return True
            env = dict(zip(schema.column_names, row))
            return to_bool(evaluate(where, env)) is True

        return table.delete_where(matches)

    def _execute_update(self, update: ast.Update) -> int:
        table = self._catalog.table(update.table)
        schema = table.schema
        where = update.where
        positions = [schema.position(name) for name, _ in update.assignments]
        changed = 0
        new_rows: list[tuple[Value, ...]] = []
        for row in table.scan():
            env = dict(zip(schema.column_names, row))
            hit = where is None or to_bool(evaluate(where, env)) is True
            if hit:
                updated = list(row)
                for position, (_, expr) in zip(positions, update.assignments):
                    updated[position] = evaluate(expr, env)
                new_rows.append(schema.validate_row(updated))
                changed += 1
            else:
                new_rows.append(row)
        if changed:
            table.clear()
            for row in new_rows:
                table.insert(row)
        return changed

    @staticmethod
    def _constant(expr: ast.Expression) -> Value:
        """Evaluate a VALUES expression (no column references allowed)."""
        return evaluate(expr, {})


def _invert_sort_key(key: tuple) -> tuple:
    """Invert a sort key for DESC ordering (NULLs sort last under DESC)."""
    family, number, text = key
    return (-family, -number if isinstance(number, (int, float)) else number, _InvertedText(text))


class _InvertedText(str):
    """A string wrapper with reversed ordering, for DESC text sorts."""

    __slots__ = ()

    def __lt__(self, other: str) -> bool:  # type: ignore[override]
        return str.__gt__(self, other)

    def __gt__(self, other: str) -> bool:  # type: ignore[override]
        return str.__lt__(self, other)

    def __le__(self, other: str) -> bool:  # type: ignore[override]
        return str.__ge__(self, other)

    def __ge__(self, other: str) -> bool:  # type: ignore[override]
        return str.__le__(self, other)
