"""Tokeniser for the sqlmini SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.sqlmini.errors import SqlLexError

#: Reserved words recognised by the parser.  Anything else that looks like
#: a word is an identifier.
KEYWORDS = frozenset(
    {
        "select", "distinct", "from", "where", "group", "by", "having",
        "order", "asc", "desc", "limit", "as", "and", "or", "not", "in",
        "is", "null", "like", "between", "true", "false", "insert", "into",
        "values", "create", "table", "delete", "update", "set", "join",
        "inner", "left", "outer", "on", "union", "all", "case", "when",
        "then", "else", "end",
    }
)


class TokenType(Enum):
    """Lexical categories emitted by :func:`tokenize`."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


@dataclass(frozen=True, slots=True)
class Token:
    type: TokenType
    value: str
    position: int

    def is_keyword(self, *words: str) -> bool:
        """True iff this token is one of the given keywords."""
        return self.type is TokenType.KEYWORD and self.value in words

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.type.value}:{self.value}"


_OPERATORS = ("<>", "<=", ">=", "!=", "=", "<", ">", "+", "-", "*", "/", "%")
_PUNCT = "(),.;"


def tokenize(text: str) -> list[Token]:
    """Tokenise ``text``; the result always ends with one EOF token."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if text.startswith("--", i):  # line comment
            newline = text.find("\n", i)
            i = n if newline < 0 else newline + 1
            continue
        if ch == "'":
            value, i = _read_string(text, i)
            tokens.append(Token(TokenType.STRING, value, i))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            value, i = _read_number(text, i)
            tokens.append(Token(TokenType.NUMBER, value, i))
            continue
        if ch.isalpha() or ch == "_" or ch == '"':
            value, i, quoted = _read_word(text, i)
            lowered = value.lower()
            if not quoted and lowered in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, lowered, i))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, lowered, i))
            continue
        matched = next((op for op in _OPERATORS if text.startswith(op, i)), None)
        if matched is not None:
            tokens.append(Token(TokenType.OPERATOR, matched, i))
            i += len(matched)
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
            continue
        raise SqlLexError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens


def _read_string(text: str, start: int) -> tuple[str, int]:
    """Read a single-quoted string; ``''`` escapes a quote."""
    i = start + 1
    parts: list[str] = []
    while i < len(text):
        ch = text[i]
        if ch == "'":
            if text.startswith("''", i):
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise SqlLexError("unterminated string literal", start)


def _read_number(text: str, start: int) -> tuple[str, int]:
    i = start
    seen_dot = False
    while i < len(text) and (text[i].isdigit() or (text[i] == "." and not seen_dot)):
        if text[i] == ".":
            seen_dot = True
        i += 1
    return text[start:i], i


def _read_word(text: str, start: int) -> tuple[str, int, bool]:
    """Read an identifier; double quotes delimit quoted identifiers."""
    if text[start] == '"':
        end = text.find('"', start + 1)
        if end < 0:
            raise SqlLexError("unterminated quoted identifier", start)
        return text[start + 1 : end], end + 1, True
    i = start
    while i < len(text) and (text[i].isalnum() or text[i] == "_"):
        i += 1
    return text[start:i], i, False
