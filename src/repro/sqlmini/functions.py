"""Scalar SQL functions for the sqlmini engine.

Each function takes the already-evaluated argument list.  NULL handling
follows SQL convention: functions return NULL when a required argument is
NULL (except COALESCE, whose whole point is NULL handling).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.sqlmini.errors import SqlExecutionError
from repro.sqlmini.types import Value


def _require_arity(name: str, args: list[Value], arity: int) -> None:
    if len(args) != arity:
        raise SqlExecutionError(
            f"{name.upper()} expects {arity} argument(s), got {len(args)}"
        )


def _require_text(name: str, value: Value) -> str:
    if not isinstance(value, str):
        raise SqlExecutionError(f"{name.upper()} expects TEXT, got {value!r}")
    return value


def _lower(args: list[Value]) -> Value:
    _require_arity("lower", args, 1)
    if args[0] is None:
        return None
    return _require_text("lower", args[0]).lower()


def _upper(args: list[Value]) -> Value:
    _require_arity("upper", args, 1)
    if args[0] is None:
        return None
    return _require_text("upper", args[0]).upper()


def _length(args: list[Value]) -> Value:
    _require_arity("length", args, 1)
    if args[0] is None:
        return None
    return len(_require_text("length", args[0]))


def _trim(args: list[Value]) -> Value:
    _require_arity("trim", args, 1)
    if args[0] is None:
        return None
    return _require_text("trim", args[0]).strip()


def _abs(args: list[Value]) -> Value:
    _require_arity("abs", args, 1)
    value = args[0]
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SqlExecutionError(f"ABS expects a number, got {value!r}")
    return abs(value)


def _round(args: list[Value]) -> Value:
    if len(args) not in (1, 2):
        raise SqlExecutionError(f"ROUND expects 1 or 2 arguments, got {len(args)}")
    value = args[0]
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SqlExecutionError(f"ROUND expects a number, got {value!r}")
    digits = 0
    if len(args) == 2:
        if not isinstance(args[1], int) or isinstance(args[1], bool):
            raise SqlExecutionError("ROUND digit count must be an integer")
        digits = args[1]
    return round(float(value), digits)


def _coalesce(args: list[Value]) -> Value:
    for value in args:
        if value is not None:
            return value
    return None


def _concat(args: list[Value]) -> Value:
    parts: list[str] = []
    for value in args:
        if value is None:
            return None
        parts.append(value if isinstance(value, str) else str(value))
    return "".join(parts)


#: Name → implementation registry consulted by the evaluator.
SCALAR_FUNCTIONS: dict[str, Callable[[list[Value]], Value]] = {
    "lower": _lower,
    "upper": _upper,
    "length": _length,
    "trim": _trim,
    "abs": _abs,
    "round": _round,
    "coalesce": _coalesce,
    "concat": _concat,
}
