"""Errors raised by the sqlmini relational engine.

All engine errors derive from :class:`SqlError`, which itself derives from
the library-wide :class:`~repro.errors.PrimaError`, so application code can
catch either granularity.
"""

from __future__ import annotations

from repro.errors import PrimaError


class SqlError(PrimaError):
    """Base class for every sqlmini failure."""


class SqlLexError(SqlError):
    """The SQL text could not be tokenised."""

    def __init__(self, message: str, position: int) -> None:
        self.position = position
        super().__init__(f"{message} (at offset {position})")


class SqlParseError(SqlError):
    """The token stream is not a valid statement."""


class SqlCatalogError(SqlError):
    """A table or column does not exist, or already exists."""


class SqlTypeError(SqlError):
    """A value does not fit the declared column type."""


class SqlPlanError(SqlError):
    """A statement is valid syntax but cannot be planned.

    Examples: referencing a non-grouped column in an aggregate query, or
    using an aggregate inside WHERE.
    """


class SqlExecutionError(SqlError):
    """Runtime failure while executing a plan (e.g. division by zero)."""
