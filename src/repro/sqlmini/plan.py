"""Logical plan DAG for the sqlmini engine.

The optimizer lowers a bound SELECT into a tree of plan nodes (the
Opteryx-style taxonomy: Scan/IndexSeek at the leaves, then Filter, Join,
Aggregate, Distinct, Sort, Limit and Project).  Nodes are declarative —
they carry canonicalized expressions and references to storage objects,
never closures — so the same plan can be executed by
:mod:`repro.sqlmini.executor` or rendered by :func:`render_plan` for
``repro sql explain``.

Seek specifications describe what an :class:`IndexSeekNode` asks of an
index: a single key (:class:`SeekEq`), a key set (:class:`SeekIn`, from
``IN`` lists) or a key range (:class:`SeekRange`, from ``<``/``<=``/``>``/
``>=``/``BETWEEN`` and their conjunctions).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sqlmini import ast
from repro.sqlmini.types import Value


def _literal(value: Value) -> str:
    return str(ast.Literal(value))


# ----------------------------------------------------------------------
# seek specifications
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SeekEq:
    """``column = value``."""

    column: str
    value: Value

    def __str__(self) -> str:
        return f"{self.column} = {_literal(self.value)}"


@dataclass(frozen=True)
class SeekIn:
    """``column IN (values)``."""

    column: str
    values: tuple[Value, ...]

    def __str__(self) -> str:
        inner = ", ".join(_literal(value) for value in self.values)
        return f"{self.column} IN ({inner})"


@dataclass(frozen=True)
class SeekRange:
    """``low <op> column <op> high``; a None bound is unbounded."""

    column: str
    low: Value = None
    low_inclusive: bool = True
    high: Value = None
    high_inclusive: bool = True

    def __str__(self) -> str:
        parts: list[str] = []
        if self.low is not None:
            parts.append(f"{self.column} {'>=' if self.low_inclusive else '>'} {_literal(self.low)}")
        if self.high is not None:
            parts.append(f"{self.column} {'<=' if self.high_inclusive else '<'} {_literal(self.high)}")
        return " AND ".join(parts) or f"{self.column} unbounded"


SeekSpec = SeekEq | SeekIn | SeekRange


# ----------------------------------------------------------------------
# plan nodes
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ScanNode:
    """Full scan of a table or view, in insertion order."""

    kind = "scan"
    alias: str
    table_name: str
    table: object = field(repr=False)
    estimated_rows: int | None = None

    @property
    def children(self) -> tuple:
        return ()

    def label(self) -> str:
        """One-line description for plan rendering."""
        name = self.table_name if self.alias == self.table_name else f"{self.table_name} AS {self.alias}"
        rows = "?" if self.estimated_rows is None else str(self.estimated_rows)
        return f"Scan {name} rows~{rows}"


@dataclass(frozen=True)
class IndexSeekNode:
    """Seek into a secondary index; yields rows in ascending position."""

    kind = "index_seek"
    alias: str
    table_name: str
    table: object = field(repr=False)
    index_kind: str = "hash"
    spec: SeekSpec | None = None
    index: object = field(repr=False, default=None)
    estimated_rows: int | None = None

    @property
    def children(self) -> tuple:
        return ()

    def label(self) -> str:
        """One-line description for plan rendering."""
        name = self.table_name if self.alias == self.table_name else f"{self.table_name} AS {self.alias}"
        return f"IndexSeek {name} {self.index_kind}({self.spec})"


@dataclass(frozen=True)
class IndexLookupNode:
    """Per-left-row hash seek on the right side of a join.

    ``key_expr`` is evaluated against the joined prefix; its value probes
    the hash index on ``column``.
    """

    kind = "index_lookup"
    alias: str
    table_name: str
    table: object = field(repr=False)
    column: str = ""
    key_expr: ast.Expression | None = None
    index: object = field(repr=False, default=None)

    @property
    def children(self) -> tuple:
        return ()

    def label(self) -> str:
        """One-line description for plan rendering."""
        name = self.table_name if self.alias == self.table_name else f"{self.table_name} AS {self.alias}"
        return f"IndexLookup {name} hash({self.alias}.{self.column} = {self.key_expr})"


@dataclass(frozen=True)
class FilterNode:
    """Keep rows whose predicate is True (3VL: unknown drops)."""

    kind = "filter"
    child: object
    predicate: ast.Expression
    pushed: bool = False

    @property
    def children(self) -> tuple:
        return (self.child,)

    def label(self) -> str:
        """One-line description for plan rendering."""
        suffix = "  [pushed]" if self.pushed else ""
        return f"Filter {self.predicate}{suffix}"


@dataclass(frozen=True)
class JoinNode:
    """Nested-loop join of a joined prefix with one more table."""

    kind = "join"
    left: object
    right: object  # access subtree (Scan/IndexSeek/Filter) or IndexLookupNode
    residual: tuple[ast.Expression, ...] = ()
    outer: bool = False

    @property
    def children(self) -> tuple:
        return (self.left, self.right)

    def label(self) -> str:
        """One-line description for plan rendering."""
        name = "LeftOuterJoin" if self.outer else "InnerJoin"
        if not self.residual:
            return name
        condition = " AND ".join(str(expr) for expr in self.residual)
        return f"{name} on {condition}"


@dataclass(frozen=True)
class AggregateNode:
    """Single-pass grouped accumulation (or one global group)."""

    kind = "aggregate"
    child: object
    group_by: tuple[ast.Expression, ...] = ()
    aggregates: tuple[ast.FuncCall, ...] = ()
    having: ast.Expression | None = None

    @property
    def children(self) -> tuple:
        return (self.child,)

    def label(self) -> str:
        """One-line description for plan rendering."""
        groups = ", ".join(str(expr) for expr in self.group_by) or "()"
        aggs = ", ".join(str(call) for call in self.aggregates)
        text = f"Aggregate group=[{groups}]"
        if aggs:
            text += f" aggs=[{aggs}]"
        if self.having is not None:
            text += f" having={self.having}"
        return text


@dataclass(frozen=True)
class ProjectNode:
    """Compute the output columns."""

    kind = "project"
    child: object
    items: tuple[ast.SelectItem, ...] = ()
    output_names: tuple[str, ...] = ()

    @property
    def children(self) -> tuple:
        return (self.child,)

    def label(self) -> str:
        """One-line description for plan rendering."""
        return f"Project [{', '.join(self.output_names)}]"


@dataclass(frozen=True)
class DistinctNode:
    """First-seen deduplication of output rows."""

    kind = "distinct"
    child: object

    @property
    def children(self) -> tuple:
        return (self.child,)

    def label(self) -> str:
        """One-line description for plan rendering."""
        return "Distinct"


@dataclass(frozen=True)
class SortNode:
    """Stable sort by ORDER BY keys (NULLs first ASC, last DESC)."""

    kind = "sort"
    child: object
    order_by: tuple[ast.OrderItem, ...] = ()

    @property
    def children(self) -> tuple:
        return (self.child,)

    def label(self) -> str:
        """One-line description for plan rendering."""
        keys = ", ".join(str(order) for order in self.order_by)
        return f"Sort [{keys}]"


@dataclass(frozen=True)
class LimitNode:
    """Keep the first N output rows."""

    kind = "limit"
    child: object
    limit: int = 0

    @property
    def children(self) -> tuple:
        return (self.child,)

    def label(self) -> str:
        """One-line description for plan rendering."""
        return f"Limit {self.limit}"


PlanNode = (
    ScanNode
    | IndexSeekNode
    | IndexLookupNode
    | FilterNode
    | JoinNode
    | AggregateNode
    | ProjectNode
    | DistinctNode
    | SortNode
    | LimitNode
)


def walk_plan(node: PlanNode):
    """Yield every node of the plan tree, preorder."""
    yield node
    for child in node.children:
        yield from walk_plan(child)


def render_plan(node: PlanNode) -> str:
    """Render a plan tree as an indented box-drawing diagram."""
    lines: list[str] = []

    def visit(current: PlanNode, prefix: str, child_prefix: str) -> None:
        lines.append(prefix + current.label())
        children = current.children
        for position, child in enumerate(children):
            last = position == len(children) - 1
            connector = "└─ " if last else "├─ "
            continuation = "   " if last else "│  "
            visit(child, child_prefix + connector, child_prefix + continuation)

    visit(node, "", "")
    return "\n".join(lines)
