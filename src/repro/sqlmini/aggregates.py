"""Aggregate accumulators for the sqlmini engine.

One accumulator instance exists per (group, aggregate call).  The executor
feeds each accumulator the evaluated argument value for every row of its
group and reads :meth:`Accumulator.result` at the end.

SQL NULL semantics: every aggregate except ``COUNT(*)`` ignores NULL
inputs; aggregates over zero non-NULL inputs yield NULL, except COUNT which
yields 0.
"""

from __future__ import annotations

from repro.sqlmini import ast
from repro.sqlmini.errors import SqlExecutionError, SqlPlanError
from repro.sqlmini.types import Value, compare


class Accumulator:
    """Base class; subclasses override :meth:`add` and :meth:`result`."""

    def add(self, value: Value) -> None:  # pragma: no cover - interface
        """Feed one evaluated argument value."""
        raise NotImplementedError

    def result(self) -> Value:  # pragma: no cover - interface
        """The aggregate's final value for the group."""
        raise NotImplementedError


class CountAll(Accumulator):
    """``COUNT(*)`` — counts rows, NULLs included."""

    def __init__(self) -> None:
        self._count = 0

    def add(self, value: Value) -> None:
        """Count the row regardless of value."""
        self._count += 1

    def result(self) -> Value:
        """The row count."""
        return self._count


class Count(Accumulator):
    """``COUNT(expr)`` / ``COUNT(DISTINCT expr)``."""

    def __init__(self, distinct: bool = False) -> None:
        self._distinct = distinct
        self._count = 0
        self._seen: set[Value] = set()

    def add(self, value: Value) -> None:
        """Count non-NULL values (distinct-aware)."""
        if value is None:
            return
        if self._distinct:
            self._seen.add(value)
        else:
            self._count += 1

    def result(self) -> Value:
        """The non-NULL (or distinct) value count."""
        return len(self._seen) if self._distinct else self._count


class Sum(Accumulator):
    """``SUM(expr)`` / ``SUM(DISTINCT expr)``."""

    def __init__(self, distinct: bool = False) -> None:
        self._distinct = distinct
        self._seen: set[Value] = set()
        self._total: int | float = 0
        self._any = False

    def add(self, value: Value) -> None:
        """Accumulate one non-NULL numeric value."""
        if value is None:
            return
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SqlExecutionError(f"SUM expects numbers, got {value!r}")
        if self._distinct:
            if value in self._seen:
                return
            self._seen.add(value)
        self._total += value
        self._any = True

    def result(self) -> Value:
        """The sum, or NULL when no value arrived."""
        return self._total if self._any else None


class Avg(Accumulator):
    """``AVG(expr)`` / ``AVG(DISTINCT expr)``."""

    def __init__(self, distinct: bool = False) -> None:
        self._distinct = distinct
        self._seen: set[Value] = set()
        self._total: int | float = 0
        self._count = 0

    def add(self, value: Value) -> None:
        """Accumulate one non-NULL numeric value."""
        if value is None:
            return
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SqlExecutionError(f"AVG expects numbers, got {value!r}")
        if self._distinct:
            if value in self._seen:
                return
            self._seen.add(value)
        self._total += value
        self._count += 1

    def result(self) -> Value:
        """The mean, or NULL when no value arrived."""
        if self._count == 0:
            return None
        return self._total / self._count


class Extreme(Accumulator):
    """Shared implementation of MIN and MAX."""

    def __init__(self, want_max: bool) -> None:
        self._want_max = want_max
        self._best: Value = None

    def add(self, value: Value) -> None:
        """Track the extreme of the non-NULL values seen."""
        if value is None:
            return
        if self._best is None:
            self._best = value
            return
        outcome = compare(value, self._best)
        if outcome is None:
            raise SqlExecutionError(
                f"{'MAX' if self._want_max else 'MIN'} over incomparable values "
                f"({value!r} vs {self._best!r})"
            )
        if (outcome > 0) == self._want_max and outcome != 0:
            self._best = value

    def result(self) -> Value:
        """The extreme value, or NULL when no value arrived."""
        return self._best


def make_accumulator(call: ast.FuncCall) -> Accumulator:
    """Build the accumulator for one aggregate call; validates arity."""
    name = call.name
    if name not in ast.AGGREGATE_FUNCTIONS:
        raise SqlPlanError(f"{name.upper()} is not an aggregate function")
    if name == "count":
        if len(call.args) == 1 and isinstance(call.args[0], ast.Star):
            if call.distinct:
                raise SqlPlanError("COUNT(DISTINCT *) is not valid")
            return CountAll()
        if len(call.args) != 1:
            raise SqlPlanError("COUNT expects exactly one argument")
        return Count(call.distinct)
    if len(call.args) != 1 or isinstance(call.args[0], ast.Star):
        raise SqlPlanError(f"{name.upper()} expects exactly one expression argument")
    if name == "sum":
        return Sum(call.distinct)
    if name == "avg":
        return Avg(call.distinct)
    if name == "min":
        return Extreme(want_max=False)
    if name == "max":
        return Extreme(want_max=True)
    raise SqlPlanError(f"unhandled aggregate {name!r}")  # pragma: no cover
