"""Abstract syntax for the sqlmini SQL dialect.

Expression and statement nodes are frozen dataclasses; the planner and
rewriters (notably HDB Active Enforcement, which rewrites WHERE clauses)
build new trees instead of mutating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.sqlmini.types import Value

# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Literal:
    value: Value

    def __str__(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)


@dataclass(frozen=True, slots=True)
class ColumnRef:
    name: str
    table: str | None = None

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True, slots=True)
class Star:
    """``*`` in a select list or ``COUNT(*)``."""

    def __str__(self) -> str:
        return "*"


@dataclass(frozen=True, slots=True)
class BinaryOp:
    op: str  # =, <>, <, <=, >, >=, +, -, *, /, %, AND, OR, LIKE
    left: "Expression"
    right: "Expression"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True, slots=True)
class UnaryOp:
    op: str  # NOT, -
    operand: "Expression"

    def __str__(self) -> str:
        return f"({self.op} {self.operand})"


@dataclass(frozen=True, slots=True)
class IsNull:
    operand: "Expression"
    negated: bool = False

    def __str__(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand} {suffix})"


@dataclass(frozen=True, slots=True)
class InList:
    operand: "Expression"
    options: tuple["Expression", ...]
    negated: bool = False

    def __str__(self) -> str:
        keyword = "NOT IN" if self.negated else "IN"
        inner = ", ".join(str(option) for option in self.options)
        return f"({self.operand} {keyword} ({inner}))"


@dataclass(frozen=True, slots=True)
class Between:
    operand: "Expression"
    low: "Expression"
    high: "Expression"
    negated: bool = False

    def __str__(self) -> str:
        keyword = "NOT BETWEEN" if self.negated else "BETWEEN"
        return f"({self.operand} {keyword} {self.low} AND {self.high})"


@dataclass(frozen=True, slots=True)
class Case:
    """Searched CASE: ``CASE WHEN cond THEN value ... [ELSE value] END``."""

    whens: tuple[tuple["Expression", "Expression"], ...]
    default: "Expression | None" = None

    def __str__(self) -> str:
        parts = ["CASE"]
        for condition, value in self.whens:
            parts.append(f"WHEN {condition} THEN {value}")
        if self.default is not None:
            parts.append(f"ELSE {self.default}")
        parts.append("END")
        return " ".join(parts)


@dataclass(frozen=True, slots=True)
class FuncCall:
    name: str  # lower-cased
    args: tuple["Expression", ...]
    distinct: bool = False

    def __str__(self) -> str:
        inner = ", ".join(str(arg) for arg in self.args)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.name.upper()}({inner})"


Expression = Union[
    Literal, ColumnRef, Star, BinaryOp, UnaryOp, IsNull, InList, Between,
    FuncCall, Case,
]

#: Aggregate function names the engine understands.
AGGREGATE_FUNCTIONS = frozenset({"count", "sum", "avg", "min", "max"})


def contains_aggregate(expr: Expression) -> bool:
    """True iff ``expr`` contains an aggregate function call."""
    return bool(collect_aggregates(expr))


def collect_aggregates(expr: Expression) -> tuple[FuncCall, ...]:
    """Return every aggregate :class:`FuncCall` inside ``expr`` (preorder)."""
    found: list[FuncCall] = []

    def walk(node: Expression) -> None:
        if isinstance(node, FuncCall):
            if node.name in AGGREGATE_FUNCTIONS:
                found.append(node)
                return  # nested aggregates are rejected at plan time
            for arg in node.args:
                walk(arg)
        elif isinstance(node, BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, UnaryOp):
            walk(node.operand)
        elif isinstance(node, IsNull):
            walk(node.operand)
        elif isinstance(node, InList):
            walk(node.operand)
            for option in node.options:
                walk(option)
        elif isinstance(node, Between):
            walk(node.operand)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, Case):
            for condition, value in node.whens:
                walk(condition)
                walk(value)
            if node.default is not None:
                walk(node.default)

    walk(expr)
    return tuple(found)


def collect_columns(expr: Expression) -> tuple[ColumnRef, ...]:
    """Return every column reference inside ``expr`` (preorder)."""
    found: list[ColumnRef] = []

    def walk(node: Expression) -> None:
        if isinstance(node, ColumnRef):
            found.append(node)
        elif isinstance(node, FuncCall):
            for arg in node.args:
                walk(arg)
        elif isinstance(node, BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, UnaryOp):
            walk(node.operand)
        elif isinstance(node, IsNull):
            walk(node.operand)
        elif isinstance(node, InList):
            walk(node.operand)
            for option in node.options:
                walk(option)
        elif isinstance(node, Between):
            walk(node.operand)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, Case):
            for condition, value in node.whens:
                walk(condition)
                walk(value)
            if node.default is not None:
                walk(node.default)

    walk(expr)
    return tuple(found)


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SelectItem:
    expr: Expression
    alias: str | None = None

    def output_name(self, position: int) -> str:
        """The result-column name this item produces."""
        if self.alias:
            return self.alias
        if isinstance(self.expr, ColumnRef):
            return self.expr.name
        return f"col{position}"

    def __str__(self) -> str:
        return f"{self.expr} AS {self.alias}" if self.alias else str(self.expr)


@dataclass(frozen=True, slots=True)
class OrderItem:
    expr: Expression
    ascending: bool = True

    def __str__(self) -> str:
        return f"{self.expr} {'ASC' if self.ascending else 'DESC'}"


@dataclass(frozen=True, slots=True)
class JoinClause:
    table: str
    alias: str | None
    condition: Expression
    outer: bool = False  # True for LEFT [OUTER] JOIN

    def __str__(self) -> str:
        name = f"{self.table} {self.alias}" if self.alias else self.table
        keyword = "LEFT JOIN" if self.outer else "JOIN"
        return f"{keyword} {name} ON {self.condition}"


@dataclass(frozen=True, slots=True)
class Select:
    items: tuple[SelectItem, ...]
    table: str
    table_alias: str | None = None
    joins: tuple[JoinClause, ...] = ()
    where: Expression | None = None
    group_by: tuple[Expression, ...] = ()
    having: Expression | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    distinct: bool = False

    def __str__(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(str(item) for item in self.items))
        parts.append(f"FROM {self.table}")
        if self.table_alias:
            parts.append(self.table_alias)
        for join in self.joins:
            parts.append(str(join))
        if self.where is not None:
            parts.append(f"WHERE {self.where}")
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(str(e) for e in self.group_by))
        if self.having is not None:
            parts.append(f"HAVING {self.having}")
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(str(o) for o in self.order_by))
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return " ".join(parts)


@dataclass(frozen=True, slots=True)
class UnionAll:
    """``<select> UNION ALL <select> [UNION ALL ...]``."""

    selects: tuple[Select, ...]

    def __str__(self) -> str:
        return " UNION ALL ".join(str(select) for select in self.selects)


@dataclass(frozen=True, slots=True)
class ColumnDef:
    name: str
    type_name: str
    not_null: bool = False


@dataclass(frozen=True, slots=True)
class CreateTable:
    table: str
    columns: tuple[ColumnDef, ...]


@dataclass(frozen=True, slots=True)
class CreateIndex:
    """``CREATE [HASH|ORDERED] INDEX name ON table (column)``."""

    name: str
    table: str
    column: str
    kind: str = "hash"  # "hash" | "ordered"

    def __str__(self) -> str:
        keyword = "ORDERED INDEX" if self.kind == "ordered" else "HASH INDEX"
        return f"CREATE {keyword} {self.name} ON {self.table} ({self.column})"


@dataclass(frozen=True, slots=True)
class Insert:
    table: str
    columns: tuple[str, ...]  # empty means "all, in schema order"
    rows: tuple[tuple[Expression, ...], ...]


@dataclass(frozen=True, slots=True)
class Delete:
    table: str
    where: Expression | None = None


@dataclass(frozen=True, slots=True)
class Update:
    table: str
    assignments: tuple[tuple[str, Expression], ...]
    where: Expression | None = None


Statement = Union[Select, UnionAll, CreateTable, CreateIndex, Insert, Delete, Update]
