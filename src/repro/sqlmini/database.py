"""The sqlmini catalog: named tables, views, and a SQL entry point.

:class:`Database` is the object application code holds.  It owns the
tables, hands out an :class:`~repro.sqlmini.executor.Executor`, and offers
``execute(sql)`` / ``query(sql)`` convenience wrappers that parse, bind and
run in one call — the ``executeQuery(SQL)`` primitive the paper's
Algorithm 5 requires.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from repro.sqlmini import ast
from repro.sqlmini.errors import SqlCatalogError, SqlExecutionError
from repro.sqlmini.executor import Executor, ResultSet
from repro.sqlmini.parser import parse
from repro.sqlmini.schema import Column, TableSchema
from repro.sqlmini.table import Table, ViewTable
from repro.sqlmini.types import SqlType, Value


class Database:
    """An in-memory relational database."""

    def __init__(self, name: str = "main") -> None:
        self.name = name
        self._tables: dict[str, Table | ViewTable] = {}
        self._executor = Executor(self)

    # ------------------------------------------------------------------
    # catalog
    # ------------------------------------------------------------------
    def create_table(self, schema: TableSchema) -> Table:
        """Create a heap table from ``schema``; raises if the name is taken."""
        if schema.name in self._tables:
            raise SqlCatalogError(f"table {schema.name!r} already exists")
        table = Table(schema)
        self._tables[schema.name] = table
        return table

    def define_table(
        self, name: str, columns: list[tuple[str, SqlType | str]] | list[tuple[str, SqlType | str, bool]]
    ) -> Table:
        """Create a table from ``(name, type[, nullable])`` tuples."""
        cols = []
        for spec in columns:
            if len(spec) == 2:
                col_name, col_type = spec  # type: ignore[misc]
                nullable = True
            else:
                col_name, col_type, nullable = spec  # type: ignore[misc]
            sql_type = col_type if isinstance(col_type, SqlType) else SqlType.parse(col_type)
            cols.append(Column(col_name, sql_type, nullable))
        return self.create_table(TableSchema(name, tuple(cols)))

    def register_view(
        self,
        name: str,
        schema_columns: tuple[Column, ...],
        producer: Callable[[], Iterator[tuple[Value, ...]]],
    ) -> ViewTable:
        """Register a read-only virtual table backed by ``producer``."""
        key = name.strip().lower()
        if key in self._tables:
            raise SqlCatalogError(f"table {key!r} already exists")
        view = ViewTable(TableSchema(key, schema_columns), producer)
        self._tables[key] = view
        return view

    def create_index(self, table: str, column: str, kind: str = "hash") -> None:
        """Create a secondary index on ``table.column`` (no-op if present).

        Equivalent to ``CREATE [HASH|ORDERED] INDEX ... ON table (column)``;
        views are rejected.
        """
        target = self.table(table)
        if not isinstance(target, Table):
            raise SqlCatalogError(f"cannot create an index on view {table!r}")
        target.create_index(column, kind=kind)

    def drop_table(self, name: str) -> None:
        """Remove a table or view from the catalog."""
        key = name.strip().lower()
        if key not in self._tables:
            raise SqlCatalogError(f"table {name!r} does not exist")
        del self._tables[key]

    def table(self, name: str) -> Table | ViewTable:
        """Resolve a table or view by name (case-insensitive)."""
        key = name.strip().lower()
        try:
            return self._tables[key]
        except KeyError:
            raise SqlCatalogError(
                f"table {name!r} does not exist "
                f"(known: {', '.join(sorted(self._tables)) or 'none'})"
            ) from None

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._tables))

    def __contains__(self, name: str) -> bool:
        return name.strip().lower() in self._tables

    # ------------------------------------------------------------------
    # SQL entry points
    # ------------------------------------------------------------------
    def execute(self, sql: str) -> ResultSet | int:
        """Parse and run one statement; queries return a ResultSet."""
        return self._executor.execute(parse(sql))

    def query(self, sql: str) -> ResultSet:
        """Run a statement that must be a query."""
        statement = parse(sql)
        if not isinstance(statement, (ast.Select, ast.UnionAll)):
            raise SqlExecutionError("query() requires a SELECT statement")
        result = self._executor.execute(statement)
        assert isinstance(result, ResultSet)
        return result

    def explain(self, sql: str) -> str:
        """Render the optimized plan DAG for a query, without running it."""
        return self._executor.explain(parse(sql))

    def execute_statement(self, statement: ast.Statement) -> ResultSet | int:
        """Run an already-parsed statement (used by the enforcement layer,
        which rewrites ASTs rather than SQL text)."""
        return self._executor.execute(statement)

    def __repr__(self) -> str:
        return f"Database(name={self.name!r}, tables={len(self._tables)})"
