"""Table schemas for the sqlmini engine."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sqlmini.errors import SqlCatalogError, SqlTypeError
from repro.sqlmini.types import SqlType, Value, coerce


@dataclass(frozen=True, slots=True)
class Column:
    """One column declaration."""

    name: str
    sql_type: SqlType
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name or not self.name.strip():
            raise SqlCatalogError("column names must be non-empty")
        object.__setattr__(self, "name", self.name.strip().lower())
        if isinstance(self.sql_type, str):
            object.__setattr__(self, "sql_type", SqlType.parse(self.sql_type))


@dataclass(frozen=True)
class TableSchema:
    """An ordered set of columns with name-based lookup."""

    name: str
    columns: tuple[Column, ...]
    _index: dict[str, int] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", self.name.strip().lower())
        if not self.columns:
            raise SqlCatalogError(f"table {self.name!r} must have at least one column")
        index: dict[str, int] = {}
        for position, column in enumerate(self.columns):
            if column.name in index:
                raise SqlCatalogError(
                    f"duplicate column {column.name!r} in table {self.name!r}"
                )
            index[column.name] = position
        object.__setattr__(self, "_index", index)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def __contains__(self, name: str) -> bool:
        return name.strip().lower() in self._index

    def position(self, name: str) -> int:
        """Return the 0-based position of ``name``; raises if absent."""
        try:
            return self._index[name.strip().lower()]
        except KeyError:
            raise SqlCatalogError(
                f"table {self.name!r} has no column {name!r} "
                f"(columns: {', '.join(self.column_names)})"
            ) from None

    def column(self, name: str) -> Column:
        """The column declaration named ``name``; raises if absent."""
        return self.columns[self.position(name)]

    def sql_type_of(self, name: str) -> SqlType:
        """The declared type of column ``name`` (optimizer family guard)."""
        return self.columns[self.position(name)].sql_type

    # ------------------------------------------------------------------
    # row validation
    # ------------------------------------------------------------------
    def validate_row(self, values: tuple[Value, ...] | list[Value]) -> tuple[Value, ...]:
        """Coerce and validate one row; returns the stored tuple."""
        if len(values) != len(self.columns):
            raise SqlTypeError(
                f"table {self.name!r} expects {len(self.columns)} values, "
                f"got {len(values)}"
            )
        row: list[Value] = []
        for column, value in zip(self.columns, values):
            if value is None and not column.nullable:
                raise SqlTypeError(
                    f"column {column.name!r} of table {self.name!r} is NOT NULL"
                )
            row.append(coerce(value, column.sql_type, column.name))
        return tuple(row)

    def row_from_mapping(self, mapping: dict[str, Value]) -> tuple[Value, ...]:
        """Build a full row tuple from a column→value mapping.

        Missing nullable columns become NULL; unknown keys raise.
        """
        unknown = [key for key in mapping if key.strip().lower() not in self._index]
        if unknown:
            raise SqlCatalogError(
                f"unknown column(s) {unknown} for table {self.name!r}"
            )
        normalised = {key.strip().lower(): value for key, value in mapping.items()}
        values = [normalised.get(column.name) for column in self.columns]
        return self.validate_row(values)
