"""Expression evaluation for the sqlmini engine.

Evaluation is environment-based: an environment maps visible column names
(bare and ``alias.column``-qualified) to values.  SQL three-valued logic is
respected — comparisons against NULL yield ``None`` (unknown), ``AND``/
``OR`` propagate unknowns per the SQL truth tables, and filters treat
unknown as false.

The evaluator also accepts a ``replacements`` mapping from expression nodes
to precomputed values.  The executor uses this to inject aggregate results
and group-key values when evaluating select items and HAVING clauses of
grouped queries.
"""

from __future__ import annotations

import re
from collections.abc import Mapping

from repro.sqlmini import ast
from repro.sqlmini.errors import SqlExecutionError, SqlPlanError
from repro.sqlmini.functions import SCALAR_FUNCTIONS
from repro.sqlmini.types import Value, compare

Environment = Mapping[str, Value]
Replacements = Mapping[ast.Expression, Value]

_EMPTY: dict[ast.Expression, Value] = {}


def evaluate(
    expr: ast.Expression,
    env: Environment,
    replacements: Replacements | None = None,
) -> Value:
    """Evaluate ``expr`` against ``env``; returns a Python value or None."""
    repl = _EMPTY if replacements is None else replacements
    return _eval(expr, env, repl)


def _eval(expr: ast.Expression, env: Environment, repl: Replacements) -> Value:
    if repl and expr in repl:
        return repl[expr]
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.ColumnRef):
        return _column(expr, env)
    if isinstance(expr, ast.BinaryOp):
        return _binary(expr, env, repl)
    if isinstance(expr, ast.UnaryOp):
        return _unary(expr, env, repl)
    if isinstance(expr, ast.IsNull):
        value = _eval(expr.operand, env, repl)
        return (value is not None) if expr.negated else (value is None)
    if isinstance(expr, ast.InList):
        return _in_list(expr, env, repl)
    if isinstance(expr, ast.Between):
        return _between(expr, env, repl)
    if isinstance(expr, ast.FuncCall):
        return _scalar_call(expr, env, repl)
    if isinstance(expr, ast.Case):
        for condition, value in expr.whens:
            if to_bool(_eval(condition, env, repl)) is True:
                return _eval(value, env, repl)
        if expr.default is not None:
            return _eval(expr.default, env, repl)
        return None
    if isinstance(expr, ast.Star):
        raise SqlPlanError("'*' is only valid in a select list or COUNT(*)")
    raise SqlExecutionError(f"cannot evaluate expression {expr!r}")  # pragma: no cover


def _column(ref: ast.ColumnRef, env: Environment) -> Value:
    key = f"{ref.table}.{ref.name}" if ref.table else ref.name
    if key in env:
        return env[key]
    raise SqlPlanError(f"unknown column {key!r}")


def _binary(expr: ast.BinaryOp, env: Environment, repl: Replacements) -> Value:
    op = expr.op
    if op == "AND":
        left = to_bool(_eval(expr.left, env, repl))
        if left is False:
            return False
        right = to_bool(_eval(expr.right, env, repl))
        if right is False:
            return False
        if left is None or right is None:
            return None
        return True
    if op == "OR":
        left = to_bool(_eval(expr.left, env, repl))
        if left is True:
            return True
        right = to_bool(_eval(expr.right, env, repl))
        if right is True:
            return True
        if left is None or right is None:
            return None
        return False
    left = _eval(expr.left, env, repl)
    right = _eval(expr.right, env, repl)
    if op == "LIKE":
        return _like(left, right)
    if op in ("=", "<>", "<", "<=", ">", ">="):
        outcome = compare(left, right)
        if outcome is None:
            return None
        return {
            "=": outcome == 0,
            "<>": outcome != 0,
            "<": outcome < 0,
            "<=": outcome <= 0,
            ">": outcome > 0,
            ">=": outcome >= 0,
        }[op]
    return _arithmetic(op, left, right)


def _arithmetic(op: str, left: Value, right: Value) -> Value:
    if left is None or right is None:
        return None
    for side, value in (("left", left), ("right", right)):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SqlExecutionError(
                f"arithmetic {op!r} needs numbers, {side} operand is {value!r}"
            )
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise SqlExecutionError("division by zero")
        result = left / right
        return result
    if op == "%":
        if right == 0:
            raise SqlExecutionError("modulo by zero")
        return left % right
    raise SqlExecutionError(f"unknown operator {op!r}")  # pragma: no cover


def _unary(expr: ast.UnaryOp, env: Environment, repl: Replacements) -> Value:
    value = _eval(expr.operand, env, repl)
    if expr.op == "NOT":
        truth = to_bool(value)
        if truth is None:
            return None
        return not truth
    if expr.op == "-":
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SqlExecutionError(f"unary minus needs a number, got {value!r}")
        return -value
    raise SqlExecutionError(f"unknown unary operator {expr.op!r}")  # pragma: no cover


def _in_list(expr: ast.InList, env: Environment, repl: Replacements) -> Value:
    needle = _eval(expr.operand, env, repl)
    if needle is None:
        return None
    saw_null = False
    for option in expr.options:
        value = _eval(option, env, repl)
        outcome = compare(needle, value)
        if outcome is None:
            saw_null = True
        elif outcome == 0:
            return not expr.negated
    if saw_null:
        return None
    return expr.negated


def _between(expr: ast.Between, env: Environment, repl: Replacements) -> Value:
    value = _eval(expr.operand, env, repl)
    low = _eval(expr.low, env, repl)
    high = _eval(expr.high, env, repl)
    low_cmp = compare(value, low)
    high_cmp = compare(value, high)
    if low_cmp is None or high_cmp is None:
        return None
    inside = low_cmp >= 0 and high_cmp <= 0
    return inside != expr.negated


def _like(value: Value, pattern: Value) -> Value:
    if value is None or pattern is None:
        return None
    if not isinstance(value, str) or not isinstance(pattern, str):
        raise SqlExecutionError("LIKE expects TEXT operands")
    regex = _like_regex(pattern)
    return bool(regex.fullmatch(value))


def _like_regex(pattern: str) -> re.Pattern[str]:
    parts: list[str] = []
    for char in pattern:
        if char == "%":
            parts.append(".*")
        elif char == "_":
            parts.append(".")
        else:
            parts.append(re.escape(char))
    return re.compile("".join(parts), re.IGNORECASE | re.DOTALL)


def _scalar_call(expr: ast.FuncCall, env: Environment, repl: Replacements) -> Value:
    if expr.name in ast.AGGREGATE_FUNCTIONS:
        raise SqlPlanError(
            f"aggregate {expr.name.upper()} is not allowed here "
            "(only in a select list or HAVING of a grouped query)"
        )
    try:
        function = SCALAR_FUNCTIONS[expr.name]
    except KeyError:
        raise SqlPlanError(f"unknown function {expr.name.upper()!r}") from None
    args = [_eval(arg, env, repl) for arg in expr.args]
    return function(args)


def to_bool(value: Value) -> bool | None:
    """SQL truthiness: NULL stays unknown, everything else must be bool."""
    if value is None:
        return None
    if isinstance(value, bool):
        return value
    raise SqlExecutionError(f"condition evaluated to non-boolean {value!r}")


# ----------------------------------------------------------------------
# compiled expressions
# ----------------------------------------------------------------------
#
# The planned executor avoids building a dict environment per row: it
# compiles each (canonicalized) expression once per statement into a
# closure over flat-row slot positions, then calls the closure per row.
# Semantics mirror _eval exactly — same three-valued logic, same errors —
# which the differential test suite asserts against the reference executor.

_COMPARATORS = {
    "=": lambda outcome: outcome == 0,
    "<>": lambda outcome: outcome != 0,
    "<": lambda outcome: outcome < 0,
    "<=": lambda outcome: outcome <= 0,
    ">": lambda outcome: outcome > 0,
    ">=": lambda outcome: outcome >= 0,
}


def compile_expression(expr: ast.Expression, layout: Mapping[str, int]):
    """Compile ``expr`` into a ``row -> value`` closure.

    ``layout`` maps column keys (``alias.column``, or bare names for
    single-table DML and select-item aliases in sort scope) to slot
    positions in the flat row tuple.  Unknown columns, aggregates outside
    group scope and ``*`` misuse raise :class:`SqlPlanError` at compile
    time rather than per row.
    """
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda row: value
    if isinstance(expr, ast.ColumnRef):
        key = f"{expr.table}.{expr.name}" if expr.table else expr.name
        try:
            slot = layout[key]
        except KeyError:
            raise SqlPlanError(f"unknown column {key!r}") from None
        return lambda row: row[slot]
    if isinstance(expr, ast.BinaryOp):
        return _compile_binary(expr, layout)
    if isinstance(expr, ast.UnaryOp):
        operand = compile_expression(expr.operand, layout)
        if expr.op == "NOT":

            def negate(row):
                truth = to_bool(operand(row))
                if truth is None:
                    return None
                return not truth

            return negate
        if expr.op == "-":

            def minus(row):
                value = operand(row)
                if value is None:
                    return None
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise SqlExecutionError(f"unary minus needs a number, got {value!r}")
                return -value

            return minus
        raise SqlExecutionError(f"unknown unary operator {expr.op!r}")  # pragma: no cover
    if isinstance(expr, ast.IsNull):
        operand = compile_expression(expr.operand, layout)
        if expr.negated:
            return lambda row: operand(row) is not None
        return lambda row: operand(row) is None
    if isinstance(expr, ast.InList):
        needle = compile_expression(expr.operand, layout)
        options = tuple(compile_expression(option, layout) for option in expr.options)
        negated = expr.negated

        def in_list(row):
            value = needle(row)
            if value is None:
                return None
            saw_null = False
            for option in options:
                outcome = compare(value, option(row))
                if outcome is None:
                    saw_null = True
                elif outcome == 0:
                    return not negated
            if saw_null:
                return None
            return negated

        return in_list
    if isinstance(expr, ast.Between):
        operand = compile_expression(expr.operand, layout)
        low = compile_expression(expr.low, layout)
        high = compile_expression(expr.high, layout)
        negated = expr.negated

        def between(row):
            value = operand(row)
            low_cmp = compare(value, low(row))
            high_cmp = compare(value, high(row))
            if low_cmp is None or high_cmp is None:
                return None
            inside = low_cmp >= 0 and high_cmp <= 0
            return inside != negated

        return between
    if isinstance(expr, ast.Case):
        whens = tuple(
            (compile_expression(condition, layout), compile_expression(value, layout))
            for condition, value in expr.whens
        )
        default = (
            None if expr.default is None else compile_expression(expr.default, layout)
        )

        def case(row):
            for condition, value in whens:
                if to_bool(condition(row)) is True:
                    return value(row)
            if default is not None:
                return default(row)
            return None

        return case
    if isinstance(expr, ast.FuncCall):
        if expr.name in ast.AGGREGATE_FUNCTIONS:
            raise SqlPlanError(
                f"aggregate {expr.name.upper()} is not allowed here "
                "(only in a select list or HAVING of a grouped query)"
            )
        try:
            function = SCALAR_FUNCTIONS[expr.name]
        except KeyError:
            raise SqlPlanError(f"unknown function {expr.name.upper()!r}") from None
        args = tuple(compile_expression(arg, layout) for arg in expr.args)
        return lambda row: function([arg(row) for arg in args])
    if isinstance(expr, ast.Star):
        raise SqlPlanError("'*' is only valid in a select list or COUNT(*)")
    raise SqlExecutionError(f"cannot compile expression {expr!r}")  # pragma: no cover


def _compile_binary(expr: ast.BinaryOp, layout: Mapping[str, int]):
    op = expr.op
    left = compile_expression(expr.left, layout)
    right = compile_expression(expr.right, layout)
    if op == "AND":

        def conjunction(row):
            left_truth = to_bool(left(row))
            if left_truth is False:
                return False
            right_truth = to_bool(right(row))
            if right_truth is False:
                return False
            if left_truth is None or right_truth is None:
                return None
            return True

        return conjunction
    if op == "OR":

        def disjunction(row):
            left_truth = to_bool(left(row))
            if left_truth is True:
                return True
            right_truth = to_bool(right(row))
            if right_truth is True:
                return True
            if left_truth is None or right_truth is None:
                return None
            return False

        return disjunction
    if op == "LIKE":
        return lambda row: _like(left(row), right(row))
    comparator = _COMPARATORS.get(op)
    if comparator is not None:

        def comparison(row):
            outcome = compare(left(row), right(row))
            if outcome is None:
                return None
            return comparator(outcome)

        return comparison
    return lambda row: _arithmetic(op, left(row), right(row))


def compile_predicate(expr: ast.Expression, layout: Mapping[str, int]):
    """Compile ``expr`` into a ``row -> bool`` filter (unknown → False)."""
    compiled = compile_expression(expr, layout)

    def passes(row) -> bool:
        return to_bool(compiled(row)) is True

    return passes
