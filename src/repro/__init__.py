"""repro — PRIMA, a PRIvacy Management Architecture for healthcare.

A full reproduction of Bhatti & Grandison, *"Towards Improved Privacy
Policy Coverage in Healthcare Using Policy Refinement"* (2007): the formal
policy-coverage model (Section 3), the Hippocratic-Database-style
enforcement and auditing middleware on an in-memory relational substrate
(Section 4), the refinement pipeline of Algorithms 1–6 (Section 4.3), the
Apriori future-work extension (Section 5), and a synthetic clinical
workload generator standing in for real hospital audit trails.

Quickstart::

    from repro import (
        healthcare_vocabulary, PolicyStore, Rule, refine, compute_coverage,
    )
    from repro.workload import table1_audit_log, figure3_policy_store

    vocabulary = healthcare_vocabulary()
    store = figure3_policy_store()
    log = table1_audit_log()
    result = refine(store.policy(), log, vocabulary)
    print(result.summary())   # finds referral:registration:nurse

Subpackages: :mod:`repro.vocab`, :mod:`repro.policy`,
:mod:`repro.coverage`, :mod:`repro.sqlmini`, :mod:`repro.hdb`,
:mod:`repro.audit`, :mod:`repro.mining`, :mod:`repro.refinement`,
:mod:`repro.workload`, :mod:`repro.experiments`, :mod:`repro.store`.
"""

from repro.audit import AccessOp, AccessStatus, AuditEntry, AuditLog, make_entry
from repro.coverage import (
    analyse_gaps,
    completely_covers,
    compute_coverage,
    compute_entry_coverage,
)
from repro.errors import PrimaError
from repro.hdb import (
    AccessRequest,
    ActiveEnforcer,
    AuditFederation,
    ComplianceAuditor,
    ConsentStore,
    HdbControlCenter,
    LogicalClock,
    TableBinding,
)
from repro.mining import (
    AprioriPatternMiner,
    MiningConfig,
    Pattern,
    SqlPatternMiner,
    derive_rules,
)
from repro.policy import (
    Policy,
    PolicySource,
    PolicyStore,
    Range,
    Rule,
    RuleTerm,
    parse_policy,
    parse_rule,
    policy_range,
)
from repro.refinement import (
    AcceptAll,
    RefinementConfig,
    RefinementLoop,
    ReviewQueue,
    ThresholdReview,
    refine,
)
from repro.sqlmini import Database
from repro.store import AuditStore, DurableAuditLog, StoreConfig, copy_to_durable
from repro.vocab import Vocabulary, VocabularyTree, healthcare_vocabulary

__version__ = "1.0.0"

__all__ = [
    "AcceptAll",
    "AccessOp",
    "AccessRequest",
    "AccessStatus",
    "ActiveEnforcer",
    "AprioriPatternMiner",
    "AuditEntry",
    "AuditFederation",
    "AuditLog",
    "AuditStore",
    "ComplianceAuditor",
    "ConsentStore",
    "Database",
    "DurableAuditLog",
    "HdbControlCenter",
    "LogicalClock",
    "MiningConfig",
    "Pattern",
    "Policy",
    "PolicySource",
    "PolicyStore",
    "PrimaError",
    "Range",
    "RefinementConfig",
    "RefinementLoop",
    "ReviewQueue",
    "Rule",
    "RuleTerm",
    "SqlPatternMiner",
    "StoreConfig",
    "TableBinding",
    "ThresholdReview",
    "Vocabulary",
    "VocabularyTree",
    "__version__",
    "analyse_gaps",
    "completely_covers",
    "compute_coverage",
    "compute_entry_coverage",
    "copy_to_durable",
    "derive_rules",
    "healthcare_vocabulary",
    "make_entry",
    "parse_policy",
    "parse_rule",
    "policy_range",
    "refine",
]
