"""Pattern-mining back-ends for ``extractPatterns`` (Algorithms 4–5).

Public surface:

- :class:`~repro.mining.patterns.MiningConfig` /
  :class:`Pattern` / :class:`PatternMiner` — the pluggable interface.
- :class:`~repro.mining.sql_patterns.SqlPatternMiner` — Algorithm 5.
- :class:`~repro.mining.apriori.AprioriPatternMiner` /
  :func:`apriori` — the Section 5 future-work extension.
- :func:`~repro.mining.association.derive_rules` — association rules with
  support / confidence / lift.
"""

from repro.mining.apriori import (
    AprioriPatternMiner,
    FrequentItemset,
    apriori,
    transactions_from_log,
)
from repro.mining.association import AssociationRule, derive_rules
from repro.mining.patterns import MiningConfig, Pattern, PatternMiner
from repro.mining.sql_patterns import SqlPatternMiner, build_analysis_sql
from repro.mining.temporal import (
    TemporalPattern,
    hour_extractor,
    mine_temporal_patterns,
)

__all__ = [
    "TemporalPattern",
    "hour_extractor",
    "mine_temporal_patterns",
    "AprioriPatternMiner",
    "AssociationRule",
    "FrequentItemset",
    "MiningConfig",
    "Pattern",
    "PatternMiner",
    "SqlPatternMiner",
    "apriori",
    "build_analysis_sql",
    "derive_rules",
    "transactions_from_log",
]
