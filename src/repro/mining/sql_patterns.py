"""Algorithm 5: ``dataAnalysis`` as a literal SQL statement.

The paper's routine "takes a set of attributes A, a minimum frequency f
and a simple condition c, translates it into a SQL statement and executes
it" — and gives the statement shape::

    SELECT Attr_1, .., Attr_n FROM P's table
    GROUP BY Attr_1, .., Attr_n
    HAVING COUNT(*) > f AND c

This module builds exactly that statement (with the inclusive-``f`` fix
documented in :class:`~repro.mining.patterns.MiningConfig`), materialises
the practice log into a fresh sqlmini database, executes, and lifts the
result rows into :class:`~repro.mining.patterns.Pattern` objects.
"""

from __future__ import annotations

from repro.audit.log import AuditLog
from repro.audit.schema import AUDIT_ATTRIBUTES
from repro.errors import MiningError
from repro.mining.patterns import MiningConfig, Pattern
from repro.policy.rule import Rule
from repro.sqlmini.database import Database


def build_analysis_sql(table: str, config: MiningConfig) -> str:
    """Render the Algorithm 5 statement for ``table`` and ``config``."""
    for attribute in config.attributes:
        if attribute not in AUDIT_ATTRIBUTES:
            raise MiningError(f"unknown audit attribute {attribute!r}")
    columns = ", ".join(config.attributes)
    having = (
        f"COUNT(*) >= {config.min_support} "
        f"AND COUNT(DISTINCT user) >= {config.min_distinct_users}"
    )
    return (
        f"SELECT {columns}, COUNT(*) AS support, "
        f"COUNT(DISTINCT user) AS distinct_users "
        f"FROM {table} "
        f"GROUP BY {columns} "
        f"HAVING {having} "
        f"ORDER BY support DESC, {columns}"
    )


class SqlPatternMiner:
    """The GROUP BY / HAVING pattern miner (the paper's default)."""

    #: table name used for the throwaway materialisation
    TABLE = "practice"

    def mine(self, log: AuditLog, config: MiningConfig) -> tuple[Pattern, ...]:
        """Run Algorithm 5 over ``log`` and lift the rows into patterns.

        ``log`` is expected to be the *practice* subset (Algorithm 3's
        output); the miner itself applies no status filtering, mirroring
        the paper's separation of Filter and extractPatterns.
        """
        if len(log) == 0:
            return ()
        database = Database("analysis")
        log.to_table(database, self.TABLE)
        sql = build_analysis_sql(self.TABLE, config)
        result = database.query(sql)
        patterns: list[Pattern] = []
        width = len(config.attributes)
        for row in result:
            values, support, distinct_users = row[:width], row[width], row[width + 1]
            rule = Rule.from_pairs(
                [(attribute, str(value)) for attribute, value in zip(config.attributes, values)]
            )
            patterns.append(
                Pattern(rule=rule, support=support, distinct_users=distinct_users)
            )
        return tuple(patterns)
