"""Algorithm 5: ``dataAnalysis`` as a literal SQL statement.

The paper's routine "takes a set of attributes A, a minimum frequency f
and a simple condition c, translates it into a SQL statement and executes
it" — and gives the statement shape::

    SELECT Attr_1, .., Attr_n FROM P's table
    GROUP BY Attr_1, .., Attr_n
    HAVING COUNT(*) > f AND c

This module builds exactly that statement (with the inclusive-``f`` fix
documented in :class:`~repro.mining.patterns.MiningConfig`), materialises
the practice log into a fresh sqlmini database, executes, and lifts the
result rows into :class:`~repro.mining.patterns.Pattern` objects.

Partial aggregates
------------------
``GROUP BY`` / ``HAVING`` is an algebraic aggregation, so it decomposes
over any partition of its input: each shard contributes a *partial
aggregate* mapping every group key to ``(support, user-set)`` — raw
counts and raw user sets, because ``COUNT(DISTINCT user)`` is not
mergeable but user sets are — and the coordinator merges partials by
summing supports and unioning user sets, then applies the global
``HAVING`` thresholds and the statement's ``ORDER BY``.  That is exactly
how distributed engines execute this statement, and it is what the
parallel refinement layer (:mod:`repro.parallel`) runs per shard.
:class:`SqlPartialAggregate` is the mergeable piece;
:func:`finalize_patterns` is the global reduce.  ``finalize_patterns
(merge of shard partials)`` equals :meth:`SqlPatternMiner.mine` on the
concatenated input, group for group and in the same order.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.audit.entry import AuditEntry
from repro.audit.log import AuditLog
from repro.audit.schema import AUDIT_ATTRIBUTES
from repro.errors import MiningError
from repro.mining.patterns import MiningConfig, Pattern
from repro.policy.rule import Rule
from repro.sqlmini.database import Database

#: One GROUP BY key: the entry's values over the configured attributes.
GroupKey = tuple[str, ...]


@dataclass
class SqlPartialAggregate:
    """The mergeable shard-local state of the Algorithm 5 GROUP BY.

    ``groups`` maps each attribute-value tuple to ``[support, users]``;
    supports add and user sets union under :meth:`merge`, so partials
    built over disjoint shards reduce to exactly the whole-log aggregate.
    """

    attributes: tuple[str, ...]
    groups: dict[GroupKey, list] = field(default_factory=dict)

    def add(self, values: GroupKey, user: str, count: int = 1) -> None:
        """Fold one (or ``count`` identical) practice entries in."""
        slot = self.groups.get(values)
        if slot is None:
            self.groups[values] = [count, {user}]
        else:
            slot[0] += count
            slot[1].add(user)

    def add_entry(self, entry: AuditEntry) -> None:
        """Fold one audit entry in (key = its configured attributes)."""
        self.add(
            tuple(str(getattr(entry, a)) for a in self.attributes), entry.user
        )

    def merge(self, other: "SqlPartialAggregate") -> None:
        """Fold another shard's partial into this one (associative)."""
        if other.attributes != self.attributes:
            raise MiningError(
                f"cannot merge partial aggregates over {other.attributes} "
                f"into one over {self.attributes}"
            )
        for values, (count, users) in other.groups.items():
            slot = self.groups.get(values)
            if slot is None:
                self.groups[values] = [count, set(users)]
            else:
                slot[0] += count
                slot[1] |= users

    @classmethod
    def from_entries(
        cls, entries: Iterable[AuditEntry], config: MiningConfig
    ) -> "SqlPartialAggregate":
        """Aggregate one shard (already filtered to practice entries)."""
        partial = cls(attributes=config.attributes)
        for entry in entries:
            partial.add_entry(entry)
        return partial


def finalize_patterns(
    partial: SqlPartialAggregate, config: MiningConfig
) -> tuple[Pattern, ...]:
    """Apply the global ``HAVING`` thresholds and ``ORDER BY`` to a
    (merged) partial aggregate — the reduce step of Algorithm 5.

    Ordering matches the rendered statement: support descending, then the
    attribute values ascending, so the result is deterministic and equal
    to :meth:`SqlPatternMiner.mine` over the concatenated shards.
    """
    surviving = [
        (values, count, len(users))
        for values, (count, users) in partial.groups.items()
        if count >= config.min_support and len(users) >= config.min_distinct_users
    ]
    surviving.sort(key=lambda item: (-item[1], item[0]))
    return tuple(
        Pattern(
            rule=Rule.from_pairs(list(zip(partial.attributes, values))),
            support=count,
            distinct_users=distinct_users,
        )
        for values, count, distinct_users in surviving
    )


def build_analysis_sql(table: str, config: MiningConfig) -> str:
    """Render the Algorithm 5 statement for ``table`` and ``config``."""
    for attribute in config.attributes:
        if attribute not in AUDIT_ATTRIBUTES:
            raise MiningError(f"unknown audit attribute {attribute!r}")
    columns = ", ".join(config.attributes)
    having = (
        f"COUNT(*) >= {config.min_support} "
        f"AND COUNT(DISTINCT user) >= {config.min_distinct_users}"
    )
    return (
        f"SELECT {columns}, COUNT(*) AS support, "
        f"COUNT(DISTINCT user) AS distinct_users "
        f"FROM {table} "
        f"GROUP BY {columns} "
        f"HAVING {having} "
        f"ORDER BY support DESC, {columns}"
    )


class SqlPatternMiner:
    """The GROUP BY / HAVING pattern miner (the paper's default)."""

    #: table name used for the throwaway materialisation
    TABLE = "practice"

    def mine(self, log: AuditLog, config: MiningConfig) -> tuple[Pattern, ...]:
        """Run Algorithm 5 over ``log`` and lift the rows into patterns.

        ``log`` is expected to be the *practice* subset (Algorithm 3's
        output); the miner itself applies no status filtering, mirroring
        the paper's separation of Filter and extractPatterns.
        """
        if len(log) == 0:
            return ()
        database = Database("analysis")
        log.to_table(database, self.TABLE, index=config.index_practice)
        sql = build_analysis_sql(self.TABLE, config)
        result = database.query(sql)
        patterns: list[Pattern] = []
        width = len(config.attributes)
        for row in result:
            values, support, distinct_users = row[:width], row[width], row[width + 1]
            rule = Rule.from_pairs(
                [(attribute, str(value)) for attribute, value in zip(config.attributes, values)]
            )
            patterns.append(
                Pattern(rule=rule, support=support, distinct_users=distinct_users)
            )
        return tuple(patterns)
