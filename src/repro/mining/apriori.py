"""Apriori frequent-itemset mining [Agrawal & Srikant, VLDB 1994].

Section 5 of the paper proposes "to leverage the frequent pattern mining
algorithm [18] ... to detect correlations between attribute pairs that are
not discovered by simple SQL queries".  This module implements classic
levelwise Apriori from scratch over audit entries.

Transactions and items
----------------------
Each practice-log entry becomes one transaction; its items are the
``(attribute, value)`` pairs over the configured attribute subset, e.g.
``{("data", "referral"), ("purpose", "registration"), ("authorized",
"nurse")}``.  Because a transaction carries exactly one item per
attribute, candidate itemsets mixing two values of one attribute can never
be frequent and are pruned during generation.

Why this beats plain GROUP BY
-----------------------------
Algorithm 5 groups on the *full* attribute set, so a practice that is
spread across many roles — say ``(referral, registration)`` performed by
nurses, clerks and registrars, each below the threshold individually —
never surfaces.  Apriori's size-2 itemsets catch exactly that correlation
(experiment E5 quantifies it).
"""

from __future__ import annotations

import itertools
from collections import Counter, defaultdict
from dataclasses import dataclass

from repro.audit.log import AuditLog
from repro.errors import MiningError
from repro.mining.patterns import MiningConfig, Pattern
from repro.policy.rule import Rule

#: An item is an (attribute, value) pair; itemsets are frozensets of items.
Item = tuple[str, str]
ItemSet = frozenset


@dataclass(frozen=True, slots=True)
class FrequentItemset:
    """One frequent itemset with its absolute support."""

    items: ItemSet
    support: int

    @property
    def size(self) -> int:
        return len(self.items)

    def to_rule(self) -> Rule:
        """Lift into a policy rule (terms = items)."""
        return Rule.from_pairs(sorted(self.items))

    def __str__(self) -> str:
        inner = ", ".join(f"{attr}={value}" for attr, value in sorted(self.items))
        return f"{{{inner}}} (support={self.support})"


def transactions_from_log(
    log: AuditLog, attributes: tuple[str, ...]
) -> list[ItemSet]:
    """One transaction per entry over the chosen attributes."""
    return [
        frozenset(
            (attribute, str(getattr(entry, attribute))) for attribute in attributes
        )
        for entry in log
    ]


def apriori(
    transactions: list[ItemSet], min_support: int, max_size: int | None = None
) -> tuple[FrequentItemset, ...]:
    """Levelwise Apriori; returns all frequent itemsets, smallest first.

    ``min_support`` is an absolute count (inclusive).  ``max_size`` caps
    the itemset size (defaults to unbounded, which in this domain means
    the number of attributes).
    """
    if min_support < 1:
        raise MiningError(f"min_support must be >= 1, got {min_support}")
    if not transactions:
        return ()
    singles: Counter = Counter(
        item for transaction in transactions for item in transaction
    )
    current: dict[ItemSet, int] = {
        frozenset([item]): count
        for item, count in singles.items()
        if count >= min_support
    }
    found: list[FrequentItemset] = [
        FrequentItemset(items, support) for items, support in sorted(
            current.items(), key=lambda pair: (sorted(pair[0]),)
        )
    ]
    size = 2
    while current and (max_size is None or size <= max_size):
        candidates = _generate_candidates(list(current), size)
        if not candidates:
            break
        counts: Counter = Counter()
        for transaction in transactions:
            for candidate in candidates:
                if candidate <= transaction:
                    counts[candidate] += 1
        current = {
            candidate: count
            for candidate, count in counts.items()
            if count >= min_support
        }
        found.extend(
            FrequentItemset(items, support)
            for items, support in sorted(
                current.items(), key=lambda pair: (sorted(pair[0]),)
            )
        )
        size += 1
    return tuple(found)


def _generate_candidates(frequent: list[ItemSet], size: int) -> set[ItemSet]:
    """Join step + prune step of candidate generation.

    Joins (k-1)-itemsets sharing k-2 items; prunes candidates with any
    infrequent (k-1)-subset (support anti-monotonicity) and candidates
    carrying two values of one attribute (impossible in this domain).
    """
    frequent_set = set(frequent)
    candidates: set[ItemSet] = set()
    for first, second in itertools.combinations(frequent, 2):
        union = first | second
        if len(union) != size:
            continue
        attributes = [attr for attr, _ in union]
        if len(set(attributes)) != len(attributes):
            continue  # two values of the same attribute
        if any(
            union - frozenset([item]) not in frequent_set for item in union
        ):
            continue  # an immediate subset is infrequent
        candidates.add(union)
    return candidates


class AprioriPatternMiner:
    """Frequent-pattern miner implementing the ``PatternMiner`` protocol.

    :meth:`mine` returns full-width patterns (itemsets covering every
    configured attribute) so it is a drop-in replacement for the SQL
    miner inside ``extractPatterns``.  :meth:`correlations` additionally
    surfaces the sub-width itemsets — the attribute-pair correlations the
    paper says plain SQL misses — as advisories for the human review step.
    """

    def mine(self, log: AuditLog, config: MiningConfig) -> tuple[Pattern, ...]:
        """Mine full-width patterns (drop-in for the SQL miner)."""
        if len(log) == 0:
            return ()
        transactions = transactions_from_log(log, config.attributes)
        width = len(config.attributes)
        itemsets = apriori(transactions, config.min_support, max_size=width)
        users = self._users_per_itemset(log, config.attributes, itemsets)
        patterns = []
        for itemset in itemsets:
            if itemset.size != width:
                continue
            distinct_users = len(users[itemset.items])
            if distinct_users < config.min_distinct_users:
                continue
            patterns.append(
                Pattern(
                    rule=itemset.to_rule(),
                    support=itemset.support,
                    distinct_users=distinct_users,
                )
            )
        patterns.sort(key=lambda p: (-p.support, str(p.rule)))
        return tuple(patterns)

    def correlations(
        self, log: AuditLog, config: MiningConfig
    ) -> tuple[FrequentItemset, ...]:
        """Frequent itemsets *below* full width — the SQL-invisible ones."""
        if len(log) == 0:
            return ()
        transactions = transactions_from_log(log, config.attributes)
        width = len(config.attributes)
        itemsets = apriori(transactions, config.min_support, max_size=width)
        return tuple(itemset for itemset in itemsets if 1 < itemset.size < width)

    @staticmethod
    def _users_per_itemset(
        log: AuditLog,
        attributes: tuple[str, ...],
        itemsets: tuple[FrequentItemset, ...],
    ) -> dict[ItemSet, set[str]]:
        users: dict[ItemSet, set[str]] = defaultdict(set)
        wanted = {itemset.items for itemset in itemsets}
        for entry in log:
            transaction = frozenset(
                (attribute, str(getattr(entry, attribute))) for attribute in attributes
            )
            for items in wanted:
                if items <= transaction:
                    users[items].add(entry.user)
        return users
