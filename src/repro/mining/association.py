"""Association rules over frequent itemsets [Agrawal & Srikant 1994].

Given the frequent itemsets of a practice log, this module derives rules
``X => Y`` (X, Y disjoint, X ∪ Y frequent) with the classic metrics:

- **support**: fraction of transactions containing X ∪ Y;
- **confidence**: support(X ∪ Y) / support(X);
- **lift**: confidence / support(Y) — how much more likely Y is given X
  than in general (1.0 means independence).

In PRIMA these rules read as workflow advisories, e.g. ``{purpose=
registration, data=referral} => {authorized=nurse}`` with confidence 0.95:
"when referral data is used for registration, it is almost always a
nurse", which tells the privacy officer *which role* a candidate policy
statement should name.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import MiningError
from repro.mining.apriori import FrequentItemset, ItemSet


@dataclass(frozen=True, slots=True)
class AssociationRule:
    """One mined implication with its metrics."""

    antecedent: ItemSet
    consequent: ItemSet
    support: float
    confidence: float
    lift: float

    def __str__(self) -> str:
        left = ", ".join(f"{a}={v}" for a, v in sorted(self.antecedent))
        right = ", ".join(f"{a}={v}" for a, v in sorted(self.consequent))
        return (
            f"{{{left}}} => {{{right}}} "
            f"(supp={self.support:.3f}, conf={self.confidence:.3f}, lift={self.lift:.2f})"
        )


def derive_rules(
    itemsets: tuple[FrequentItemset, ...] | list[FrequentItemset],
    transaction_count: int,
    min_confidence: float = 0.6,
) -> tuple[AssociationRule, ...]:
    """Generate association rules from ``itemsets``.

    ``transaction_count`` is the size of the mined log (needed to turn
    absolute supports into fractions).  Rules are sorted by confidence
    then support, descending.
    """
    if transaction_count <= 0:
        raise MiningError("transaction_count must be positive")
    if not 0.0 < min_confidence <= 1.0:
        raise MiningError(f"min_confidence must be in (0, 1], got {min_confidence}")
    support_of: dict[ItemSet, int] = {fi.items: fi.support for fi in itemsets}
    rules: list[AssociationRule] = []
    for itemset in itemsets:
        if itemset.size < 2:
            continue
        items = sorted(itemset.items)
        for antecedent_size in range(1, itemset.size):
            for antecedent_items in itertools.combinations(items, antecedent_size):
                antecedent = frozenset(antecedent_items)
                consequent = itemset.items - antecedent
                antecedent_support = support_of.get(antecedent)
                consequent_support = support_of.get(consequent)
                if antecedent_support is None or consequent_support is None:
                    # Anti-monotonicity guarantees subsets of a frequent
                    # itemset are frequent, so this only happens when the
                    # caller passed a truncated itemset collection.
                    continue
                confidence = itemset.support / antecedent_support
                if confidence < min_confidence:
                    continue
                support = itemset.support / transaction_count
                lift = confidence / (consequent_support / transaction_count)
                rules.append(
                    AssociationRule(
                        antecedent=antecedent,
                        consequent=consequent,
                        support=support,
                        confidence=confidence,
                        lift=lift,
                    )
                )
    rules.sort(key=lambda r: (-r.confidence, -r.support, str(r)))
    return tuple(rules)
