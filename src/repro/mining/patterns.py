"""Pattern types shared by the mining back-ends.

A :class:`Pattern` is a candidate policy rule discovered in the practice
log, annotated with the evidence the paper's Algorithm 4 collects: how
often it occurred (support, the ``f`` threshold's subject) and how many
distinct users produced it (the ``c`` condition's subject).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.audit.log import AuditLog
from repro.audit.schema import RULE_ATTRIBUTES
from repro.errors import MiningError
from repro.policy.rule import Rule


@dataclass(frozen=True, slots=True)
class MiningConfig:
    """Knobs of Algorithm 4.

    ``attributes``
        The audit-schema subset ``A`` to analyse (default: the rule
        attributes ``(data, purpose, authorized)`` of Section 5).
    ``min_support``
        The paper's threshold frequency ``f`` (default 5).  **Inclusive**:
        a pattern occurring exactly ``f`` times passes.  Algorithm 5 as
        printed says ``COUNT(*) > f``, but the worked example accepts the
        ``Referral:Registration:Nurse`` pattern on exactly 5 occurrences,
        so the narrative semantics ("occurred at least f times") win here.
    ``min_distinct_users``
        The paper's condition ``c`` generalised to a count: the default 2
        encodes ``COUNT(DISTINCT user) > 1``.
    ``index_practice``
        When True, the SQL miner creates the standard audit-column
        indexes on its throwaway ``practice`` materialisation.  Off by
        default: Algorithm 5 reads every row exactly once (a grouped
        scan), so index build time is pure overhead unless the caller
        reuses the table for point lookups.
    """

    attributes: tuple[str, ...] = RULE_ATTRIBUTES
    min_support: int = 5
    min_distinct_users: int = 2
    index_practice: bool = False

    def __post_init__(self) -> None:
        if not self.attributes:
            raise MiningError("mining needs at least one attribute")
        if self.min_support < 1:
            raise MiningError(f"min_support must be >= 1, got {self.min_support}")
        if self.min_distinct_users < 1:
            raise MiningError(
                f"min_distinct_users must be >= 1, got {self.min_distinct_users}"
            )


@dataclass(frozen=True, slots=True)
class Pattern:
    """One mined candidate rule with its evidence."""

    rule: Rule
    support: int
    distinct_users: int

    def __str__(self) -> str:
        values = ":".join(term.value for term in self.rule.terms)
        return f"{values} (support={self.support}, users={self.distinct_users})"


class PatternMiner(Protocol):
    """The pluggable back-end interface of ``extractPatterns``.

    The paper notes the data-analysis routine "has a well-defined
    interface that allows the extractPatterns algorithm to evolve"; this
    protocol is that interface.  Implementations: the SQL GROUP BY miner
    (Algorithm 5) and the Apriori miner (the Section 5 future-work
    proposal).
    """

    def mine(self, log: AuditLog, config: MiningConfig) -> tuple[Pattern, ...]:
        """Return candidate patterns found in the practice log."""
        ...  # pragma: no cover - protocol
