"""Temporal pattern mining — conditions discovered from the audit log.

Plain extractPatterns answers *what* practice recurs; this module also
answers *when*.  If a mined pattern's occurrences concentrate inside a
narrow daily window (the night shift being the clinical archetype), the
right policy amendment is a :class:`~repro.policy.conditions.ConditionalRule`
scoped to that window rather than a blanket grant — a tighter rule means
more privacy for the patient, which is the whole point of the paper.

The detector: for each mined pattern, build a 24-bin hour histogram of
its occurrences and find the shortest circular window of span at most
``max_span`` containing at least ``min_concentration`` of them.  Only
windows genuinely shorter than a day qualify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.audit.entry import AuditEntry
from repro.audit.log import AuditLog
from repro.errors import MiningError
from repro.mining.patterns import MiningConfig, Pattern, PatternMiner
from repro.mining.sql_patterns import SqlPatternMiner
from repro.policy.conditions import ConditionalRule, TimeWindow

#: Maps an audit entry to its hour of day (0-23).
HourExtractor = Callable[[AuditEntry], int]


def hour_extractor(ticks_per_hour: int = 1, start_hour: int = 0) -> HourExtractor:
    """Build the default extractor for logical-clock logs.

    The synthetic workloads use a monotone tick counter; with
    ``ticks_per_hour`` ticks to the hour, tick ``t`` falls in hour
    ``(start_hour + t // ticks_per_hour) % 24``.
    """
    if ticks_per_hour < 1:
        raise MiningError(f"ticks_per_hour must be >= 1, got {ticks_per_hour}")

    def extract(entry: AuditEntry) -> int:
        return (start_hour + entry.time // ticks_per_hour) % 24

    return extract


@dataclass(frozen=True, slots=True)
class TemporalPattern:
    """A mined pattern with its concentrated time window."""

    pattern: Pattern
    window: TimeWindow
    concentration: float  # fraction of occurrences inside the window

    def to_conditional_rule(self) -> ConditionalRule:
        """Lift into a time-windowed policy rule."""
        return ConditionalRule(rule=self.pattern.rule, window=self.window)

    def __str__(self) -> str:
        return f"{self.pattern} @ {self.window} ({self.concentration:.0%})"


def _best_window(
    histogram: list[int], max_span: int, min_concentration: float
) -> tuple[TimeWindow, float] | None:
    """Shortest circular window meeting the concentration target."""
    total = sum(histogram)
    if total == 0:
        return None
    best: tuple[int, int, int] | None = None  # (span, -count, start)
    for span in range(1, max_span + 1):
        for start in range(24):
            count = sum(histogram[(start + offset) % 24] for offset in range(span))
            if count / total >= min_concentration:
                key = (span, -count, start)
                if best is None or key < best:
                    best = key
        if best is not None:
            break  # spans are tried shortest-first; the first hit wins
    if best is None:
        return None
    span, negative_count, start = best
    end = start + span if start + span <= 24 else (start + span) % 24
    return TimeWindow(start, end), -negative_count / total


def mine_temporal_patterns(
    log: AuditLog,
    config: MiningConfig | None = None,
    hour_of: HourExtractor | None = None,
    miner: PatternMiner | None = None,
    max_span: int = 12,
    min_concentration: float = 0.9,
) -> tuple[TemporalPattern, ...]:
    """Find patterns whose occurrences concentrate in a daily window.

    ``log`` is the practice log (Algorithm 3's output).  Patterns come
    from the regular miner (SQL by default) under ``config``; each is
    then tested for temporal concentration.  Patterns spread across the
    day produce no :class:`TemporalPattern` — they are plain-rule
    candidates, not conditional ones.
    """
    if not 0.0 < min_concentration <= 1.0:
        raise MiningError(
            f"min_concentration must be in (0, 1], got {min_concentration}"
        )
    if not 1 <= max_span <= 23:
        raise MiningError(f"max_span must be in 1..23, got {max_span}")
    chosen_config = config or MiningConfig()
    extract = hour_of or hour_extractor()
    patterns = (miner or SqlPatternMiner()).mine(log, chosen_config)
    if not patterns:
        return ()

    histograms: dict = {pattern.rule: [0] * 24 for pattern in patterns}
    for entry in log:
        rule = entry.to_rule(chosen_config.attributes)
        histogram = histograms.get(rule)
        if histogram is not None:
            histogram[extract(entry)] += 1

    found: list[TemporalPattern] = []
    for pattern in patterns:
        result = _best_window(
            histograms[pattern.rule], max_span, min_concentration
        )
        if result is None:
            continue
        window, concentration = result
        found.append(
            TemporalPattern(
                pattern=pattern, window=window, concentration=concentration
            )
        )
    return tuple(found)
