"""Stress scenario programs over a generated corpus.

:class:`CorpusEnvironment` implements the refinement loop's
``ClinicalEnvironment`` protocol (``simulate_round(round_index, store) ->
AuditLog``) at corpus scale.  One round is one day of shift-structured
traffic mixing:

``workflow``
    Weighted draws from the corpus's true workflow, emitted during the
    acting user's rostered shift.
``surge``
    Break-the-glass surges: emergency-department clinicians pulling
    charts for ``emergency_care`` at any hour.
``handoff``
    Shift handoffs: incoming nurses reviewing notes/vitals at the shift
    boundary under the ``shift_handoff`` purpose.
``referral``
    Multi-department referral chains: a consulting specialist in another
    department works a received referral under ``referral_consult``.
``noise``
    One-off idiosyncratic-but-legitimate accesses.
``misuse``
    Injected abuse with **ground-truth violation labels**, split across
    three campaigns: a ``colluding_ring`` of billing clerks repeatedly
    pulling specially-protected records under a plausible billing purpose
    (engineered to clear the miner's support *and* distinct-user
    thresholds — the case support-only triage cannot catch), a
    ``lone_snooper``, and an ``offhours_export`` by records clerks
    outside their rostered shifts.

Legitimate traffic *accrues clinical relations* into a
:class:`~repro.explain.relations.ClinicalState` (treatments, referrals,
shifts, ...) as it is planned — subject to ``relation_noise`` — while
misuse never does.  Ground truth is stamped on every emitted entry
(``truth``) and additionally journalled as :class:`LabelRecord` rows with
global trace indexes and the originating scenario, which is what the E23
triage experiment scores against.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro import obs
from repro.audit.log import AuditLog, make_entry
from repro.audit.schema import AccessStatus
from repro.corpus.generate import PolicyCorpus
from repro.corpus.hipaa import (
    ENCOUNTER_LEAVES,
    IDENTITY_LEAVES,
    NURSING_ROLES,
    PHYSICIAN_ROLES,
    RESULT_LEAVES,
    SENSITIVE_LEAVES,
    department_record_leaf,
)
from repro.errors import CorpusError
from repro.explain.relations import ClinicalState, hour_in_shift
from repro.policy.grounding import Grounder
from repro.policy.rule import Rule
from repro.policy.store import PolicyStore
from repro.workload.entities import StaffMember

#: The daily shift roster, assigned round-robin over the staff list.
SHIFT_WINDOWS: tuple[tuple[int, int], ...] = ((7, 15), (15, 23), (23, 7))

#: Scenario kinds considered legitimate (labelled ``practice`` when they
#: surface as exceptions).
LEGITIMATE_KINDS: tuple[str, ...] = (
    "workflow",
    "surge",
    "handoff",
    "referral",
    "noise",
)

#: Injected-misuse campaign kinds (labelled ``violation``).
MISUSE_KINDS: tuple[str, ...] = ("colluding_ring", "lone_snooper", "offhours_export")


@dataclass(frozen=True, slots=True)
class LabelRecord:
    """Ground truth for one labelled trace entry.

    ``index`` is the entry's global position in the cumulative corpus
    trace (counting *all* entries, labelled or not), so labels join back
    to the JSONL trace by line number.
    """

    index: int
    time: int
    user: str
    scenario: str
    truth: str

    def to_dict(self) -> dict:
        """JSON-ready encoding."""
        return {
            "index": self.index,
            "time": self.time,
            "user": self.user,
            "scenario": self.scenario,
            "truth": self.truth,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LabelRecord":
        """Rebuild a label from a :meth:`to_dict` encoding."""
        try:
            return cls(
                index=int(payload["index"]),
                time=int(payload["time"]),
                user=payload["user"],
                scenario=payload["scenario"],
                truth=payload["truth"],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CorpusError(f"malformed label payload: {exc}") from exc


@dataclass(frozen=True, slots=True)
class _PlannedAccess:
    """One access resolved at plan time (before chronological sorting)."""

    tick: int
    kind: str
    user: str
    role: str
    data: str
    purpose: str


@dataclass
class CorpusTrace:
    """A simulated corpus trace plus its ground truth and joinable state."""

    log: AuditLog
    labels: tuple[LabelRecord, ...]
    state: ClinicalState
    violations: int = 0
    practices: int = 0

    def __post_init__(self) -> None:
        self.violations = sum(1 for lab in self.labels if lab.truth == "violation")
        self.practices = sum(1 for lab in self.labels if lab.truth == "practice")


def _shift_hours(window: tuple[int, int]) -> tuple[int, ...]:
    """The wall hours contained in a (wrapping) shift window."""
    return tuple(hour for hour in range(24) if hour_in_shift(window[0], window[1], hour))


class CorpusEnvironment:
    """Generates one day of corpus-scale traffic per round."""

    def __init__(self, corpus: PolicyCorpus) -> None:
        self.corpus = corpus
        spec = corpus.spec
        self._rng = random.Random(spec.seed + 101)
        self._grounder = Grounder(corpus.vocabulary)
        self._next_day = 0
        self._emitted = 0
        self.labels: list[LabelRecord] = []
        hospital = corpus.hospital
        if not hospital.practices:
            raise CorpusError("the corpus hospital has no workflow practices")
        self._practices = tuple(hospital.practices)
        self._practice_weights = [p.weight for p in self._practices]
        data_tree = corpus.vocabulary.tree_for("data")
        purpose_tree = corpus.vocabulary.tree_for("purpose")
        self._data_values = data_tree.leaves() if data_tree else ("record",)
        purpose_leaves = purpose_tree.leaves() if purpose_tree else ("care",)
        # "telemarketing" is reserved for the lone snooper, mirroring the
        # base generator's convention: no legitimate user types it in.
        self._purpose_values = tuple(
            purpose for purpose in purpose_leaves if purpose != "telemarketing"
        )

        self.state = ClinicalState(ticks_per_hour=spec.ticks_per_hour)
        staff = hospital.all_staff()
        if not staff:
            raise CorpusError("the corpus hospital has no staff")
        for position, member in enumerate(staff):
            window = SHIFT_WINDOWS[position % len(SHIFT_WINDOWS)]
            self.state.set_shift(member.user_id, window[0], window[1])
            self.state.set_department(member.user_id, member.department)
        for corpus_rule in corpus.permit_rules():
            purpose = corpus_rule.rule.value_of("purpose")
            if purpose is None:  # pragma: no cover - rulebook rules are 3-term
                continue
            for leaf in corpus.vocabulary.ground_values("purpose", purpose):
                self.state.add_role_purpose(corpus_rule.role, leaf)

        clinical = corpus.clinical_departments()
        self._clinical_departments = clinical
        self._surge_department = "emergency" if "emergency" in clinical else clinical[0]
        self._surge_staff = self._department_staff(
            self._surge_department, PHYSICIAN_ROLES + NURSING_ROLES
        )
        self._nursing_by_department = {
            department: self._department_staff(department, NURSING_ROLES)
            for department in clinical
        }
        self._specialists_by_department = {
            department: self._department_staff(department, ("consulting_specialist",))
            for department in clinical
        }
        ring_pool = hospital.staff_with_role("billing_clerk")
        self._ring_users = ring_pool[: min(3, len(ring_pool))]
        snoop_pool = hospital.staff_with_role("registered_nurse") or staff
        self._snooper = self._rng.choice(snoop_pool)
        export_pool = hospital.staff_with_role("records_clerk")
        self._export_users = export_pool[: min(2, len(export_pool))]
        self._handoff_data = ENCOUNTER_LEAVES + ("vital_signs",)
        self._referral_data = RESULT_LEAVES + ("referral",)
        self._ring_data = ("psychiatry_note", "substance_abuse_record", "hiv_status")
        self._snoop_data = IDENTITY_LEAVES + SENSITIVE_LEAVES

    # ------------------------------------------------------------------
    # the ClinicalEnvironment protocol
    # ------------------------------------------------------------------
    def simulate_round(self, round_index: int, store: PolicyStore) -> AuditLog:
        """Simulate one day of corpus traffic under ``store``."""
        reg = obs.get_registry()
        with reg.span("repro_corpus_round_seconds"):
            covered = self._covered_rules(store)
            day = self._next_day
            self._next_day += 1
            spec = self.corpus.spec
            planned: list[_PlannedAccess] = []
            for _ in range(spec.accesses_per_round):
                draw = self._rng.random()
                if draw < spec.misuse_rate:
                    planned.append(self._plan_misuse(day))
                elif draw < spec.misuse_rate + spec.surge_rate:
                    planned.append(self._plan_surge(day))
                elif draw < spec.misuse_rate + spec.surge_rate + spec.handoff_rate:
                    planned.append(self._plan_handoff(day))
                elif draw < (
                    spec.misuse_rate
                    + spec.surge_rate
                    + spec.handoff_rate
                    + spec.referral_rate
                ):
                    planned.append(self._plan_referral(day))
                elif draw < (
                    spec.misuse_rate
                    + spec.surge_rate
                    + spec.handoff_rate
                    + spec.referral_rate
                    + spec.noise_rate
                ):
                    planned.append(self._plan_noise(day))
                else:
                    planned.append(self._plan_workflow(day))
            planned.sort(key=lambda access: access.tick)
            log = AuditLog(name=f"{self.corpus.spec.name}_day_{day}")
            for access in planned:
                log.append(self._emit(access, covered))
            reg.counter("repro_corpus_entries_total").inc(len(log))
        return log

    # ------------------------------------------------------------------
    # planners (one per traffic kind)
    # ------------------------------------------------------------------
    def _plan_workflow(self, day: int) -> _PlannedAccess:
        practice = self._rng.choices(
            self._practices, weights=self._practice_weights, k=1
        )[0]
        member = self._rng.choice(
            self.corpus.hospital.staff_with_role(practice.role)
        )
        hour = self._rng.choice(self._member_hours(member))
        self._record_relation(member, practice.data)
        return _PlannedAccess(
            tick=self._tick(day, hour),
            kind="workflow",
            user=member.user_id,
            role=member.role,
            data=practice.data,
            purpose=practice.purpose,
        )

    def _plan_surge(self, day: int) -> _PlannedAccess:
        member = self._rng.choice(self._surge_staff)
        data = self._rng.choice(
            ENCOUNTER_LEAVES
            + RESULT_LEAVES
            + SENSITIVE_LEAVES
            + (department_record_leaf(self._surge_department),)
        )
        self._record_relation(member, data)
        return _PlannedAccess(
            tick=self._tick(day, self._rng.randrange(24)),
            kind="surge",
            user=member.user_id,
            role=member.role,
            data=data,
            purpose="emergency_care",
        )

    def _plan_handoff(self, day: int) -> _PlannedAccess:
        department = self._rng.choice(self._clinical_departments)
        member = self._rng.choice(self._nursing_by_department[department])
        shift = self.state.shifts[member.user_id]
        data = self._rng.choice(
            self._handoff_data + (department_record_leaf(department),)
        )
        self._record_relation(member, data)
        return _PlannedAccess(
            tick=self._tick(day, shift[0]),
            kind="handoff",
            user=member.user_id,
            role=member.role,
            data=data,
            purpose="shift_handoff",
        )

    def _plan_referral(self, day: int) -> _PlannedAccess:
        if len(self._clinical_departments) >= 2:
            _, target = self._rng.sample(self._clinical_departments, 2)
        else:
            target = self._clinical_departments[0]
        member = self._rng.choice(self._specialists_by_department[target])
        data = self._rng.choice(self._referral_data)
        if self._rng.random() >= self.corpus.spec.relation_noise:
            self.state.add_referral(member.user_id, data)
        hour = self._rng.choice(self._member_hours(member))
        return _PlannedAccess(
            tick=self._tick(day, hour),
            kind="referral",
            user=member.user_id,
            role=member.role,
            data=data,
            purpose="referral_consult",
        )

    def _plan_noise(self, day: int) -> _PlannedAccess:
        member = self._rng.choice(self.corpus.hospital.all_staff())
        return _PlannedAccess(
            tick=self._tick(day, self._rng.randrange(24)),
            kind="noise",
            user=member.user_id,
            role=member.role,
            data=self._rng.choice(self._data_values),
            purpose=self._rng.choice(self._purpose_values),
        )

    def _plan_misuse(self, day: int) -> _PlannedAccess:
        draw = self._rng.random()
        if draw < 0.5 and self._ring_users:
            member = self._rng.choice(self._ring_users)
            return _PlannedAccess(
                tick=self._tick(day, self._rng.choice(self._member_hours(member))),
                kind="colluding_ring",
                user=member.user_id,
                role=member.role,
                data=self._rng.choice(self._ring_data),
                purpose="claims_processing",
            )
        if draw < 0.8 and self._export_users:
            member = self._rng.choice(self._export_users)
            shift = self.state.shifts[member.user_id]
            off_hours = tuple(
                hour
                for hour in range(24)
                if not hour_in_shift(shift[0], shift[1], hour)
            )
            return _PlannedAccess(
                tick=self._tick(day, self._rng.choice(off_hours)),
                kind="offhours_export",
                user=member.user_id,
                role=member.role,
                data=self._rng.choice(RESULT_LEAVES),
                purpose="records_management",
            )
        member = self._snooper
        return _PlannedAccess(
            tick=self._tick(day, self._rng.randrange(24)),
            kind="lone_snooper",
            user=member.user_id,
            role=member.role,
            data=self._rng.choice(self._snoop_data),
            purpose="telemarketing",
        )

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def _emit(self, access: _PlannedAccess, covered: set[Rule]):
        rule = Rule.of(
            data=access.data, purpose=access.purpose, authorized=access.role
        )
        sanctioned = rule in covered
        if sanctioned:
            truth = ""
        elif access.kind in MISUSE_KINDS:
            truth = "violation"
        else:
            truth = "practice"
        entry = make_entry(
            time=access.tick,
            user=access.user,
            data=access.data,
            purpose=access.purpose,
            authorized=access.role,
            status=AccessStatus.REGULAR if sanctioned else AccessStatus.EXCEPTION,
            truth=truth,
        )
        if truth:
            self.labels.append(
                LabelRecord(
                    index=self._emitted,
                    time=access.tick,
                    user=access.user,
                    scenario=access.kind,
                    truth=truth,
                )
            )
        self._emitted += 1
        return entry

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _tick(self, day: int, hour: int) -> int:
        ticks = self.corpus.spec.ticks_per_hour
        return (day * 24 + hour) * ticks + self._rng.randrange(ticks)

    def _member_hours(self, member: StaffMember) -> tuple[int, ...]:
        return _shift_hours(self.state.shifts[member.user_id])

    def _record_relation(self, member: StaffMember, data: str) -> None:
        """Accrue the supporting relation for a legitimate access.

        Clinical staff gain a *treatment* relationship, everyone else a
        work *assignment*; ``relation_noise`` of accesses record nothing,
        modelling charting lag.
        """
        if self._rng.random() < self.corpus.spec.relation_noise:
            return
        if member.role in PHYSICIAN_ROLES or member.role in NURSING_ROLES:
            self.state.add_treatment(member.user_id, data)
        else:
            self.state.add_assignment(member.user_id, data)

    def _department_staff(
        self, department: str, roles: tuple[str, ...]
    ) -> tuple[StaffMember, ...]:
        for candidate in self.corpus.hospital.departments:
            if candidate.name == department:
                return tuple(
                    member for member in candidate.staff if member.role in roles
                )
        raise CorpusError(f"corpus hospital has no department {department!r}")

    def _covered_rules(self, store: PolicyStore) -> set[Rule]:
        """Ground rules the current store covers."""
        covered: set[Rule] = set()
        for rule in store:
            covered.update(self._grounder.ground_rules(rule))
        return covered


def simulate_corpus_trace(
    corpus: PolicyCorpus, rounds: int | None = None
) -> CorpusTrace:
    """Run the scenario engine against the corpus's own documented store.

    The store is held fixed (no refinement), producing the canonical
    labelled trace persisted in a corpus bundle.  ``rounds`` overrides
    ``corpus.spec.rounds`` when given.
    """
    environment = CorpusEnvironment(corpus)
    total = AuditLog(name=corpus.spec.name)
    for round_index in range(rounds if rounds is not None else corpus.spec.rounds):
        total.extend(environment.simulate_round(round_index, corpus.store))
    return CorpusTrace(
        log=total,
        labels=tuple(environment.labels),
        state=environment.state,
    )
