"""Seeded generation of HIPAA-scale policy corpora.

:func:`generate_corpus` expands the literal rulebook templates in
:mod:`repro.corpus.hipaa` into a :class:`PolicyCorpus`: a deep vocabulary,
a fully-staffed hospital, hundreds of modal rules (permit /
require-consent / deny, each with a HIPAA citation), a true workflow
instantiated from the permit rules, and a documented
:class:`~repro.policy.store.PolicyStore` covering part of it.

Everything is driven by one ``random.Random(spec.seed)`` stream over
deterministically-ordered inputs (literal tables, roster order), so the
same spec always produces the same corpus — byte-identical once
serialised, which is what the E23 acceptance check and the CI determinism
guard verify.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro import obs
from repro.corpus.hipaa import (
    BUSINESS_OFFICE_ROLES,
    CLINICAL_DEPARTMENT_ROLES,
    CLINICAL_DEPARTMENTS,
    COMPLIANCE_OFFICE_ROLES,
    DEPARTMENT_RULEBOOK,
    DEPARTMENT_RULE_ROLES,
    MODALITIES,
    ROLE_RULEBOOK,
    department_record_leaf,
    hipaa_vocabulary,
)
from repro.errors import CorpusError
from repro.policy.parser import format_rule
from repro.policy.rule import Rule
from repro.policy.store import PolicyStore
from repro.vocab.vocabulary import Vocabulary
from repro.workload.entities import Department, Patient, WorkflowPractice
from repro.workload.hospital import HospitalModel

#: Heavy-tailed practice weights per rulebook weight class.
WEIGHT_CLASSES: dict[str, tuple[float, ...]] = {
    "dominant": (20.0, 12.0),
    "routine": (6.0, 3.0),
    "tail": (1.5, 0.5),
}


@dataclass(frozen=True, slots=True)
class CorpusSpec:
    """Knobs of one corpus generation run (all validated, all seeded).

    ``departments`` selects a prefix of
    :data:`~repro.corpus.hipaa.CLINICAL_DEPARTMENTS`; the business and
    compliance offices are always staffed on top.  ``protocol_rules``
    pads the rulebook with leaf-level "departmental protocol" rules
    (ground instantiations of permit templates) so corpus scale is a
    dial, not a constant.  Traffic-mix rates are per-access draws inside
    the scenario engine; ``relation_noise`` is the fraction of legitimate
    accesses that *skip* recording their supporting clinical relation,
    bounding how separable explanations can ever be.
    """

    seed: int = 20260807
    departments: int = 3
    staff_per_role: int = 3
    patients: int = 300
    documented_fraction: float = 0.55
    protocol_rules: int = 40
    rounds: int = 4
    accesses_per_round: int = 4000
    ticks_per_hour: int = 20
    noise_rate: float = 0.03
    misuse_rate: float = 0.05
    surge_rate: float = 0.04
    handoff_rate: float = 0.06
    referral_rate: float = 0.05
    relation_noise: float = 0.05
    name: str = "hipaa-corpus"

    def __post_init__(self) -> None:
        if not 1 <= self.departments <= len(CLINICAL_DEPARTMENTS):
            raise CorpusError(
                f"departments must be in [1, {len(CLINICAL_DEPARTMENTS)}], "
                f"got {self.departments}"
            )
        if self.staff_per_role < 1 or self.patients < 1:
            raise CorpusError("staff_per_role and patients must be >= 1")
        if not 0.0 <= self.documented_fraction <= 1.0:
            raise CorpusError(
                f"documented_fraction must be in [0, 1], got {self.documented_fraction}"
            )
        if self.protocol_rules < 0:
            raise CorpusError(f"protocol_rules must be >= 0, got {self.protocol_rules}")
        if self.rounds < 1 or self.accesses_per_round < 1:
            raise CorpusError("rounds and accesses_per_round must be >= 1")
        if self.ticks_per_hour < 1:
            raise CorpusError(f"ticks_per_hour must be >= 1, got {self.ticks_per_hour}")
        rates = {
            "noise_rate": self.noise_rate,
            "misuse_rate": self.misuse_rate,
            "surge_rate": self.surge_rate,
            "handoff_rate": self.handoff_rate,
            "referral_rate": self.referral_rate,
            "relation_noise": self.relation_noise,
        }
        for label, rate in rates.items():
            if not 0.0 <= rate < 1.0:
                raise CorpusError(f"{label} must be in [0, 1), got {rate}")
        mix = (
            self.noise_rate
            + self.misuse_rate
            + self.surge_rate
            + self.handoff_rate
            + self.referral_rate
        )
        if mix >= 1.0:
            raise CorpusError(
                f"scenario rates must leave room for workflow traffic, sum={mix:.3f}"
            )

    def to_dict(self) -> dict:
        """JSON-ready encoding (field order is declaration order)."""
        return {
            "seed": self.seed,
            "departments": self.departments,
            "staff_per_role": self.staff_per_role,
            "patients": self.patients,
            "documented_fraction": self.documented_fraction,
            "protocol_rules": self.protocol_rules,
            "rounds": self.rounds,
            "accesses_per_round": self.accesses_per_round,
            "ticks_per_hour": self.ticks_per_hour,
            "noise_rate": self.noise_rate,
            "misuse_rate": self.misuse_rate,
            "surge_rate": self.surge_rate,
            "handoff_rate": self.handoff_rate,
            "referral_rate": self.referral_rate,
            "relation_noise": self.relation_noise,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CorpusSpec":
        """Rebuild a spec from a :meth:`to_dict` encoding."""
        try:
            return cls(**payload)
        except (TypeError, ValueError) as exc:
            raise CorpusError(f"malformed corpus spec payload: {exc}") from exc


@dataclass(frozen=True, slots=True)
class CorpusRule:
    """One modal rule of the corpus rulebook.

    ``rule`` is a (possibly composite) policy rule; ``modality`` is one of
    :data:`~repro.corpus.hipaa.MODALITIES`; ``citation`` names the HIPAA
    provision the rule was extracted from (Alshugran & Dichter's modeling);
    ``weight`` drives how much workflow traffic the rule's practices get.
    """

    rule: Rule
    modality: str
    citation: str
    weight: float

    def __post_init__(self) -> None:
        if self.modality not in MODALITIES:
            raise CorpusError(
                f"modality must be one of {MODALITIES}, got {self.modality!r}"
            )
        if self.weight <= 0:
            raise CorpusError(f"rule weights must be positive, got {self.weight}")

    @property
    def role(self) -> str:
        """The role (``authorized`` value) the rule applies to."""
        value = self.rule.value_of("authorized")
        return value if value is not None else "staff"

    def to_dict(self) -> dict:
        """JSON-ready encoding (rule as the policy DSL)."""
        return {
            "rule": format_rule(self.rule),
            "modality": self.modality,
            "citation": self.citation,
            "weight": self.weight,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CorpusRule":
        """Rebuild a corpus rule from a :meth:`to_dict` encoding."""
        from repro.policy.parser import parse_rule

        try:
            return cls(
                rule=parse_rule(payload["rule"]),
                modality=payload["modality"],
                citation=payload["citation"],
                weight=float(payload["weight"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CorpusError(f"malformed corpus rule payload: {exc}") from exc


@dataclass
class PolicyCorpus:
    """One generated corpus: vocabulary, hospital, modal rulebook, store."""

    spec: CorpusSpec
    vocabulary: Vocabulary
    hospital: HospitalModel
    rules: tuple[CorpusRule, ...] = field(default_factory=tuple)
    store: PolicyStore = field(default_factory=PolicyStore)

    def rules_with_modality(self, modality: str) -> tuple[CorpusRule, ...]:
        """The rulebook subset carrying ``modality`` (definition order)."""
        if modality not in MODALITIES:
            raise CorpusError(
                f"modality must be one of {MODALITIES}, got {modality!r}"
            )
        return tuple(rule for rule in self.rules if rule.modality == modality)

    def permit_rules(self) -> tuple[CorpusRule, ...]:
        """The permitted subset — the source of the true workflow."""
        return self.rules_with_modality("permit")

    def deny_rules(self) -> tuple[CorpusRule, ...]:
        """The denied subset — what misuse campaigns transgress."""
        return self.rules_with_modality("deny")

    def consent_rules(self) -> tuple[CorpusRule, ...]:
        """The require-consent subset."""
        return self.rules_with_modality("require_consent")

    def clinical_departments(self) -> tuple[str, ...]:
        """The clinical department names this corpus staffs."""
        return CLINICAL_DEPARTMENTS[: self.spec.departments]


def _expand_rulebook(
    spec: CorpusSpec, vocabulary: Vocabulary, rng: random.Random
) -> tuple[CorpusRule, ...]:
    """Expand the literal templates into the corpus rulebook."""
    rules: list[CorpusRule] = []
    seen: set[tuple[Rule, str]] = set()

    def push(rule: Rule, modality: str, citation: str, weight_class: str) -> None:
        key = (rule, modality)
        if key in seen:
            return
        seen.add(key)
        weight = rng.choice(WEIGHT_CLASSES[weight_class])
        rules.append(
            CorpusRule(
                rule=rule,
                modality=modality,
                citation=f"45 CFR {citation}",
                weight=weight,
            )
        )

    for role, templates in ROLE_RULEBOOK.items():
        for data, purpose, modality, citation, weight_class in templates:
            push(
                Rule.of(data=data, purpose=purpose, authorized=role),
                modality,
                citation,
                weight_class,
            )
    for department in CLINICAL_DEPARTMENTS[: spec.departments]:
        leaf = department_record_leaf(department)
        for role in DEPARTMENT_RULE_ROLES:
            for _, purpose, modality, citation, weight_class in DEPARTMENT_RULEBOOK:
                push(
                    Rule.of(data=leaf, purpose=purpose, authorized=role),
                    modality,
                    citation,
                    weight_class,
                )

    # Leaf-level "departmental protocol" rules: ground instantiations of
    # permit templates, padding the rulebook to the requested scale.
    permits = [rule for rule in rules if rule.modality == "permit"]
    attempts = 0
    added = 0
    while added < spec.protocol_rules and attempts < spec.protocol_rules * 20:
        attempts += 1
        template = rng.choice(permits)
        data = template.rule.value_of("data")
        purpose = template.rule.value_of("purpose")
        if data is None or purpose is None:  # pragma: no cover - templates are 3-term
            continue
        ground = Rule.of(
            data=rng.choice(vocabulary.ground_values("data", data)),
            purpose=rng.choice(vocabulary.ground_values("purpose", purpose)),
            authorized=template.role,
        )
        key = (ground, "permit")
        if key in seen:
            continue
        seen.add(key)
        rules.append(
            CorpusRule(
                rule=ground,
                modality="permit",
                citation=template.citation,
                weight=rng.choice(WEIGHT_CLASSES["tail"]),
            )
        )
        added += 1
    return tuple(rules)


def _build_hospital(spec: CorpusSpec, vocabulary: Vocabulary) -> HospitalModel:
    """Staff the corpus hospital (clinical depts + business/compliance)."""
    hospital = HospitalModel(name=spec.name, vocabulary=vocabulary)
    rosters: list[tuple[str, tuple[str, ...]]] = [
        (department, CLINICAL_DEPARTMENT_ROLES)
        for department in CLINICAL_DEPARTMENTS[: spec.departments]
    ]
    rosters.append(("business_office", BUSINESS_OFFICE_ROLES))
    rosters.append(("compliance_office", COMPLIANCE_OFFICE_ROLES))
    for name, roles in rosters:
        department = Department(name)
        for role in roles:
            for index in range(spec.staff_per_role):
                department.add_staff(f"{role}_{name}_{index:02d}", role)
        hospital.departments.append(department)
    hospital.patients = [
        Patient(f"patient_{index:05d}") for index in range(spec.patients)
    ]
    return hospital


def _instantiate_workflow(
    corpus_rules: tuple[CorpusRule, ...],
    vocabulary: Vocabulary,
    hospital: HospitalModel,
    rng: random.Random,
) -> None:
    """Turn permit rules into the hospital's leaf-level true workflow."""
    for corpus_rule in corpus_rules:
        if corpus_rule.modality != "permit":
            continue
        data = corpus_rule.rule.value_of("data")
        purpose = corpus_rule.rule.value_of("purpose")
        if data is None or purpose is None:  # pragma: no cover - 3-term rules
            continue
        data_leaves = vocabulary.ground_values("data", data)
        purpose_leaves = vocabulary.ground_values("purpose", purpose)
        if corpus_rule.weight >= 10.0:
            instances = 3
        elif corpus_rule.weight >= 2.0:
            instances = 2
        else:
            instances = 1
        for _ in range(instances):
            hospital.add_practice(
                WorkflowPractice(
                    data=rng.choice(data_leaves),
                    purpose=rng.choice(purpose_leaves),
                    role=corpus_rule.role,
                    weight=corpus_rule.weight / instances,
                )
            )


def _documented_store(
    spec: CorpusSpec, corpus_rules: tuple[CorpusRule, ...], rng: random.Random
) -> PolicyStore:
    """Seed the documented store from the heaviest permit rules.

    Mirrors :meth:`HospitalModel.documented_store`: the officer documents
    the common cases first (weight-ranked prefix) plus a couple of random
    tail rules, except here the documented artifacts are the *composite*
    rulebook rules — coverage must ground them through the deep hierarchy.
    """
    permits = [rule for rule in corpus_rules if rule.modality == "permit"]
    ranked = sorted(
        permits, key=lambda rule: (-rule.weight, format_rule(rule.rule))
    )
    keep = round(len(ranked) * spec.documented_fraction)
    store = PolicyStore(f"{spec.name}-store")
    for corpus_rule in ranked[:keep]:
        store.add(
            corpus_rule.rule,
            added_by="privacy-office",
            origin="hipaa-rulebook",
            note=corpus_rule.citation,
        )
    tail = ranked[keep:]
    if tail and keep:
        for corpus_rule in rng.sample(tail, k=min(2, len(tail))):
            store.add(
                corpus_rule.rule,
                added_by="privacy-office",
                origin="hipaa-rulebook",
                note=corpus_rule.citation,
            )
    return store


def generate_corpus(spec: CorpusSpec | None = None) -> PolicyCorpus:
    """Generate the full corpus for ``spec`` (deterministic in the seed)."""
    spec = spec or CorpusSpec()
    reg = obs.get_registry()
    with reg.span("repro_corpus_generate_seconds"):
        departments = CLINICAL_DEPARTMENTS[: spec.departments]
        vocabulary = hipaa_vocabulary(departments)
        rng = random.Random(spec.seed)
        rules = _expand_rulebook(spec, vocabulary, rng)
        hospital = _build_hospital(spec, vocabulary)
        _instantiate_workflow(rules, vocabulary, hospital, rng)
        store = _documented_store(spec, rules, rng)
    reg.counter("repro_corpus_generated_total").inc()
    reg.counter("repro_corpus_rules_total").inc(len(rules))
    return PolicyCorpus(
        spec=spec,
        vocabulary=vocabulary,
        hospital=hospital,
        rules=rules,
        store=store,
    )
