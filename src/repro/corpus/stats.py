"""Corpus bundle statistics and the determinism guard.

``repro corpus stats`` renders the numbers a reviewer needs to trust a
bundle (scale, modality mix, label mix, digest) and — with ``--verify`` —
regenerates the corpus from the manifest's own spec and compares digests,
which is the CI guard for seed determinism.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.corpus.generate import generate_corpus
from repro.corpus.io import LoadedCorpus, load_corpus, save_corpus
from repro.corpus.scenarios import simulate_corpus_trace


@dataclass
class CorpusStats:
    """Summary numbers for one corpus bundle."""

    name: str
    digest: str
    rules_total: int
    rules_by_modality: dict[str, int]
    documented_rules: int
    vocabulary_leaves: dict[str, int]
    staff: int
    patients: int
    practices: int
    entries: int
    exceptions: int
    labels_by_scenario: dict[str, int] = field(default_factory=dict)
    violations: int = 0


def corpus_stats(bundle: LoadedCorpus | str | Path) -> CorpusStats:
    """Compute :class:`CorpusStats` for a bundle (path or loaded)."""
    loaded = bundle if isinstance(bundle, LoadedCorpus) else load_corpus(bundle)
    by_modality: dict[str, int] = {}
    for rule in loaded.rules:
        by_modality[rule.modality] = by_modality.get(rule.modality, 0) + 1
    leaves = {
        tree.attribute: len(tree.leaves()) for tree in loaded.vocabulary
    }
    by_scenario: dict[str, int] = {}
    violations = 0
    for label in loaded.labels:
        by_scenario[label.scenario] = by_scenario.get(label.scenario, 0) + 1
        if label.truth == "violation":
            violations += 1
    counts = loaded.manifest.get("counts", {})
    return CorpusStats(
        name=str(loaded.manifest.get("name", "corpus")),
        digest=loaded.digest,
        rules_total=len(loaded.rules),
        rules_by_modality=dict(sorted(by_modality.items())),
        documented_rules=len(loaded.store),
        vocabulary_leaves=leaves,
        staff=int(counts.get("staff", 0)),
        patients=int(counts.get("patients", 0)),
        practices=int(counts.get("practices", 0)),
        entries=len(loaded.log),
        exceptions=len(loaded.log.exceptions()),
        labels_by_scenario=dict(sorted(by_scenario.items())),
        violations=violations,
    )


def verify_determinism(bundle: LoadedCorpus | str | Path) -> tuple[bool, str, str]:
    """Regenerate the bundle from its own spec and compare digests.

    Returns ``(matches, recorded_digest, regenerated_digest)``.  The
    regeneration happens in a throwaway temporary directory, so the
    on-disk bundle is never touched.
    """
    loaded = bundle if isinstance(bundle, LoadedCorpus) else load_corpus(bundle)
    spec = loaded.spec
    corpus = generate_corpus(spec)
    trace = simulate_corpus_trace(corpus)
    with tempfile.TemporaryDirectory(prefix="repro-corpus-verify-") as scratch:
        regenerated = save_corpus(corpus, trace, scratch)
    return regenerated == loaded.digest, loaded.digest, regenerated


def render_stats(stats: CorpusStats) -> str:
    """Render :class:`CorpusStats` as an aligned plain-text report."""
    lines = [
        f"corpus       {stats.name}",
        f"digest       {stats.digest}",
        f"rules        {stats.rules_total} total; "
        + ", ".join(
            f"{count} {modality}"
            for modality, count in stats.rules_by_modality.items()
        ),
        f"documented   {stats.documented_rules} rules in the store",
        "vocabulary   "
        + ", ".join(
            f"{count} {attribute} leaves"
            for attribute, count in stats.vocabulary_leaves.items()
        ),
        f"hospital     {stats.staff} staff, {stats.patients} patients, "
        f"{stats.practices} practices",
        f"trace        {stats.entries} entries, {stats.exceptions} exceptions, "
        f"{stats.violations} injected violations",
    ]
    if stats.labels_by_scenario:
        lines.append(
            "labels       "
            + ", ".join(
                f"{count} {scenario}"
                for scenario, count in stats.labels_by_scenario.items()
            )
        )
    return "\n".join(lines)
