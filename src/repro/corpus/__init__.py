"""repro.corpus — seeded HIPAA-scale policy corpora.

The paper evaluates refinement on a toy Figure-1 vocabulary; this package
generates the realistic regime: deep HIPAA-derived hierarchies
(:mod:`repro.corpus.hipaa`), hundreds of modal rules with citations
(:mod:`repro.corpus.generate`), stress scenario programs with injected
ground-truth misuse (:mod:`repro.corpus.scenarios`), durable
digest-verified bundles (:mod:`repro.corpus.io`) and bundle statistics /
the CI determinism guard (:mod:`repro.corpus.stats`).

Typical use::

    from repro.corpus import CorpusSpec, generate_corpus, simulate_corpus_trace

    corpus = generate_corpus(CorpusSpec(seed=7, departments=4))
    trace = simulate_corpus_trace(corpus)
    save_corpus(corpus, trace, "bundles/demo")
"""

from repro.corpus.generate import (
    CorpusRule,
    CorpusSpec,
    PolicyCorpus,
    generate_corpus,
)
from repro.corpus.hipaa import (
    CLINICAL_DEPARTMENTS,
    MODALITIES,
    hipaa_vocabulary,
)
from repro.corpus.io import (
    BUNDLE_FILES,
    LoadedCorpus,
    bundle_digest,
    load_corpus,
    save_corpus,
)
from repro.corpus.scenarios import (
    CorpusEnvironment,
    CorpusTrace,
    LabelRecord,
    simulate_corpus_trace,
)
from repro.corpus.stats import (
    CorpusStats,
    corpus_stats,
    render_stats,
    verify_determinism,
)

__all__ = [
    "BUNDLE_FILES",
    "CLINICAL_DEPARTMENTS",
    "CorpusEnvironment",
    "CorpusRule",
    "CorpusSpec",
    "CorpusStats",
    "CorpusTrace",
    "LabelRecord",
    "LoadedCorpus",
    "MODALITIES",
    "PolicyCorpus",
    "bundle_digest",
    "corpus_stats",
    "generate_corpus",
    "hipaa_vocabulary",
    "load_corpus",
    "render_stats",
    "save_corpus",
    "simulate_corpus_trace",
    "verify_determinism",
]
