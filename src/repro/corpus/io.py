"""Durable corpus bundles: one directory, one digest.

A corpus bundle is a directory holding every artifact of one generation
run, each in the format its own layer already defines:

- ``vocabulary.json`` — the deep HIPAA vocabulary
  (:mod:`repro.vocab.io`);
- ``policy_store.json`` — the documented store
  (:mod:`repro.policy.store_io`);
- ``rules.json`` — the full modal rulebook (rule DSL + modality +
  citation + weight);
- ``trace.entries.jsonl`` — the labelled audit trace
  (:mod:`repro.audit.io`, truth included);
- ``labels.json`` — the ground-truth journal
  (:class:`~repro.corpus.scenarios.LabelRecord` rows);
- ``clinical_state.json`` — the joinable relations
  (:class:`~repro.explain.relations.ClinicalState`);
- ``CORPUS.json`` — the manifest: format version, spec, counts, and a
  sha256 **digest over the other files' bytes** in a fixed order.

The digest is the determinism contract: the same spec must reproduce the
bundle byte-identically, so CI regenerates a bundle and compares digests
(`repro corpus stats --verify`).  All files are written atomically.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro import obs
from repro.audit import io as audit_io
from repro.audit.log import AuditLog
from repro.corpus.generate import CorpusRule, CorpusSpec, PolicyCorpus
from repro.corpus.scenarios import CorpusTrace, LabelRecord
from repro.errors import CorpusError
from repro.explain.relations import ClinicalState
from repro.policy import store_io
from repro.policy.store import PolicyStore
from repro.store.manifest import atomic_write_bytes
from repro.vocab import io as vocab_io
from repro.vocab.vocabulary import Vocabulary

#: Manifest file name.
MANIFEST_NAME = "CORPUS.json"

#: Bundle payload files, in digest order (the manifest itself excluded).
BUNDLE_FILES: tuple[str, ...] = (
    "vocabulary.json",
    "policy_store.json",
    "rules.json",
    "trace.entries.jsonl",
    "labels.json",
    "clinical_state.json",
)

#: Current manifest format version.
BUNDLE_FORMAT = 1


def bundle_digest(directory: str | Path) -> str:
    """Sha256 over the bundle payload files' bytes, in fixed order."""
    base = Path(directory)
    hasher = hashlib.sha256()
    for name in BUNDLE_FILES:
        path = base / name
        if not path.is_file():
            raise CorpusError(f"corpus bundle is missing {name!r} under {base}")
        hasher.update(name.encode("utf-8"))
        hasher.update(b"\x00")
        hasher.update(path.read_bytes())
    return hasher.hexdigest()


def save_corpus(
    corpus: PolicyCorpus, trace: CorpusTrace, directory: str | Path
) -> str:
    """Write the corpus + trace bundle under ``directory``.

    Returns the bundle digest recorded in the manifest.
    """
    reg = obs.get_registry()
    with reg.span("repro_corpus_save_seconds"):
        base = Path(directory)
        base.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(
            base / "vocabulary.json",
            vocab_io.dumps(corpus.vocabulary).encode("utf-8"),
        )
        atomic_write_bytes(
            base / "policy_store.json", store_io.dumps(corpus.store).encode("utf-8")
        )
        rules_payload = {
            "format": BUNDLE_FORMAT,
            "rules": [rule.to_dict() for rule in corpus.rules],
        }
        atomic_write_bytes(
            base / "rules.json",
            json.dumps(rules_payload, indent=2).encode("utf-8"),
        )
        audit_io.save_jsonl(trace.log, base / "trace.entries.jsonl")
        labels_payload = {
            "format": BUNDLE_FORMAT,
            "labels": [label.to_dict() for label in trace.labels],
        }
        atomic_write_bytes(
            base / "labels.json",
            json.dumps(labels_payload, indent=2).encode("utf-8"),
        )
        atomic_write_bytes(
            base / "clinical_state.json",
            json.dumps(trace.state.to_dict(), indent=2).encode("utf-8"),
        )
        digest = bundle_digest(base)
        manifest = {
            "format": BUNDLE_FORMAT,
            "name": corpus.spec.name,
            "spec": corpus.spec.to_dict(),
            "counts": {
                "rules": len(corpus.rules),
                "documented": len(corpus.store),
                "staff": len(corpus.hospital.all_staff()),
                "patients": len(corpus.hospital.patients),
                "practices": len(corpus.hospital.practices),
                "entries": len(trace.log),
                "labels": len(trace.labels),
                "violations": trace.violations,
            },
            "digest": digest,
        }
        atomic_write_bytes(
            base / MANIFEST_NAME,
            json.dumps(manifest, indent=2).encode("utf-8"),
        )
    reg.counter("repro_corpus_bundles_saved_total").inc()
    return digest


class LoadedCorpus:
    """A corpus bundle read back from disk.

    Carries the deserialised artifacts plus the manifest; the generation
    spec is available as :attr:`spec` so callers can regenerate and
    compare digests.
    """

    def __init__(
        self,
        manifest: dict,
        vocabulary: Vocabulary,
        store: PolicyStore,
        rules: tuple[CorpusRule, ...],
        log: AuditLog,
        labels: tuple[LabelRecord, ...],
        state: ClinicalState,
    ) -> None:
        self.manifest = manifest
        self.vocabulary = vocabulary
        self.store = store
        self.rules = rules
        self.log = log
        self.labels = labels
        self.state = state

    @property
    def spec(self) -> CorpusSpec:
        """The generation spec recorded in the manifest."""
        return CorpusSpec.from_dict(self.manifest["spec"])

    @property
    def digest(self) -> str:
        """The bundle digest recorded in the manifest."""
        return str(self.manifest["digest"])


def load_corpus(directory: str | Path, verify: bool = True) -> LoadedCorpus:
    """Read a corpus bundle; ``verify`` recomputes and checks the digest."""
    reg = obs.get_registry()
    with reg.span("repro_corpus_load_seconds"):
        base = Path(directory)
        manifest_path = base / MANIFEST_NAME
        if not manifest_path.is_file():
            raise CorpusError(f"no corpus bundle manifest at {manifest_path}")
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise CorpusError(f"invalid corpus manifest JSON: {exc}") from exc
        if manifest.get("format") != BUNDLE_FORMAT:
            raise CorpusError(
                f"unsupported corpus bundle format {manifest.get('format')!r} "
                f"(expected {BUNDLE_FORMAT})"
            )
        if verify:
            actual = bundle_digest(base)
            expected = manifest.get("digest")
            if actual != expected:
                raise CorpusError(
                    f"corpus bundle digest mismatch under {base}: manifest "
                    f"records {expected!r} but files hash to {actual!r}"
                )
        vocabulary = vocab_io.load(base / "vocabulary.json")
        store = store_io.load(base / "policy_store.json")
        try:
            rules_payload = json.loads(
                (base / "rules.json").read_text(encoding="utf-8")
            )
            rules = tuple(
                CorpusRule.from_dict(item) for item in rules_payload["rules"]
            )
            labels_payload = json.loads(
                (base / "labels.json").read_text(encoding="utf-8")
            )
            labels = tuple(
                LabelRecord.from_dict(item) for item in labels_payload["labels"]
            )
            state = ClinicalState.from_dict(
                json.loads(
                    (base / "clinical_state.json").read_text(encoding="utf-8")
                )
            )
        except (KeyError, TypeError, json.JSONDecodeError) as exc:
            raise CorpusError(f"malformed corpus bundle under {base}: {exc}") from exc
        log = audit_io.load_jsonl(base / "trace.entries.jsonl", name=manifest["name"])
    reg.counter("repro_corpus_bundles_loaded_total").inc()
    return LoadedCorpus(
        manifest=manifest,
        vocabulary=vocabulary,
        store=store,
        rules=rules,
        log=log,
        labels=labels,
        state=state,
    )
