"""HIPAA-derived vocabulary and rulebook templates.

The built-in Figure-1 vocabulary is deliberately tiny — the paper's worked
examples need ten-ish leaves per attribute.  Realistic healthcare policy
stores are two orders of magnitude richer: the HIPAA Privacy Rule carves
protected health information (PHI), purposes and workforce roles into deep
hierarchies, and its permissions come with *modal strength* — some uses
are permitted outright (treatment/payment/operations, §164.506), some
require an explicit patient authorization (§164.508), and some are flatly
denied to whole classes of workforce members (the minimum-necessary
standard, §164.502(b)).

This module encodes that structure following "A Framework for Extracting
and Modeling HIPAA Privacy Rules" (Alshugran & Dichter): each extracted
rule is a tuple over (actor, data, purpose, modality, citation).  Two
artifacts live here:

- :func:`hipaa_vocabulary` — a deep, department-parameterised vocabulary
  (4-level hierarchies for ``data``, ``purpose`` and ``authorized``);
- :data:`ROLE_RULEBOOK` — per-role rule templates (data node, purpose
  node, modality, citation, weight class) from which
  :func:`repro.corpus.generate.generate_corpus` expands the actual
  policy store, plus the department-specialised template families.

Everything here is a **literal table**: determinism of the generated
corpus reduces to determinism of the expansion code, never of this data.
"""

from __future__ import annotations

from repro.errors import CorpusError
from repro.vocab.vocabulary import Vocabulary

#: Modal strengths a corpus rule can carry (Alshugran & Dichter's
#: "permission" axis: permitted / required-consent / denied).
MODALITIES: tuple[str, ...] = ("permit", "require_consent", "deny")

#: Canonical clinical departments, in definition order; a spec selects a
#: prefix of this tuple.  Order is load-bearing: department names feed
#: staffing, vocabulary leaves and scenario programs deterministically.
CLINICAL_DEPARTMENTS: tuple[str, ...] = (
    "cardiology",
    "oncology",
    "emergency",
    "pediatrics",
    "neurology",
    "orthopedics",
    "geriatrics",
    "obstetrics",
)

#: Non-clinical departments every corpus hospital staffs.
BUSINESS_DEPARTMENTS: tuple[str, ...] = ("business_office", "compliance_office")

#: Demographic identity leaves (direct identifiers, §164.514(b)).
IDENTITY_LEAVES = ("name", "address", "phone_number", "email", "ssn")

#: Demographic profile leaves.
PROFILE_LEAVES = ("gender", "birth_date", "ethnicity", "marital_status")

#: Clinical encounter documentation.
ENCOUNTER_LEAVES = ("admission_note", "progress_note", "discharge_summary", "triage_note")

#: Clinical orders.
ORDER_LEAVES = ("prescription", "lab_order", "imaging_order", "referral")

#: Clinical results.
RESULT_LEAVES = ("lab_results", "imaging_report", "pathology_report", "vital_signs")

#: Specially-protected categories (42 CFR Part 2, state HIV statutes,
#: GINA) — the targets every injected-misuse campaign goes after.
SENSITIVE_LEAVES = (
    "psychiatry_note",
    "substance_abuse_record",
    "hiv_status",
    "genetic_test",
    "reproductive_health",
)

#: Financial billing artifacts.
BILLING_LEAVES = ("claim", "invoice", "payment_history", "procedure_code")

#: Insurance coverage artifacts.
COVERAGE_LEAVES = ("insurance_policy", "eligibility_record", "prior_authorization")

#: Treatment purposes (§164.506(c)(1)-(2)).
TREATMENT_PURPOSES = (
    "primary_care",
    "specialist_care",
    "emergency_care",
    "medication_administration",
)

#: Diagnosis purposes.
DIAGNOSIS_PURPOSES = ("diagnostic_workup", "lab_interpretation", "imaging_review")

#: Care-coordination purposes (§164.506(c)(2), continuity of care).
COORDINATION_PURPOSES = (
    "shift_handoff",
    "referral_consult",
    "discharge_planning",
    "case_review",
)

#: Payment purposes (§164.506(c)(3)).
BILLING_PURPOSES = ("claims_processing", "payment_collection", "coding_review")

#: Administrative operations purposes (§164.506(c)(4)).
ADMIN_PURPOSES = (
    "registration",
    "scheduling",
    "insurance_verification",
    "records_management",
)

#: Quality / oversight operations purposes.
QUALITY_PURPOSES = ("quality_review", "compliance_audit", "incident_review")

#: Research purposes (§164.512(i) with authorization or waiver).
RESEARCH_PURPOSES = ("clinical_trial", "retrospective_study", "registry_reporting")

#: Marketing/fundraising purposes (§164.508(a)(3), §164.514(f)).
MARKETING_PURPOSES = ("telemarketing", "fundraising")

#: Legal / public-priority purposes (§164.512(e)-(f)).
LEGAL_PURPOSES = ("court_order", "law_enforcement_request")

#: Physician-family role leaves.
PHYSICIAN_ROLES = (
    "attending_physician",
    "resident_physician",
    "surgeon",
    "consulting_specialist",
)

#: Nursing-family role leaves.
NURSING_ROLES = ("registered_nurse", "charge_nurse", "nurse_practitioner", "triage_nurse")

#: Technical role leaves.
TECHNICAL_ROLES = ("lab_technician", "radiology_technician", "pharmacist", "phlebotomist")

#: Front-office administrative role leaves.
FRONT_OFFICE_ROLES = ("registrar", "scheduler", "records_clerk")

#: Revenue-cycle administrative role leaves.
REVENUE_ROLES = ("billing_clerk", "coding_specialist", "claims_adjuster")

#: Oversight role leaves.
OVERSIGHT_ROLES = ("privacy_officer", "internal_auditor", "research_coordinator")

#: Roles staffed inside every clinical department.
CLINICAL_DEPARTMENT_ROLES: tuple[str, ...] = (
    PHYSICIAN_ROLES + NURSING_ROLES + TECHNICAL_ROLES
)

#: Roles staffed in the business office.
BUSINESS_OFFICE_ROLES: tuple[str, ...] = FRONT_OFFICE_ROLES + REVENUE_ROLES

#: Roles staffed in the compliance office.
COMPLIANCE_OFFICE_ROLES: tuple[str, ...] = OVERSIGHT_ROLES


def department_record_leaf(department: str) -> str:
    """The department-local data leaf (``<dept>_flowsheet``)."""
    return f"{department}_flowsheet"


def hipaa_vocabulary(
    departments: tuple[str, ...] = CLINICAL_DEPARTMENTS[:3], strict: bool = False
) -> Vocabulary:
    """Build the deep HIPAA-derived vocabulary for ``departments``.

    The three trees are four levels deep (root → family → group → leaf),
    so grounding, coverage and pruning exercise genuinely hierarchical
    rules — the regime the paper's toy vocabulary never reaches.
    ``departments`` adds one ``<dept>_flowsheet`` leaf per department
    under ``clinical/department_records``.
    """
    if not departments:
        raise CorpusError("a HIPAA corpus vocabulary needs at least one department")
    unknown = [d for d in departments if d not in CLINICAL_DEPARTMENTS]
    if unknown:
        raise CorpusError(
            f"unknown clinical departments {unknown!r}; "
            f"choose from {CLINICAL_DEPARTMENTS!r}"
        )
    vocab = Vocabulary("hipaa", strict=strict)

    data = vocab.new_tree("data", root="phi")
    data.add("demographic")
    data.add("identity", parent="demographic")
    for leaf in IDENTITY_LEAVES:
        data.add(leaf, parent="identity")
    data.add("profile", parent="demographic")
    for leaf in PROFILE_LEAVES:
        data.add(leaf, parent="profile")
    data.add("clinical")
    for group, leaves in (
        ("encounter_notes", ENCOUNTER_LEAVES),
        ("orders", ORDER_LEAVES),
        ("results", RESULT_LEAVES),
        ("sensitive_records", SENSITIVE_LEAVES),
    ):
        data.add(group, parent="clinical")
        for leaf in leaves:
            data.add(leaf, parent=group)
    data.add("department_records", parent="clinical")
    for department in departments:
        data.add(department_record_leaf(department), parent="department_records")
    data.add("financial")
    for group, leaves in (
        ("billing_records", BILLING_LEAVES),
        ("coverage", COVERAGE_LEAVES),
    ):
        data.add(group, parent="financial")
        for leaf in leaves:
            data.add(leaf, parent=group)

    purpose = vocab.new_tree("purpose")
    purpose.add("healthcare")
    for group, leaves in (
        ("treatment", TREATMENT_PURPOSES),
        ("diagnosis", DIAGNOSIS_PURPOSES),
        ("care_coordination", COORDINATION_PURPOSES),
    ):
        purpose.add(group, parent="healthcare")
        for leaf in leaves:
            purpose.add(leaf, parent=group)
    purpose.add("operations")
    for group, leaves in (
        ("billing", BILLING_PURPOSES),
        ("administration", ADMIN_PURPOSES),
        ("quality", QUALITY_PURPOSES),
    ):
        purpose.add(group, parent="operations")
        for leaf in leaves:
            purpose.add(leaf, parent=group)
    purpose.add("secondary_use")
    for group, leaves in (
        ("research", RESEARCH_PURPOSES),
        ("marketing", MARKETING_PURPOSES),
        ("legal", LEGAL_PURPOSES),
    ):
        purpose.add(group, parent="secondary_use")
        for leaf in leaves:
            purpose.add(leaf, parent=group)

    authorized = vocab.new_tree("authorized", root="staff")
    authorized.add("clinical_staff")
    for group, leaves in (
        ("physician_staff", PHYSICIAN_ROLES),
        ("nursing_staff", NURSING_ROLES),
    ):
        authorized.add(group, parent="clinical_staff")
        for leaf in leaves:
            authorized.add(leaf, parent=group)
    authorized.add("technical_staff")
    for leaf in TECHNICAL_ROLES:
        authorized.add(leaf, parent="technical_staff")
    authorized.add("administrative_staff")
    for group, leaves in (
        ("front_office", FRONT_OFFICE_ROLES),
        ("revenue_cycle", REVENUE_ROLES),
    ):
        authorized.add(group, parent="administrative_staff")
        for leaf in leaves:
            authorized.add(leaf, parent=group)
    authorized.add("oversight_staff")
    for leaf in OVERSIGHT_ROLES:
        authorized.add(leaf, parent="oversight_staff")

    return vocab


#: One rulebook template: ``(data node, purpose node, modality, citation,
#: weight class)``.  Weight classes (``dominant``/``routine``/``tail``)
#: become heavy-tailed practice weights during expansion.
RuleTemplate = tuple[str, str, str, str, str]

#: The per-role rulebook.  Role leaves map to the rule templates the
#: HIPAA framework extraction yields for that workforce class.  Data and
#: purpose values may be interior vocabulary nodes — corpus stores keep
#: composite rules, traffic grounds them.
ROLE_RULEBOOK: dict[str, tuple[RuleTemplate, ...]] = {
    "attending_physician": (
        ("encounter_notes", "treatment", "permit", "164.506(c)(1)", "dominant"),
        ("orders", "treatment", "permit", "164.506(c)(1)", "dominant"),
        ("results", "diagnosis", "permit", "164.506(c)(1)", "dominant"),
        ("results", "treatment", "permit", "164.506(c)(1)", "routine"),
        ("sensitive_records", "specialist_care", "permit", "164.506(c)(2)", "tail"),
        ("encounter_notes", "care_coordination", "permit", "164.506(c)(2)", "routine"),
        ("identity", "treatment", "permit", "164.506(c)(1)", "routine"),
        ("clinical", "research", "require_consent", "164.508(a)(1)", "tail"),
        ("financial", "treatment", "deny", "164.502(b)", "tail"),
    ),
    "resident_physician": (
        ("encounter_notes", "treatment", "permit", "164.506(c)(1)", "dominant"),
        ("results", "diagnosis", "permit", "164.506(c)(1)", "routine"),
        ("orders", "medication_administration", "permit", "164.506(c)(1)", "routine"),
        ("encounter_notes", "case_review", "permit", "164.506(c)(2)", "tail"),
        ("sensitive_records", "treatment", "require_consent", "164.508(a)(2)", "tail"),
        ("financial", "healthcare", "deny", "164.502(b)", "tail"),
    ),
    "surgeon": (
        ("encounter_notes", "treatment", "permit", "164.506(c)(1)", "dominant"),
        ("results", "diagnostic_workup", "permit", "164.506(c)(1)", "routine"),
        ("orders", "treatment", "permit", "164.506(c)(1)", "routine"),
        ("imaging_report", "imaging_review", "permit", "164.506(c)(1)", "routine"),
        ("sensitive_records", "healthcare", "require_consent", "164.508(a)(2)", "tail"),
    ),
    "consulting_specialist": (
        ("results", "referral_consult", "permit", "164.506(c)(2)", "dominant"),
        ("referral", "referral_consult", "permit", "164.506(c)(2)", "dominant"),
        ("encounter_notes", "specialist_care", "permit", "164.506(c)(1)", "routine"),
        ("sensitive_records", "specialist_care", "require_consent", "164.508(a)(2)", "tail"),
    ),
    "registered_nurse": (
        ("vital_signs", "treatment", "permit", "164.506(c)(1)", "dominant"),
        ("orders", "medication_administration", "permit", "164.506(c)(1)", "dominant"),
        ("encounter_notes", "treatment", "permit", "164.506(c)(1)", "routine"),
        ("encounter_notes", "shift_handoff", "permit", "164.506(c)(2)", "routine"),
        ("results", "treatment", "permit", "164.506(c)(1)", "routine"),
        ("identity", "treatment", "permit", "164.506(c)(1)", "tail"),
        ("sensitive_records", "treatment", "require_consent", "164.508(a)(2)", "tail"),
        ("financial", "healthcare", "deny", "164.502(b)", "tail"),
    ),
    "charge_nurse": (
        ("encounter_notes", "shift_handoff", "permit", "164.506(c)(2)", "dominant"),
        ("vital_signs", "shift_handoff", "permit", "164.506(c)(2)", "routine"),
        ("encounter_notes", "case_review", "permit", "164.506(c)(2)", "routine"),
        ("orders", "treatment", "permit", "164.506(c)(1)", "tail"),
    ),
    "nurse_practitioner": (
        ("encounter_notes", "primary_care", "permit", "164.506(c)(1)", "dominant"),
        ("orders", "primary_care", "permit", "164.506(c)(1)", "routine"),
        ("results", "lab_interpretation", "permit", "164.506(c)(1)", "routine"),
        ("profile", "primary_care", "permit", "164.506(c)(1)", "tail"),
    ),
    "triage_nurse": (
        ("triage_note", "emergency_care", "permit", "164.506(c)(1)", "dominant"),
        ("vital_signs", "emergency_care", "permit", "164.506(c)(1)", "dominant"),
        ("identity", "emergency_care", "permit", "164.506(c)(1)", "routine"),
        ("encounter_notes", "emergency_care", "permit", "164.506(c)(1)", "tail"),
    ),
    "lab_technician": (
        ("lab_order", "lab_interpretation", "permit", "164.506(c)(1)", "dominant"),
        ("lab_results", "lab_interpretation", "permit", "164.506(c)(1)", "dominant"),
        ("identity", "lab_interpretation", "permit", "164.502(b)", "tail"),
        ("sensitive_records", "healthcare", "deny", "164.502(b)", "tail"),
    ),
    "radiology_technician": (
        ("imaging_order", "imaging_review", "permit", "164.506(c)(1)", "dominant"),
        ("imaging_report", "imaging_review", "permit", "164.506(c)(1)", "routine"),
        ("identity", "imaging_review", "permit", "164.502(b)", "tail"),
    ),
    "pharmacist": (
        ("prescription", "medication_administration", "permit", "164.506(c)(1)", "dominant"),
        ("prescription", "treatment", "permit", "164.506(c)(1)", "routine"),
        ("profile", "medication_administration", "permit", "164.506(c)(1)", "tail"),
        ("coverage", "insurance_verification", "permit", "164.506(c)(3)", "tail"),
    ),
    "phlebotomist": (
        ("lab_order", "treatment", "permit", "164.506(c)(1)", "dominant"),
        ("identity", "treatment", "permit", "164.506(c)(1)", "routine"),
    ),
    "registrar": (
        ("identity", "registration", "permit", "164.506(c)(4)", "dominant"),
        ("profile", "registration", "permit", "164.506(c)(4)", "routine"),
        ("coverage", "insurance_verification", "permit", "164.506(c)(3)", "routine"),
        ("referral", "registration", "permit", "164.506(c)(4)", "tail"),
        ("clinical", "administration", "deny", "164.502(b)", "tail"),
    ),
    "scheduler": (
        ("identity", "scheduling", "permit", "164.506(c)(4)", "dominant"),
        ("referral", "scheduling", "permit", "164.506(c)(4)", "routine"),
        ("profile", "scheduling", "permit", "164.506(c)(4)", "tail"),
    ),
    "records_clerk": (
        ("encounter_notes", "records_management", "permit", "164.506(c)(4)", "routine"),
        ("identity", "records_management", "permit", "164.506(c)(4)", "routine"),
        ("sensitive_records", "operations", "deny", "164.502(b)", "tail"),
    ),
    "billing_clerk": (
        ("billing_records", "claims_processing", "permit", "164.506(c)(3)", "dominant"),
        ("identity", "claims_processing", "permit", "164.506(c)(3)", "routine"),
        ("coverage", "claims_processing", "permit", "164.506(c)(3)", "routine"),
        ("billing_records", "payment_collection", "permit", "164.506(c)(3)", "routine"),
        ("sensitive_records", "billing", "deny", "164.502(b)", "tail"),
        ("clinical", "marketing", "deny", "164.508(a)(3)", "tail"),
    ),
    "coding_specialist": (
        ("procedure_code", "coding_review", "permit", "164.506(c)(3)", "dominant"),
        ("encounter_notes", "coding_review", "permit", "164.506(c)(3)", "routine"),
        ("billing_records", "coding_review", "permit", "164.506(c)(3)", "tail"),
    ),
    "claims_adjuster": (
        ("claim", "claims_processing", "permit", "164.506(c)(3)", "dominant"),
        ("coverage", "claims_processing", "permit", "164.506(c)(3)", "routine"),
        ("payment_history", "payment_collection", "permit", "164.506(c)(3)", "tail"),
    ),
    "privacy_officer": (
        ("phi", "compliance_audit", "permit", "164.530(a)", "routine"),
        ("phi", "incident_review", "permit", "164.530(a)", "tail"),
    ),
    "internal_auditor": (
        ("financial", "quality_review", "permit", "164.506(c)(4)", "routine"),
        ("clinical", "quality_review", "permit", "164.506(c)(4)", "tail"),
        ("identity", "marketing", "deny", "164.508(a)(3)", "tail"),
    ),
    "research_coordinator": (
        ("clinical", "clinical_trial", "require_consent", "164.508(a)(1)", "routine"),
        ("profile", "retrospective_study", "require_consent", "164.512(i)", "tail"),
        ("results", "registry_reporting", "permit", "164.512(b)", "tail"),
        ("identity", "research", "deny", "164.514(b)", "tail"),
    ),
}

#: Department-specialised template families: every clinical department
#: adds these over its own ``<dept>_flowsheet`` leaf.
DEPARTMENT_RULEBOOK: tuple[RuleTemplate, ...] = (
    ("department_records", "specialist_care", "permit", "164.506(c)(1)", "routine"),
    ("department_records", "shift_handoff", "permit", "164.506(c)(2)", "routine"),
    ("department_records", "case_review", "permit", "164.506(c)(2)", "tail"),
)

#: Roles the department-specialised families attach to (one rule per
#: (department, role, template)).
DEPARTMENT_RULE_ROLES: tuple[str, ...] = (
    "attending_physician",
    "consulting_specialist",
    "registered_nurse",
    "charge_nurse",
)
