"""A small text DSL for authoring policy rules.

Privacy officers in the paper's workflow enter rules through the HDB
Control Center; this module provides the textual front-end for that role.
Two statement forms are accepted, one per line:

Sentence form (the common case)::

    ALLOW nurse TO USE medical_records FOR treatment

which produces ``{(data, medical_records) ^ (purpose, treatment) ^
(authorized, nurse)}``.  ``USE``, ``ACCESS``, ``READ`` and ``DISCLOSE``
are interchangeable verbs.

Generic form (for arbitrary attributes)::

    RULE data=referral, purpose=registration, authorized=nurse

Blank lines are skipped and ``#`` starts a comment (full-line or trailing).
Values containing spaces may be quoted: ``ALLOW "billing clerk" TO ...``.
"""

from __future__ import annotations

import shlex

from repro.errors import PolicyParseError
from repro.policy.policy import Policy, PolicySource
from repro.policy.rule import Rule
from repro.policy.ruleterm import RuleTerm

#: Verbs accepted between ``TO`` and the data value in sentence form.
VERBS = frozenset({"use", "access", "read", "disclose"})


def parse_rule(text: str, line: int | None = None) -> Rule:
    """Parse a single rule statement; raises :class:`PolicyParseError`."""
    try:
        tokens = shlex.split(text, comments=True)
    except ValueError as exc:
        raise PolicyParseError(f"unbalanced quoting: {exc}", line) from exc
    if not tokens:
        raise PolicyParseError("empty rule statement", line)
    head = tokens[0].lower()
    if head == "allow":
        return _parse_sentence(tokens, line)
    if head == "rule":
        return _parse_generic(tokens[1:], line)
    if "=" in text:
        return _parse_generic(tokens, line)
    raise PolicyParseError(
        f"expected a statement starting with ALLOW or RULE, got {tokens[0]!r}", line
    )


def _parse_sentence(tokens: list[str], line: int | None) -> Rule:
    """Parse ``ALLOW <role> TO <verb> <data> FOR <purpose>``."""
    if len(tokens) != 7:
        raise PolicyParseError(
            "sentence form is 'ALLOW <role> TO <verb> <data> FOR <purpose>' "
            f"(7 tokens), got {len(tokens)}",
            line,
        )
    _, role, to_kw, verb, data, for_kw, purpose = tokens
    if to_kw.lower() != "to":
        raise PolicyParseError(f"expected 'TO' after the role, got {to_kw!r}", line)
    if verb.lower() not in VERBS:
        raise PolicyParseError(
            f"unknown verb {verb!r}; expected one of {sorted(VERBS)}", line
        )
    if for_kw.lower() != "for":
        raise PolicyParseError(f"expected 'FOR' before the purpose, got {for_kw!r}", line)
    return Rule.of(data=data, purpose=purpose, authorized=role)


def _parse_generic(tokens: list[str], line: int | None) -> Rule:
    """Parse ``attr=value, attr=value, ...`` after an optional RULE head."""
    joined = " ".join(tokens)
    pairs: list[tuple[str, str]] = []
    for chunk in joined.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        attr, sep, value = chunk.partition("=")
        if not sep or not attr.strip() or not value.strip():
            raise PolicyParseError(f"expected attr=value, got {chunk!r}", line)
        pairs.append((attr.strip(), value.strip()))
    if not pairs:
        raise PolicyParseError("generic rule statement carries no assignments", line)
    return Rule(tuple(RuleTerm(attr, value) for attr, value in pairs))


def parse_policy(
    text: str,
    source: PolicySource | str = PolicySource.POLICY_STORE,
    name: str | None = None,
) -> Policy:
    """Parse a multi-line policy document into a :class:`Policy`.

    Lines that are blank or pure comments are skipped; any other line must
    parse as a rule statement.
    """
    rules: list[Rule] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.strip()
        if not stripped or stripped.startswith("#"):
            continue
        rules.append(parse_rule(stripped, line=number))
    return Policy(rules, source=source, name=name)


def format_rule(rule: Rule) -> str:
    """Render ``rule`` back into DSL text.

    Rules over exactly ``{data, purpose, authorized}`` render in sentence
    form; anything else uses the generic form.  ``parse_rule(format_rule(r))
    == r`` holds for every rule.
    """
    by_attr = {term.attr: term.value for term in rule.terms}
    if set(by_attr) == {"data", "purpose", "authorized"} and rule.cardinality == 3:
        return (
            f"ALLOW {by_attr['authorized']} TO USE {by_attr['data']} "
            f"FOR {by_attr['purpose']}"
        )
    inner = ", ".join(f"{term.attr}={term.value}" for term in rule.terms)
    return f"RULE {inner}"


def format_policy(policy: Policy) -> str:
    """Render every rule of ``policy`` as DSL text, one per line."""
    header = f"# policy {policy.name} (source={policy.source.value})"
    return "\n".join([header, *(format_rule(rule) for rule in policy)])
