"""Rules — Definitions 5 and 6 of the paper.

A :class:`Rule` is a conjunction of :class:`~repro.policy.ruleterm.RuleTerm`
objects, modelling one policy statement such as *"nurses are authorized to
see insurance information for billing purposes"*::

    Rule.of(data="insurance", purpose="billing", authorized="nurse")

Rules are immutable and stored in a canonical order (sorted by attribute,
then value), so two ground rules with the same terms compare equal and hash
equal — exactly the equivalence that Definition 6 induces on ground rules.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import PolicyError
from repro.policy.ruleterm import RuleTerm
from repro.vocab.vocabulary import Vocabulary


@dataclass(frozen=True, slots=True)
class Rule:
    """A conjunction of rule terms (Definition 5).

    ``cardinality`` (the paper's ``#R``) is the number of terms.  The terms
    are canonically sorted at construction time; duplicate terms collapse.
    """

    terms: tuple[RuleTerm, ...] = field()

    def __post_init__(self) -> None:
        if not self.terms:
            raise PolicyError("a rule must contain at least one term (Definition 5)")
        unique = sorted(set(self.terms), key=lambda t: (t.attr, t.value))
        object.__setattr__(self, "terms", tuple(unique))

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def of(cls, **assignments: str) -> "Rule":
        """Build a rule from keyword attribute assignments.

        >>> Rule.of(data="referral", purpose="treatment", authorized="nurse")
        Rule(data=referral, purpose=treatment, authorized=nurse)
        """
        if not assignments:
            raise PolicyError("Rule.of requires at least one attribute assignment")
        return cls(tuple(RuleTerm(attr, value) for attr, value in assignments.items()))

    @classmethod
    def from_pairs(cls, pairs: list[tuple[str, str]] | tuple[tuple[str, str], ...]) -> "Rule":
        """Build a rule from ``(attr, value)`` pairs."""
        return cls(tuple(RuleTerm(attr, value) for attr, value in pairs))

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def cardinality(self) -> int:
        """The paper's ``#R`` — number of conjoined terms."""
        return len(self.terms)

    @property
    def attributes(self) -> tuple[str, ...]:
        """The attributes mentioned by this rule, in canonical order."""
        return tuple(term.attr for term in self.terms)

    def value_of(self, attr: str) -> str | None:
        """Return the value assigned to ``attr``, or ``None`` if absent.

        When a rule carries several terms on the same attribute the first
        (canonically smallest) value is returned.
        """
        for term in self.terms:
            if term.attr == attr:
                return term.value
        return None

    def project(self, attributes: tuple[str, ...] | list[str]) -> "Rule":
        """Return the sub-rule restricted to ``attributes``.

        Raises :class:`PolicyError` when the projection would be empty.
        """
        wanted = {attr.lower() for attr in attributes}
        kept = tuple(term for term in self.terms if term.attr in wanted)
        if not kept:
            raise PolicyError(
                f"projection onto {sorted(wanted)} leaves rule {self} empty"
            )
        return Rule(kept)

    # ------------------------------------------------------------------
    # ground / composite (Corollary 1)
    # ------------------------------------------------------------------
    def is_ground(self, vocabulary: Vocabulary) -> bool:
        """True iff every term is ground under ``vocabulary``."""
        return all(term.is_ground(vocabulary) for term in self.terms)

    def ground_rules(self, vocabulary: Vocabulary) -> tuple["Rule", ...]:
        """Return every ground rule derivable from this rule.

        The ground rules are the cartesian product of each term's ground
        set, realising Corollary 1 (every rule has at least one ground
        counterpart).  A rule with terms expanding to ``a`` and ``b`` ground
        values therefore yields ``a * b`` ground rules.
        """
        expansions = [term.ground_terms(vocabulary) for term in self.terms]
        return tuple(Rule(combo) for combo in itertools.product(*expansions))

    # ------------------------------------------------------------------
    # equivalence and matching (Definition 6)
    # ------------------------------------------------------------------
    def equivalent(self, other: "Rule", vocabulary: Vocabulary) -> bool:
        """Definition 6 equivalence.

        Two rules are equivalent when they have the same cardinality and
        every term of one has an equivalent term in the other.  For ground
        rules this coincides with plain equality (``==``); for composite
        rules it is an *overlap* relation, which is how the paper uses it
        when intersecting ranges.
        """
        if self.cardinality != other.cardinality:
            return False
        return all(
            any(mine.equivalent(theirs, vocabulary) for theirs in other.terms)
            for mine in self.terms
        ) and all(
            any(theirs.equivalent(mine, vocabulary) for mine in self.terms)
            for theirs in other.terms
        )

    def covers(self, ground_rule: "Rule", vocabulary: Vocabulary) -> bool:
        """True iff ``ground_rule`` lies in this rule's ground set.

        Used by gap analysis and enforcement to answer "does this policy
        statement authorise this concrete access?" without materialising
        the whole ground set.
        """
        if self.cardinality != ground_rule.cardinality:
            return False
        return all(
            any(mine.subsumes(theirs, vocabulary) for mine in self.terms)
            for theirs in ground_rule.terms
        )

    def __str__(self) -> str:
        inner = " ^ ".join(str(term) for term in self.terms)
        return "{" + inner + "}"

    def __repr__(self) -> str:
        inner = ", ".join(f"{t.attr}={t.value}" for t in self.terms)
        return f"Rule({inner})"
