"""The policy store ``P_PS`` — a versioned collection of permission rules.

The paper's refinement loop repeatedly *amends* the organisation's policy:
every accepted pattern becomes a new rule, and stakeholders need to know
when a rule appeared and why.  :class:`PolicyStore` therefore keeps, for
each rule, a :class:`RuleRecord` with provenance (who added it, in which
refinement round, from which mined pattern) and supports snapshotting the
current rule set as a plain :class:`~repro.policy.policy.Policy` for the
coverage and refinement algorithms.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.errors import PolicyError
from repro.policy.policy import Policy, PolicySource
from repro.policy.rule import Rule


@dataclass(frozen=True, slots=True)
class RuleRecord:
    """One rule plus its provenance inside a :class:`PolicyStore`."""

    rule: Rule
    revision: int
    added_by: str = "privacy-officer"
    origin: str = "manual"
    note: str = ""
    active: bool = True


@dataclass
class StoreEvent:
    """One entry of the store's change history."""

    revision: int
    action: str
    rule: Rule
    added_by: str
    note: str = ""


class PolicyStore:
    """A versioned policy store (the architecture's ``P_PS`` box).

    Rules are deduplicated: adding a rule that is already active is a
    no-op returning ``False``.  Retiring a rule deactivates it but keeps
    its record, so the history remains auditable — fitting for a privacy
    architecture whose whole point is accountability.
    """

    def __init__(self, name: str = "P_PS") -> None:
        self.name = name
        self._records: dict[Rule, RuleRecord] = {}
        self._history: list[StoreEvent] = []
        self._revision = 0

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(
        self,
        rule: Rule,
        added_by: str = "privacy-officer",
        origin: str = "manual",
        note: str = "",
    ) -> bool:
        """Add ``rule``; returns ``True`` if the store changed.

        Re-adding a retired rule reactivates it (with fresh provenance).
        """
        if not isinstance(rule, Rule):
            raise PolicyError(f"policy stores hold Rule objects, got {rule!r}")
        existing = self._records.get(rule)
        if existing is not None and existing.active:
            return False
        self._revision += 1
        self._records[rule] = RuleRecord(
            rule=rule,
            revision=self._revision,
            added_by=added_by,
            origin=origin,
            note=note,
        )
        self._history.append(
            StoreEvent(self._revision, "add", rule, added_by, note)
        )
        return True

    def add_all(
        self,
        rules: list[Rule] | tuple[Rule, ...],
        added_by: str = "privacy-officer",
        origin: str = "manual",
        note: str = "",
    ) -> int:
        """Add every rule; returns how many actually changed the store."""
        return sum(
            self.add(rule, added_by=added_by, origin=origin, note=note)
            for rule in rules
        )

    def retire(self, rule: Rule, added_by: str = "privacy-officer", note: str = "") -> bool:
        """Deactivate ``rule``; returns ``True`` if it was active."""
        record = self._records.get(rule)
        if record is None or not record.active:
            return False
        self._revision += 1
        self._records[rule] = RuleRecord(
            rule=rule,
            revision=record.revision,
            added_by=record.added_by,
            origin=record.origin,
            note=record.note,
            active=False,
        )
        self._history.append(StoreEvent(self._revision, "retire", rule, added_by, note))
        return True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for record in self._records.values() if record.active)

    def __contains__(self, rule: Rule) -> bool:
        record = self._records.get(rule)
        return record is not None and record.active

    def __iter__(self) -> Iterator[Rule]:
        return (rule for rule, record in self._records.items() if record.active)

    @property
    def revision(self) -> int:
        """Monotonically increasing change counter."""
        return self._revision

    @property
    def history(self) -> tuple[StoreEvent, ...]:
        """The full change history, oldest first."""
        return tuple(self._history)

    def record_for(self, rule: Rule) -> RuleRecord | None:
        """Return the provenance record for ``rule`` (active or not)."""
        return self._records.get(rule)

    def records(self, include_retired: bool = False) -> tuple[RuleRecord, ...]:
        """All records, optionally including retired rules."""
        return tuple(
            record
            for record in self._records.values()
            if include_retired or record.active
        )

    def policy(self) -> Policy:
        """Snapshot the active rules as a ``P_PS`` policy."""
        return Policy(iter(self), source=PolicySource.POLICY_STORE, name=self.name)

    def clone(self, name: str | None = None) -> "PolicyStore":
        """An independent copy carrying the same records, history and
        revision.

        Records and history events are immutable, so the copy is shallow
        and O(rules); the decision service uses this for copy-on-write
        snapshots — admin mutations build and populate a clone, then swap
        it in atomically while in-flight readers keep the old store.
        """
        twin = PolicyStore(name or self.name)
        twin._records = dict(self._records)
        twin._history = list(self._history)
        twin._revision = self._revision
        return twin

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready encoding: records, history and the revision counter.

        Rules serialise as the policy DSL (see
        :mod:`repro.policy.parser`), keeping the file human-reviewable —
        fitting for an artifact a privacy officer signs off on.
        """
        from repro.policy.parser import format_rule

        return {
            "name": self.name,
            "revision": self._revision,
            "records": [
                {
                    "rule": format_rule(record.rule),
                    "revision": record.revision,
                    "added_by": record.added_by,
                    "origin": record.origin,
                    "note": record.note,
                    "active": record.active,
                }
                for record in self._records.values()
            ],
            "history": [
                {
                    "revision": event.revision,
                    "action": event.action,
                    "rule": format_rule(event.rule),
                    "added_by": event.added_by,
                    "note": event.note,
                }
                for event in self._history
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PolicyStore":
        """Rebuild a store (records, history, revision) from
        :meth:`to_dict` output."""
        from repro.policy.parser import parse_rule

        try:
            store = cls(payload["name"])
            for item in payload["records"]:
                rule = parse_rule(item["rule"])
                store._records[rule] = RuleRecord(
                    rule=rule,
                    revision=int(item["revision"]),
                    added_by=item["added_by"],
                    origin=item["origin"],
                    note=item["note"],
                    active=bool(item["active"]),
                )
            for item in payload["history"]:
                store._history.append(
                    StoreEvent(
                        revision=int(item["revision"]),
                        action=item["action"],
                        rule=parse_rule(item["rule"]),
                        added_by=item["added_by"],
                        note=item.get("note", ""),
                    )
                )
            store._revision = int(payload["revision"])
        except (KeyError, TypeError, ValueError) as exc:
            raise PolicyError(f"malformed policy store payload: {exc}") from exc
        return store

    def __repr__(self) -> str:
        return f"PolicyStore(name={self.name!r}, active={len(self)}, revision={self._revision})"
