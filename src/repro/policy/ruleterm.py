"""RuleTerms — Definitions 1–4 of the paper.

A :class:`RuleTerm` is the fundamental policy construct: a pair of an
attribute and a value, written ``(attr, value)`` in the paper.  Whether a
term is *ground* (atomic) or *composite* (expandable) is not a property of
the term itself but of the term **relative to a vocabulary**, so the ground
tests and expansions here all take the vocabulary as a parameter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PolicyError
from repro.vocab.tree import canonical
from repro.vocab.vocabulary import Vocabulary


@dataclass(frozen=True, slots=True)
class RuleTerm:
    """An attribute assignment in a policy rule (Definition 1).

    Both elements are canonicalised on construction so that term equality is
    insensitive to case and whitespace: ``RuleTerm("Data", "Birth Date") ==
    RuleTerm("data", "birth_date")``.
    """

    attr: str
    value: str

    def __post_init__(self) -> None:
        try:
            object.__setattr__(self, "attr", canonical(self.attr))
            object.__setattr__(self, "value", canonical(self.value))
        except Exception as exc:
            raise PolicyError(f"invalid rule term ({self.attr!r}, {self.value!r}): {exc}") from exc

    # ------------------------------------------------------------------
    # ground / composite (Definitions 2 and 3)
    # ------------------------------------------------------------------
    def is_ground(self, vocabulary: Vocabulary) -> bool:
        """True iff this term's value is atomic under ``vocabulary``."""
        return vocabulary.is_ground(self.attr, self.value)

    def ground_terms(self, vocabulary: Vocabulary) -> tuple["RuleTerm", ...]:
        """Return the ground terms derivable from this term (Definition 3).

        The result is never empty: a ground term derives itself.  This is
        the paper's "existence of ground RuleTerm" guarantee.
        """
        return tuple(
            RuleTerm(self.attr, value)
            for value in vocabulary.ground_values(self.attr, self.value)
        )

    # ------------------------------------------------------------------
    # equivalence (Definition 4)
    # ------------------------------------------------------------------
    def equivalent(self, other: "RuleTerm", vocabulary: Vocabulary) -> bool:
        """True iff the two terms share at least one ground term.

        This is the paper's Definition 4: two terms are equivalent when a
        ground term exists in both of their ground sets with equal attribute
        and value.  Terms on different attributes are never equivalent.
        """
        if self.attr != other.attr:
            return False
        if self.value == other.value:
            return True
        return vocabulary.overlap(self.attr, self.value, other.value)

    def subsumes(self, other: "RuleTerm", vocabulary: Vocabulary) -> bool:
        """True iff this term's ground set contains all of ``other``'s.

        Not part of the paper's definitions but needed by gap analysis and
        enforcement: a grant on ``(data, demographic)`` subsumes a request
        for ``(data, address)``.
        """
        if self.attr != other.attr:
            return False
        return vocabulary.subsumes(self.attr, self.value, other.value)

    def __str__(self) -> str:
        return f"({self.attr}, {self.value})"
