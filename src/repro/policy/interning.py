"""Ground-rule interning — dense integer IDs behind the bitset Range backend.

Every stage of the refinement loop (Algorithm 1 coverage, Algorithm 6
prune, gap analysis, the incremental tracker) reduces to set algebra over
ground rules.  Hashing composite :class:`~repro.policy.rule.Rule`
dataclasses on every probe is what made that algebra expensive, so this
module assigns each distinct ground rule a **dense integer ID**: a set of
ground rules then becomes a Python ``int`` bitmask, and intersection /
union / difference / subset collapse to single C-speed bitwise operations
(``& | ~``) with ``int.bit_count()`` for cardinality.

IDs are dense and stable for the lifetime of an interner: the first rule
interned gets ID 0, the next distinct rule ID 1, and so on.  Interners
only ever grow, so a bitmask built against an interner never needs
re-encoding.  :meth:`RuleInterner.for_vocabulary` hands out one shared
interner per :class:`~repro.vocab.vocabulary.Vocabulary` (weakly keyed, so
vocabularies stay collectable), which is what lets every
:class:`~repro.policy.grounding.Grounder` and
:class:`~repro.policy.grounding.Range` over the same vocabulary combine on
the fast bitwise path.
"""

from __future__ import annotations

import weakref
from collections.abc import Iterable, Iterator

from repro.policy.rule import Rule
from repro.vocab.vocabulary import Vocabulary

#: One shared interner per vocabulary, weakly keyed so a dropped
#: vocabulary does not pin its intern table in memory forever.
_BY_VOCABULARY: "weakref.WeakKeyDictionary[Vocabulary, RuleInterner]" = (
    weakref.WeakKeyDictionary()
)


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in ascending order.

    This is the decode loop for ID bitmasks: each yielded position is a
    ground-rule ID that can be resolved with
    :meth:`RuleInterner.rule_for`.
    """
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class RuleInterner:
    """A grow-only bijection between ground rules and dense integer IDs.

    The table never forgets: once a rule has an ID the ID is stable, so
    any bitmask encoded against this interner stays valid as the table
    grows.  Two masks are comparable bitwise exactly when they were built
    against the *same* interner instance — the :class:`Range` algebra
    checks identity and falls back to rule-level comparison otherwise.
    """

    __slots__ = ("_ids", "_rules", "__weakref__")

    def __init__(self) -> None:
        self._ids: dict[Rule, int] = {}
        self._rules: list[Rule] = []

    @classmethod
    def for_vocabulary(cls, vocabulary: Vocabulary) -> "RuleInterner":
        """Return the shared interner for ``vocabulary`` (created on first use).

        Grounders over the same vocabulary produce ground rules from the
        same universe, so sharing one table keeps all their ranges on the
        fast bitwise path.
        """
        interner = _BY_VOCABULARY.get(vocabulary)
        if interner is None:
            interner = cls()
            _BY_VOCABULARY[vocabulary] = interner
        return interner

    def __len__(self) -> int:
        return len(self._rules)

    def intern(self, rule: Rule) -> int:
        """Return the ID of ``rule``, assigning the next dense ID if new."""
        rule_id = self._ids.get(rule)
        if rule_id is None:
            rule_id = len(self._rules)
            self._ids[rule] = rule_id
            self._rules.append(rule)
        return rule_id

    def id_of(self, rule: Rule) -> int | None:
        """Return the ID of ``rule`` without interning, or ``None`` if unseen."""
        return self._ids.get(rule)

    def rule_for(self, rule_id: int) -> Rule:
        """Return the rule with ID ``rule_id`` (raises ``IndexError`` if unassigned)."""
        return self._rules[rule_id]

    def mask_of(self, rules: Iterable[Rule]) -> int:
        """Intern every rule in ``rules`` and return their combined bitmask."""
        mask = 0
        for rule in rules:
            mask |= 1 << self.intern(rule)
        return mask

    def rules_of(self, mask: int) -> Iterator[Rule]:
        """Decode ``mask`` back into its ground rules, in ID order."""
        rules = self._rules
        for rule_id in iter_bits(mask):
            yield rules[rule_id]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RuleInterner({len(self._rules)} ground rules)"
