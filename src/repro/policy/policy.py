"""Policies — Definition 7 of the paper.

A :class:`Policy` is an ordered collection of rules symbolically tied to a
data store: the policy store (``P_PS``, the organisation's *ideal* workflow)
or the audit logs (``P_AL``, the *real* workflow).  The tie is recorded in
:attr:`Policy.source` and is purely descriptive — both kinds of policy
support the same operations.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from enum import Enum

from repro.errors import PolicyError
from repro.policy.rule import Rule
from repro.vocab.vocabulary import Vocabulary


class PolicySource(str, Enum):
    """Where a policy's rules come from (Definition 7's subscript)."""

    POLICY_STORE = "PS"
    AUDIT_LOG = "AL"
    DERIVED = "derived"


class Policy:
    """A collection of rules tied to a data store (Definition 7).

    The paper's ``P_x = R_x^1, …, R_x^m`` is an ordered sequence, and the
    worked example in Section 5 counts duplicate audit entries separately,
    so a :class:`Policy` preserves duplicates and order.  Set semantics
    appear at the :class:`~repro.policy.grounding.Range` level instead.
    """

    def __init__(
        self,
        rules: Iterable[Rule] = (),
        source: PolicySource | str = PolicySource.DERIVED,
        name: str | None = None,
    ) -> None:
        self._rules: list[Rule] = list(rules)
        self.source = PolicySource(source)
        self.name = name or f"P_{self.source.value}"
        for rule in self._rules:
            if not isinstance(rule, Rule):
                raise PolicyError(f"policies hold Rule objects, got {rule!r}")

    # ------------------------------------------------------------------
    # collection protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    def __getitem__(self, index: int) -> Rule:
        return self._rules[index]

    def __contains__(self, rule: Rule) -> bool:
        return rule in self._rules

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Policy):
            return NotImplemented
        return self._rules == other._rules and self.source == other.source

    def __hash__(self) -> int:  # policies are mutable-ish; hash by identity
        return id(self)

    @property
    def cardinality(self) -> int:
        """The paper's ``#P`` — number of rules, duplicates included."""
        return len(self._rules)

    @property
    def rules(self) -> tuple[Rule, ...]:
        """An immutable snapshot of the rules."""
        return tuple(self._rules)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, rule: Rule) -> None:
        """Append ``rule`` to the policy."""
        if not isinstance(rule, Rule):
            raise PolicyError(f"policies hold Rule objects, got {rule!r}")
        self._rules.append(rule)

    def extend(self, rules: Iterable[Rule]) -> None:
        """Append every rule in ``rules``."""
        for rule in rules:
            self.add(rule)

    # ------------------------------------------------------------------
    # ground / composite (Corollary 2)
    # ------------------------------------------------------------------
    def is_ground(self, vocabulary: Vocabulary) -> bool:
        """True iff every rule is ground under ``vocabulary``."""
        return all(rule.is_ground(vocabulary) for rule in self._rules)

    def ground_rules(self, vocabulary: Vocabulary) -> tuple[Rule, ...]:
        """All ground rules derivable from this policy, duplicates removed.

        This is the paper's ``P'_x`` set.  Order follows first derivation.
        """
        seen: dict[Rule, None] = {}
        for rule in self._rules:
            for ground in rule.ground_rules(vocabulary):
                seen.setdefault(ground, None)
        return tuple(seen)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def distinct(self) -> "Policy":
        """Return a copy with duplicate rules removed (order preserved)."""
        seen: dict[Rule, None] = {}
        for rule in self._rules:
            seen.setdefault(rule, None)
        return Policy(seen, source=self.source, name=self.name)

    def __repr__(self) -> str:
        return f"Policy(name={self.name!r}, rules={len(self._rules)})"
