"""Ranges and memoised grounding — Definition 8 of the paper.

The *range* of a policy is the set of all ground rules derivable from it
(the paper's ``Range_P = set(P')``).  Both coverage (Algorithm 1) and prune
(Algorithm 6) reduce to set algebra on ranges, so :class:`Range` supports
intersection, union, difference and membership directly.

Grounding the same composite rules over and over dominates the cost of a
refinement loop, so :class:`Grounder` memoises per-rule expansions for a
fixed vocabulary.  The ablation benchmark E8 measures memoised vs. naive
grounding.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.policy.policy import Policy
from repro.policy.rule import Rule
from repro.vocab.vocabulary import Vocabulary


class Range:
    """An immutable set of ground rules (Definition 8).

    Equality and hashing follow the underlying frozenset, so two ranges are
    equal exactly when they derive the same ground rules — the equivalence
    relation Definition 6 induces.
    """

    __slots__ = ("_rules",)

    def __init__(self, rules: Iterable[Rule] = ()) -> None:
        self._rules = frozenset(rules)

    # ------------------------------------------------------------------
    # set protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    def __contains__(self, rule: Rule) -> bool:
        return rule in self._rules

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Range):
            return NotImplemented
        return self._rules == other._rules

    def __hash__(self) -> int:
        return hash(self._rules)

    @property
    def cardinality(self) -> int:
        """The paper's ``#Range_P``."""
        return len(self._rules)

    def intersection(self, other: "Range") -> "Range":
        """Ground-rule intersection (the overlap of Algorithm 1, line 5)."""
        return Range(self._rules & other._rules)

    def union(self, other: "Range") -> "Range":
        """Ground-rule union of the two ranges."""
        return Range(self._rules | other._rules)

    def difference(self, other: "Range") -> "Range":
        """Rules in this range but not in ``other`` (Algorithm 6's
        'set complement')."""
        return Range(self._rules - other._rules)

    def issubset(self, other: "Range") -> bool:
        """True iff every ground rule here is also in ``other``."""
        return self._rules <= other._rules

    __and__ = intersection
    __or__ = union
    __sub__ = difference
    __le__ = issubset

    def rules(self) -> tuple[Rule, ...]:
        """Return the ground rules in a deterministic (sorted) order."""
        return tuple(sorted(self._rules, key=lambda r: tuple((t.attr, t.value) for t in r.terms)))

    def __repr__(self) -> str:
        return f"Range({len(self._rules)} ground rules)"


class Grounder:
    """Memoised rule grounding against a fixed vocabulary.

    The cache key is the rule itself (rules are immutable and hashable), so
    repeated range computations over evolving policies only pay for rules
    they have not seen before.  Create one grounder per vocabulary; mutating
    the vocabulary afterwards invalidates the cache semantics, so call
    :meth:`clear` if you do.
    """

    def __init__(self, vocabulary: Vocabulary) -> None:
        self.vocabulary = vocabulary
        self._cache: dict[Rule, tuple[Rule, ...]] = {}
        self.hits = 0
        self.misses = 0

    def ground_rules(self, rule: Rule) -> tuple[Rule, ...]:
        """Return (and cache) the ground expansion of ``rule``."""
        cached = self._cache.get(rule)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        expansion = rule.ground_rules(self.vocabulary)
        self._cache[rule] = expansion
        return expansion

    def range_of(self, policy: Policy | Iterable[Rule]) -> Range:
        """Compute ``Range_P`` for a policy or bare rule iterable."""
        rules: set[Rule] = set()
        for rule in policy:
            rules.update(self.ground_rules(rule))
        return Range(rules)

    def clear(self) -> None:
        """Drop the memo table (needed after vocabulary mutation)."""
        self._cache.clear()
        self.hits = 0
        self.misses = 0


def policy_range(policy: Policy | Iterable[Rule], vocabulary: Vocabulary) -> Range:
    """One-shot ``getRange(P, V)`` from Algorithms 1 and 6.

    Builds a throwaway :class:`Grounder`; callers computing many ranges over
    the same vocabulary should hold their own grounder instead.
    """
    return Grounder(vocabulary).range_of(policy)
