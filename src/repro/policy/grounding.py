"""Ranges and memoised grounding — Definition 8 of the paper.

The *range* of a policy is the set of all ground rules derivable from it
(the paper's ``Range_P = set(P')``).  Both coverage (Algorithm 1) and prune
(Algorithm 6) reduce to set algebra on ranges, so :class:`Range` supports
intersection, union, difference and membership directly.

Since the bitset backend landed, a range is stored as a Python ``int``
bitmask over dense ground-rule IDs handed out by a
:class:`~repro.policy.interning.RuleInterner`: two ranges built against
the same interner intersect with a single bitwise ``&`` instead of
re-hashing every composite :class:`~repro.policy.rule.Rule`.  Ranges from
*different* interners (different vocabularies, or a bare ``Range(...)``
literal combined with a grounder-produced one) transparently fall back to
rule-level comparison, so the public set protocol is backend-agnostic.

Grounding the same composite rules over and over dominates the cost of a
refinement loop, so :class:`Grounder` memoises per-rule expansions (both
the rule tuples and their ID bitmasks) for a fixed vocabulary.  The
vocabulary is version-stamped: mutating it after grounding began raises
:class:`~repro.errors.CoverageError` instead of silently serving stale
expansions.  The ablation benchmark E8 measures memoised vs. naive
grounding; E14 measures the bitset backend against the frozenset baseline.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import CoverageError, PolicyError
from repro.obs.runtime import get_registry
from repro.policy.interning import RuleInterner
from repro.policy.policy import Policy
from repro.policy.rule import Rule
from repro.vocab.vocabulary import Vocabulary

#: Interner behind bare ``Range(rules)`` literals that are not tied to any
#: vocabulary.  Sharing one process-wide table keeps literal ranges on the
#: bitwise fast path with each other.
_LITERAL_INTERNER = RuleInterner()


def _rule_sort_key(rule: Rule) -> tuple:
    """The deterministic ordering :meth:`Range.rules` has always promised."""
    return tuple((t.attr, t.value) for t in rule.terms)


class Range:
    """An immutable set of ground rules (Definition 8).

    Equality and hashing follow the underlying *set of ground rules*, so
    two ranges are equal exactly when they derive the same ground rules —
    the equivalence relation Definition 6 induces — regardless of which
    interner encodes them.
    """

    __slots__ = ("_interner", "_mask", "_hash")

    def __init__(
        self, rules: Iterable[Rule] = (), *, interner: RuleInterner | None = None
    ) -> None:
        if interner is None:
            interner = _LITERAL_INTERNER
        self._interner = interner
        self._mask = interner.mask_of(rules)
        self._hash: int | None = None

    @classmethod
    def from_mask(cls, mask: int, interner: RuleInterner) -> "Range":
        """Wrap an already-encoded ID bitmask (the zero-copy constructor).

        ``mask`` must only use IDs the interner has assigned; a stray high
        bit would decode to a nonexistent rule, so it is rejected eagerly.
        """
        if mask < 0 or mask.bit_length() > len(interner):
            raise PolicyError(
                f"mask uses rule IDs up to {mask.bit_length() - 1}, but the "
                f"interner has only assigned {len(interner)}"
            )
        rng = cls.__new__(cls)
        rng._interner = interner
        rng._mask = mask
        rng._hash = None
        return rng

    # ------------------------------------------------------------------
    # backend accessors (for mask-level consumers: coverage, prune)
    # ------------------------------------------------------------------
    @property
    def mask(self) -> int:
        """The ID bitmask encoding this range under :attr:`interner`."""
        return self._mask

    @property
    def interner(self) -> RuleInterner:
        """The interner whose IDs :attr:`mask` is encoded against."""
        return self._interner

    def _mask_under(self, interner: RuleInterner, *, grow: bool) -> int:
        """Re-encode this range's mask against ``interner``.

        With ``grow=False`` unseen rules are dropped — correct for
        intersection/difference/subset probes, where a rule the other
        interner never met cannot be in the other range anyway.
        """
        if interner is self._interner:
            return self._mask
        if grow:
            return interner.mask_of(self._interner.rules_of(self._mask))
        mask = 0
        for rule in self._interner.rules_of(self._mask):
            rule_id = interner.id_of(rule)
            if rule_id is not None:
                mask |= 1 << rule_id
        return mask

    # ------------------------------------------------------------------
    # set protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._mask.bit_count()

    def __iter__(self) -> Iterator[Rule]:
        return self._interner.rules_of(self._mask)

    def __contains__(self, rule: Rule) -> bool:
        rule_id = self._interner.id_of(rule)
        return rule_id is not None and (self._mask >> rule_id) & 1 == 1

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Range):
            return NotImplemented
        if other._interner is self._interner:
            return self._mask == other._mask
        return frozenset(self) == frozenset(other)

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self))
        return self._hash

    @property
    def cardinality(self) -> int:
        """The paper's ``#Range_P``."""
        return self._mask.bit_count()

    def intersection(self, other: "Range") -> "Range":
        """Ground-rule intersection (the overlap of Algorithm 1, line 5)."""
        return Range.from_mask(
            self._mask & other._mask_under(self._interner, grow=False),
            self._interner,
        )

    def union(self, other: "Range") -> "Range":
        """Ground-rule union of the two ranges."""
        return Range.from_mask(
            self._mask | other._mask_under(self._interner, grow=True),
            self._interner,
        )

    def difference(self, other: "Range") -> "Range":
        """Rules in this range but not in ``other`` (Algorithm 6's
        'set complement')."""
        return Range.from_mask(
            self._mask & ~other._mask_under(self._interner, grow=False),
            self._interner,
        )

    def issubset(self, other: "Range") -> bool:
        """True iff every ground rule here is also in ``other``."""
        return self._mask & ~other._mask_under(self._interner, grow=False) == 0

    __and__ = intersection
    __or__ = union
    __sub__ = difference
    __le__ = issubset

    def covers_mask(self, mask: int, interner: RuleInterner) -> bool:
        """True iff every rule in ``mask`` (under ``interner``) is in this range.

        The mask-level form of the ``all(ground in range for ...)`` loops
        the coverage engines used to run; with a shared interner it is one
        bitwise expression.
        """
        if interner is self._interner:
            return mask & ~self._mask == 0
        return all(rule in self for rule in interner.rules_of(mask))

    def rules(self) -> tuple[Rule, ...]:
        """Return the ground rules in a deterministic (sorted) order."""
        return tuple(sorted(self, key=_rule_sort_key))

    def __repr__(self) -> str:
        return f"Range({self._mask.bit_count()} ground rules)"


class Grounder:
    """Memoised rule grounding against a fixed vocabulary.

    The cache key is the rule itself (rules are immutable and hashable), so
    repeated range computations over evolving policies only pay for rules
    they have not seen before.  Expansions are cached twice: as ground-rule
    tuples (:meth:`ground_rules`) and as ID bitmasks (:meth:`ground_mask`)
    against the vocabulary's shared :class:`RuleInterner`.

    Create one grounder per vocabulary.  The vocabulary's version is
    stamped at construction; mutating the vocabulary afterwards makes every
    grounding call raise :class:`~repro.errors.CoverageError` until
    :meth:`clear` re-stamps, so stale memo entries can never silently
    corrupt a coverage number.
    """

    def __init__(self, vocabulary: Vocabulary) -> None:
        self.vocabulary = vocabulary
        self.interner = RuleInterner.for_vocabulary(vocabulary)
        self._version = vocabulary.version
        self._cache: dict[Rule, tuple[Rule, ...]] = {}
        self._mask_cache: dict[Rule, int] = {}
        self.hits = 0
        self.misses = 0
        # Telemetry rides the plain counters above: the memo probe itself
        # stays metric-free and a weakly-held collector flushes deltas to
        # the registry at snapshot time (see DESIGN.md §8).
        self._obs = get_registry()
        self._reported_hits = 0
        self._reported_misses = 0
        if self._obs.enabled:
            self._obs.register_collector(self._flush_metrics)

    def _flush_metrics(self) -> None:
        reg = self._obs
        hits, misses = self.hits, self.misses
        reg.counter("repro_policy_grounder_cache_hits_total").inc(
            hits - self._reported_hits
        )
        reg.counter("repro_policy_grounder_cache_misses_total").inc(
            misses - self._reported_misses
        )
        reg.counter("repro_policy_ground_expansions_total").inc(
            misses - self._reported_misses
        )
        self._reported_hits, self._reported_misses = hits, misses
        reg.gauge("repro_policy_interner_rules").set(len(self.interner))
        reg.gauge("repro_policy_grounder_cached_rules").set(len(self._cache))

    def _check_version(self) -> None:
        if self.vocabulary.version != self._version:
            raise CoverageError(
                f"vocabulary {self.vocabulary.name!r} was mutated after this "
                "grounder cached expansions against it (version "
                f"{self._version} -> {self.vocabulary.version}); call "
                "Grounder.clear() to drop the stale cache and re-stamp"
            )

    def ground_rules(self, rule: Rule) -> tuple[Rule, ...]:
        """Return (and cache) the ground expansion of ``rule``."""
        self._check_version()
        cached = self._cache.get(rule)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        expansion = rule.ground_rules(self.vocabulary)
        self._cache[rule] = expansion
        return expansion

    def ground_mask(self, rule: Rule) -> int:
        """Return (and cache) the ID bitmask of ``rule``'s ground expansion."""
        self._check_version()
        mask = self._mask_cache.get(rule)
        if mask is not None:
            self.hits += 1
            return mask
        mask = self.interner.mask_of(self.ground_rules(rule))
        self._mask_cache[rule] = mask
        return mask

    def range_of(self, policy: Policy | Iterable[Rule]) -> Range:
        """Compute ``Range_P`` for a policy or bare rule iterable."""
        mask = 0
        for rule in policy:
            mask |= self.ground_mask(rule)
        return Range.from_mask(mask, self.interner)

    def clear(self) -> None:
        """Drop the memo table and re-stamp the vocabulary version.

        This is the recovery path after an intentional vocabulary
        mutation: stale expansions are discarded and grounding resumes
        against the current hierarchy.
        """
        self._cache.clear()
        self._mask_cache.clear()
        self._version = self.vocabulary.version
        self.hits = 0
        self.misses = 0
        # re-baseline the flushed-delta bookkeeping with the counters
        self._reported_hits = 0
        self._reported_misses = 0


def policy_range(policy: Policy | Iterable[Rule], vocabulary: Vocabulary) -> Range:
    """One-shot ``getRange(P, V)`` from Algorithms 1 and 6.

    Builds a throwaway :class:`Grounder`; callers computing many ranges over
    the same vocabulary should hold their own grounder instead.
    """
    return Grounder(vocabulary).range_of(policy)
