"""The paper's formal policy model (Section 3.1).

Public surface:

- :class:`~repro.policy.ruleterm.RuleTerm` — Definition 1.
- :class:`~repro.policy.rule.Rule` — Definition 5.
- :class:`~repro.policy.policy.Policy` / :class:`PolicySource` — Definition 7.
- :class:`~repro.policy.grounding.Range` / :class:`Grounder` /
  :func:`policy_range` — Definition 8, bitset-backed via
  :class:`~repro.policy.interning.RuleInterner`.
- :class:`~repro.policy.store.PolicyStore` — the versioned ``P_PS``.
- :func:`~repro.policy.parser.parse_policy` and friends — the authoring DSL.
"""

from repro.policy.conditions import (
    ConditionalPolicySet,
    ConditionalRule,
    TimeWindow,
)
from repro.policy.grounding import Grounder, Range, policy_range
from repro.policy.interning import RuleInterner, iter_bits
from repro.policy.parser import format_policy, format_rule, parse_policy, parse_rule
from repro.policy.policy import Policy, PolicySource
from repro.policy.rule import Rule
from repro.policy.ruleterm import RuleTerm
from repro.policy.store import PolicyStore, RuleRecord

__all__ = [
    "ConditionalPolicySet",
    "ConditionalRule",
    "Grounder",
    "TimeWindow",
    "Policy",
    "PolicySource",
    "PolicyStore",
    "Range",
    "Rule",
    "RuleInterner",
    "RuleRecord",
    "RuleTerm",
    "format_policy",
    "format_rule",
    "iter_bits",
    "parse_policy",
    "parse_rule",
    "policy_range",
]
