"""Conditional policy rules — the Section 4.2 augmentation.

The paper notes its audit model "could be augmented with the inclusion of
conditions" and that its techniques "are also applicable to augmentations
of the model".  This module provides the augmentation the temporal miner
(:mod:`repro.mining.temporal`) produces: a rule that only applies inside
a time-of-day window, e.g. *"nurses may access referral data for
registration during the night shift (22:00-06:00)"*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PolicyError
from repro.policy.parser import format_rule
from repro.policy.rule import Rule
from repro.vocab.vocabulary import Vocabulary


@dataclass(frozen=True, slots=True)
class TimeWindow:
    """A half-open daily window ``[start, end)`` in hours, wrap-aware.

    ``TimeWindow(22, 6)`` covers 22:00-23:59 and 00:00-05:59.
    ``TimeWindow(0, 24)`` (or any ``start == end`` with span 24 via the
    dedicated :meth:`all_day` constructor) covers the whole day.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if not (0 <= self.start <= 23):
            raise PolicyError(f"window start must be in 0..23, got {self.start}")
        if not (0 <= self.end <= 24):
            raise PolicyError(f"window end must be in 0..24, got {self.end}")

    @classmethod
    def all_day(cls) -> "TimeWindow":
        return cls(0, 24)

    @property
    def span(self) -> int:
        """Window length in hours (24 for the all-day window)."""
        if self.start < self.end:
            return self.end - self.start
        if self.start == self.end:
            return 24 if self.end == 24 else 0
        return (24 - self.start) + self.end

    def contains(self, hour: int) -> bool:
        """Is ``hour`` (0-23) inside the window?"""
        if not (0 <= hour <= 23):
            raise PolicyError(f"hours are 0..23, got {hour}")
        if self.start < self.end:
            return self.start <= hour < self.end
        if self.start == self.end:
            return self.end == 24  # all-day, else empty
        return hour >= self.start or hour < self.end

    def hours(self) -> tuple[int, ...]:
        """Every hour inside the window, in chronological order."""
        return tuple(
            (self.start + offset) % 24 for offset in range(self.span)
        )

    def __str__(self) -> str:
        return f"[{self.start:02d}:00, {self.end % 24:02d}:00)"


@dataclass(frozen=True, slots=True)
class ConditionalRule:
    """A policy rule that applies only inside a time window.

    An unconditioned :class:`~repro.policy.rule.Rule` is equivalent to a
    conditional rule with the all-day window; :meth:`covers` therefore
    extends the plain rule's semantics with an hour check.
    """

    rule: Rule
    window: TimeWindow

    def covers(self, ground_rule: Rule, hour: int, vocabulary: Vocabulary) -> bool:
        """Does this rule authorise ``ground_rule`` at ``hour``?"""
        return self.window.contains(hour) and self.rule.covers(
            ground_rule, vocabulary
        )

    def unconditional(self) -> Rule:
        """Drop the window (what a reviewer does when the time pattern is
        incidental rather than load-bearing)."""
        return self.rule

    def to_dsl(self) -> str:
        """Render as the policy DSL plus a WHEN clause."""
        return f"{format_rule(self.rule)} WHEN HOUR IN {self.window}"

    def __str__(self) -> str:
        return f"{self.rule} @ {self.window}"


class ConditionalPolicySet:
    """A small container answering "is this access allowed *now*?".

    Holds plain rules (always-on) and conditional rules; the enforcement
    layers stay unchanged — deployments that need time-scoped grants wrap
    their store lookups with this set.
    """

    def __init__(self) -> None:
        self._always: list[Rule] = []
        self._conditional: list[ConditionalRule] = []

    def add(self, rule: Rule | ConditionalRule) -> None:
        """Add a plain (always-on) or conditional rule."""
        if isinstance(rule, ConditionalRule):
            self._conditional.append(rule)
        elif isinstance(rule, Rule):
            self._always.append(rule)
        else:
            raise PolicyError(f"expected Rule or ConditionalRule, got {rule!r}")

    def __len__(self) -> int:
        return len(self._always) + len(self._conditional)

    @property
    def conditional_rules(self) -> tuple[ConditionalRule, ...]:
        return tuple(self._conditional)

    def permits(self, ground_rule: Rule, hour: int, vocabulary: Vocabulary) -> bool:
        """Is ``ground_rule`` authorised at ``hour``?"""
        if any(rule.covers(ground_rule, vocabulary) for rule in self._always):
            return True
        return any(
            conditional.covers(ground_rule, hour, vocabulary)
            for conditional in self._conditional
        )
