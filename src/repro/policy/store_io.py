"""JSON persistence for policy stores.

The store is the organisation's governing privacy artifact, so it needs a
durable, reviewable on-disk form.  The format wraps
:meth:`PolicyStore.to_dict` — rules appear as policy-DSL strings, keeping
the file diff-able in code review.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import PolicyError
from repro.policy.store import PolicyStore


def dumps(store: PolicyStore, indent: int | None = 2) -> str:
    """Serialise ``store`` (records, history, revision) to JSON text."""
    return json.dumps(store.to_dict(), indent=indent)


def loads(text: str) -> PolicyStore:
    """Parse a store from JSON text."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PolicyError(f"invalid policy store JSON: {exc}") from exc
    return PolicyStore.from_dict(payload)


def save(store: PolicyStore, path: str | Path) -> Path:
    """Write ``store`` to ``path``; returns the path."""
    target = Path(path)
    target.write_text(dumps(store), encoding="utf-8")
    return target


def load(path: str | Path) -> PolicyStore:
    """Read a store previously written by :func:`save`."""
    return loads(Path(path).read_text(encoding="utf-8"))
