"""Exception hierarchy for the PRIMA reproduction.

Every exception raised by this library derives from :class:`PrimaError`, so
callers can catch a single base class at API boundaries.  Sub-hierarchies
mirror the package layout: vocabulary errors, policy-model errors, the SQL
substrate's errors, and so on.
"""

from __future__ import annotations


class PrimaError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class VocabularyError(PrimaError):
    """A privacy policy vocabulary is malformed or misused."""


class UnknownTermError(VocabularyError):
    """A value was looked up in a vocabulary tree that does not define it."""

    def __init__(self, attribute: str, value: str) -> None:
        self.attribute = attribute
        self.value = value
        super().__init__(
            f"value {value!r} is not defined in the vocabulary tree "
            f"for attribute {attribute!r}"
        )


class DuplicateTermError(VocabularyError):
    """A value was added twice to the same vocabulary tree."""


class PolicyError(PrimaError):
    """A policy, rule, or rule term is malformed or misused."""


class PolicyParseError(PolicyError):
    """The policy text DSL could not be parsed."""

    def __init__(self, message: str, line: int | None = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class CoverageError(PrimaError):
    """Coverage could not be computed (e.g. empty reference range)."""


class AuditError(PrimaError):
    """An audit entry or audit log is malformed or misused."""


class StoreError(PrimaError):
    """The durable audit store is corrupt, misused, or misconfigured."""


class EnforcementError(PrimaError):
    """Active Enforcement rejected or could not rewrite a query."""


class AccessDeniedError(EnforcementError):
    """A request was denied outright by the enforcement layer."""

    def __init__(self, reason: str) -> None:
        self.reason = reason
        super().__init__(f"access denied: {reason}")


class ConsentError(PrimaError):
    """Patient consent data is malformed or misused."""


class RefinementError(PrimaError):
    """The refinement pipeline was misconfigured or failed."""


class MiningError(PrimaError):
    """A pattern-mining back-end was misconfigured or failed."""


class WorkloadError(PrimaError):
    """The synthetic workload generator was misconfigured."""


class FederationError(PrimaError):
    """The audit federation layer was misconfigured or failed."""


class ObservabilityError(PrimaError):
    """The telemetry layer (metrics, spans, snapshots) was misused."""


class ServeError(PrimaError):
    """The policy decision service (server, client or protocol) failed."""


class DaemonError(PrimaError):
    """The online refinement daemon's state or wiring is invalid."""


class FleetError(PrimaError):
    """The multi-process serving fleet (supervisor/workers) failed."""


class CorpusError(PrimaError):
    """The HIPAA-scale policy corpus generator was misconfigured, or a
    corpus bundle on disk is malformed or corrupt."""


class ExplainError(PrimaError):
    """The explanation-based auditing layer was misconfigured or fed
    inconsistent inputs (trail, relations, or template weights)."""
