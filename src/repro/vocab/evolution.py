"""Vocabulary evolution: diffing and policy impact analysis.

Vocabularies are living artifacts — Section 2 argues for finer-grained
purposes and roles, which means curators keep refining the trees.  Every
change risks silently altering policy semantics: removing a value orphans
rules that mention it, and *splitting* a leaf into children widens every
rule that granted it (the old leaf becomes composite, so its ground set
grows).  This module makes those consequences visible before deployment:

- :func:`diff_vocabularies` — structural diff of two vocabularies;
- :func:`assess_policy_impact` — per-rule verdicts for a policy store
  against the diff (unchanged / widened / narrowed / orphaned).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.vocab.vocabulary import Vocabulary

if TYPE_CHECKING:  # imported lazily to avoid a vocab <-> policy cycle
    from repro.policy.policy import Policy
    from repro.policy.rule import Rule


@dataclass(frozen=True, slots=True)
class ValueChange:
    """One changed value in one attribute tree."""

    attribute: str
    value: str
    kind: str  # "added" | "removed" | "moved" | "split" | "merged"
    detail: str = ""

    def __str__(self) -> str:
        suffix = f" ({self.detail})" if self.detail else ""
        return f"{self.kind}: {self.attribute}.{self.value}{suffix}"


@dataclass(frozen=True)
class VocabularyDiff:
    """All changes between two vocabularies."""

    changes: tuple[ValueChange, ...]

    def __len__(self) -> int:
        return len(self.changes)

    def of_kind(self, kind: str) -> tuple[ValueChange, ...]:
        """All changes of one kind (added/removed/moved/split/merged)."""
        return tuple(change for change in self.changes if change.kind == kind)

    def removed_values(self) -> dict[str, set[str]]:
        """attribute -> values that no longer exist."""
        removed: dict[str, set[str]] = {}
        for change in self.of_kind("removed"):
            removed.setdefault(change.attribute, set()).add(change.value)
        return removed


def diff_vocabularies(old: Vocabulary, new: Vocabulary) -> VocabularyDiff:
    """Structural diff: added/removed values, moves, splits and merges."""
    changes: list[ValueChange] = []
    attributes = sorted(set(old.attributes) | set(new.attributes))
    for attribute in attributes:
        old_tree = old.tree_for(attribute)
        new_tree = new.tree_for(attribute)
        if old_tree is None:
            for value in new_tree:
                changes.append(ValueChange(attribute, value, "added", "new tree"))
            continue
        if new_tree is None:
            for value in old_tree:
                changes.append(ValueChange(attribute, value, "removed", "tree dropped"))
            continue
        old_values = set(old_tree)
        new_values = set(new_tree)
        for value in sorted(new_values - old_values):
            changes.append(ValueChange(attribute, value, "added"))
        for value in sorted(old_values - new_values):
            changes.append(ValueChange(attribute, value, "removed"))
        for value in sorted(old_values & new_values):
            old_parent = old_tree.parent(value)
            new_parent = new_tree.parent(value)
            if old_parent != new_parent:
                changes.append(
                    ValueChange(
                        attribute, value, "moved",
                        f"parent {old_parent!r} -> {new_parent!r}",
                    )
                )
            was_leaf = old_tree.is_leaf(value)
            is_leaf = new_tree.is_leaf(value)
            if was_leaf and not is_leaf:
                children = ", ".join(new_tree.children(value))
                changes.append(
                    ValueChange(attribute, value, "split", f"now covers: {children}")
                )
            elif not was_leaf and is_leaf:
                changes.append(ValueChange(attribute, value, "merged", "children removed"))
    return VocabularyDiff(tuple(changes))


@dataclass(frozen=True, slots=True)
class RuleImpact:
    """What a vocabulary change does to one policy rule."""

    rule: Rule
    verdict: str  # "unchanged" | "widened" | "narrowed" | "orphaned"
    detail: str = ""

    def __str__(self) -> str:
        suffix = f" ({self.detail})" if self.detail else ""
        return f"{self.verdict}: {self.rule}{suffix}"


@dataclass(frozen=True)
class ImpactReport:
    """Per-rule impact of migrating a policy to a new vocabulary."""

    impacts: tuple[RuleImpact, ...]

    def of_verdict(self, verdict: str) -> tuple[RuleImpact, ...]:
        """All rule impacts with one verdict."""
        return tuple(impact for impact in self.impacts if impact.verdict == verdict)

    @property
    def safe(self) -> bool:
        """True when no rule is orphaned or silently widened."""
        return not self.of_verdict("orphaned") and not self.of_verdict("widened")

    def summary(self) -> str:
        """One-paragraph migration summary listing non-trivial impacts."""
        counts = {
            verdict: len(self.of_verdict(verdict))
            for verdict in ("unchanged", "widened", "narrowed", "orphaned")
        }
        lines = [
            "vocabulary migration impact: "
            + ", ".join(f"{count} {verdict}" for verdict, count in counts.items())
        ]
        for impact in self.impacts:
            if impact.verdict != "unchanged":
                lines.append(f"  - {impact}")
        return "\n".join(lines)


def assess_policy_impact(
    policy: Policy, old: Vocabulary, new: Vocabulary
) -> ImpactReport:
    """Classify every rule of ``policy`` under the vocabulary change.

    A rule is **orphaned** when it mentions a removed value (its meaning
    is undefined under the new vocabulary), **widened** when its ground
    set gains members (a silent privacy regression — e.g. a granted leaf
    was split into children), **narrowed** when it loses members, and
    **unchanged** otherwise.
    """
    removed = diff_vocabularies(old, new).removed_values()
    impacts: list[RuleImpact] = []
    for rule in policy:
        missing = [
            term
            for term in rule.terms
            if term.value in removed.get(term.attr, ())
        ]
        if missing:
            impacts.append(
                RuleImpact(
                    rule,
                    "orphaned",
                    "mentions removed "
                    + ", ".join(f"{t.attr}={t.value}" for t in missing),
                )
            )
            continue
        old_range = set(rule.ground_rules(old))
        new_range = set(rule.ground_rules(new))
        if old_range == new_range:
            impacts.append(RuleImpact(rule, "unchanged"))
        elif old_range < new_range:
            impacts.append(
                RuleImpact(
                    rule, "widened",
                    f"ground set {len(old_range)} -> {len(new_range)}",
                )
            )
        elif new_range < old_range:
            impacts.append(
                RuleImpact(
                    rule, "narrowed",
                    f"ground set {len(old_range)} -> {len(new_range)}",
                )
            )
        else:
            impacts.append(
                RuleImpact(
                    rule, "widened",
                    "ground set changed membership "
                    f"({len(old_range)} -> {len(new_range)})",
                )
            )
    return ImpactReport(tuple(impacts))
