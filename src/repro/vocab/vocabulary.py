"""Multi-attribute privacy policy vocabularies.

A :class:`Vocabulary` bundles one :class:`~repro.vocab.tree.VocabularyTree`
per hierarchical policy attribute.  It is the ``V`` parameter threaded
through every algorithm in the paper: grounding (Definition 3), equivalence
(Definitions 4 and 6), range computation (Definition 8), coverage
(Algorithm 1) and pruning (Algorithm 6) all consult it.

Attributes *without* a registered tree are treated as **flat**: every value
of such an attribute is its own ground value.  This mirrors the paper's
audit schema, where attributes like ``user`` and ``time`` carry atomic
values that no hierarchy refines.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import UnknownTermError, VocabularyError
from repro.vocab.tree import VocabularyTree, canonical


class Vocabulary:
    """A set of per-attribute value hierarchies.

    Parameters
    ----------
    name:
        Human-readable identifier, used in reports and serialisation.
    strict:
        When true, looking up a value that is missing from a registered
        tree raises :class:`~repro.errors.UnknownTermError`.  When false
        (the default) unknown values are treated as ground atoms, which is
        the forgiving behaviour an audit pipeline needs when logs mention
        values the vocabulary curator has not yet added.
    """

    def __init__(self, name: str = "vocabulary", strict: bool = False) -> None:
        self.name = name
        self.strict = strict
        self._trees: dict[str, VocabularyTree] = {}
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic mutation stamp over the whole vocabulary.

        Changes whenever a tree is registered *or* any registered tree
        gains a node, so a consumer holding one stamped value can detect
        every mutation path.  The memoised grounder uses this to refuse to
        serve expansions cached against an older hierarchy.
        """
        return self._version + sum(tree.version for tree in self._trees.values())

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_tree(self, tree: VocabularyTree) -> VocabularyTree:
        """Register ``tree`` for its attribute; returns the tree."""
        if tree.attribute in self._trees:
            raise VocabularyError(
                f"vocabulary {self.name!r} already has a tree for "
                f"attribute {tree.attribute!r}"
            )
        self._trees[tree.attribute] = tree
        self._version += 1
        return tree

    def new_tree(self, attribute: str, root: str | None = None) -> VocabularyTree:
        """Create, register and return an empty tree for ``attribute``."""
        return self.add_tree(VocabularyTree(attribute, root=root))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def attributes(self) -> tuple[str, ...]:
        """The attributes that have a registered hierarchy."""
        return tuple(self._trees)

    def tree_for(self, attribute: str) -> VocabularyTree | None:
        """Return the tree for ``attribute`` or ``None`` if it is flat."""
        return self._trees.get(canonical(attribute))

    def __contains__(self, attribute: str) -> bool:
        try:
            return canonical(attribute) in self._trees
        except VocabularyError:
            return False

    def __iter__(self) -> Iterator[VocabularyTree]:
        return iter(self._trees.values())

    def _resolve(self, attribute: str, value: str) -> tuple[VocabularyTree | None, str]:
        """Return ``(tree, canonical_value)``, enforcing strictness."""
        tree = self._trees.get(canonical(attribute))
        node = canonical(value)
        if tree is not None and node not in tree:
            if self.strict:
                raise UnknownTermError(tree.attribute, node)
            return None, node
        return tree, node

    def is_ground(self, attribute: str, value: str) -> bool:
        """True iff ``value`` is atomic for ``attribute`` (Definition 2).

        A value is ground when its attribute is flat, when the value is
        unknown to the tree (non-strict mode), or when it is a leaf.
        """
        tree, node = self._resolve(attribute, value)
        if tree is None:
            return True
        return tree.is_leaf(node)

    def ground_values(self, attribute: str, value: str) -> tuple[str, ...]:
        """Return the ground values derivable from ``value`` (Definition 3).

        For a ground value the result is a one-element tuple containing the
        canonical value itself, so the result is never empty: this is the
        paper's "existence of ground RuleTerm" guarantee.
        """
        tree, node = self._resolve(attribute, value)
        if tree is None:
            return (node,)
        return tree.leaves_under(node)

    def subsumes(self, attribute: str, ancestor: str, descendant: str) -> bool:
        """True iff ``ancestor`` covers ``descendant`` for ``attribute``.

        Flat attributes subsume only on equality.
        """
        tree, top = self._resolve(attribute, ancestor)
        _, bottom = self._resolve(attribute, descendant)
        if tree is None or bottom not in tree:
            return top == bottom
        return tree.subsumes(top, bottom)

    def overlap(self, attribute: str, value_a: str, value_b: str) -> bool:
        """True iff the ground sets of the two values intersect.

        Equivalence of RuleTerms (Definition 4) reduces to ground-set
        overlap on same-attribute terms, so this is the primitive the
        policy layer builds on.
        """
        ground_a = self.ground_values(attribute, value_a)
        ground_b = self.ground_values(attribute, value_b)
        if len(ground_a) == 1 and len(ground_b) == 1:
            return ground_a[0] == ground_b[0]
        return bool(set(ground_a) & set(ground_b))

    def fanout(self, attribute: str, value: str) -> int:
        """Return how many ground values ``value`` expands to."""
        return len(self.ground_values(attribute, value))

    # ------------------------------------------------------------------
    # serialisation helpers
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Return a JSON-ready encoding of the whole vocabulary."""
        return {
            "name": self.name,
            "strict": self.strict,
            "trees": [tree.to_dict() for tree in self._trees.values()],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Vocabulary":
        """Rebuild a vocabulary from the :meth:`to_dict` encoding."""
        try:
            vocab = cls(payload["name"], strict=bool(payload.get("strict", False)))
            trees = payload["trees"]
        except (KeyError, TypeError) as exc:
            raise VocabularyError(f"malformed vocabulary payload: {exc}") from exc
        for tree_payload in trees:
            vocab.add_tree(VocabularyTree.from_dict(tree_payload))
        return vocab

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Vocabulary(name={self.name!r}, attributes={list(self._trees)})"
