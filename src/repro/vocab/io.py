"""JSON persistence for vocabularies.

A vocabulary is an organisational artifact that privacy officers curate over
time, so it needs a stable on-disk format.  The format here is the plain
nested-dict encoding produced by :meth:`Vocabulary.to_dict`, written as
UTF-8 JSON.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import VocabularyError
from repro.vocab.vocabulary import Vocabulary


def dumps(vocabulary: Vocabulary, indent: int | None = 2) -> str:
    """Serialise ``vocabulary`` to a JSON string."""
    return json.dumps(vocabulary.to_dict(), indent=indent, sort_keys=False)


def loads(text: str) -> Vocabulary:
    """Parse a vocabulary from a JSON string."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise VocabularyError(f"invalid vocabulary JSON: {exc}") from exc
    return Vocabulary.from_dict(payload)


def save(vocabulary: Vocabulary, path: str | Path) -> Path:
    """Write ``vocabulary`` to ``path`` as JSON; returns the path."""
    target = Path(path)
    target.write_text(dumps(vocabulary), encoding="utf-8")
    return target


def load(path: str | Path) -> Vocabulary:
    """Read a vocabulary previously written by :func:`save`."""
    return loads(Path(path).read_text(encoding="utf-8"))
