"""Privacy policy vocabularies (the ``V`` of every PRIMA algorithm).

Public surface:

- :class:`~repro.vocab.tree.VocabularyTree` — one attribute's hierarchy.
- :class:`~repro.vocab.vocabulary.Vocabulary` — the per-attribute bundle.
- :func:`~repro.vocab.builtin.healthcare_vocabulary` — Figure 1's sample
  vocabulary, used by every paper example.
- :mod:`repro.vocab.io` — JSON persistence.
"""

from repro.vocab.builtin import healthcare_vocabulary
from repro.vocab.evolution import (
    ImpactReport,
    VocabularyDiff,
    assess_policy_impact,
    diff_vocabularies,
)
from repro.vocab.tree import VocabularyTree, canonical
from repro.vocab.vocabulary import Vocabulary

__all__ = [
    "ImpactReport",
    "Vocabulary",
    "VocabularyDiff",
    "VocabularyTree",
    "assess_policy_impact",
    "canonical",
    "diff_vocabularies",
    "healthcare_vocabulary",
]
