"""Single-attribute vocabulary hierarchies.

A :class:`VocabularyTree` models the hierarchy for one policy attribute —
for example the ``data`` tree from Figure 1 of the paper, in which
``demographic`` is an internal (composite) node whose leaves are ``name``,
``address``, ``gender`` and ``birth_date``.  Leaves are the *ground* values
of the attribute; internal nodes are *composite* values that a policy rule
may use as shorthand for the whole subtree.

Values are canonicalised (lower-cased, stripped, internal whitespace
collapsed to underscores) so that ``"Birth Date"`` and ``"birth_date"`` name
the same node.  The canonical form is what all other layers of the library
compare against.
"""

from __future__ import annotations

import re
from collections.abc import Iterator

from repro.errors import DuplicateTermError, UnknownTermError, VocabularyError

_WHITESPACE = re.compile(r"\s+")


def canonical(value: str) -> str:
    """Return the canonical form of a vocabulary value.

    Canonicalisation lower-cases the value, strips surrounding whitespace,
    and replaces internal whitespace runs with a single underscore.

    >>> canonical("  Birth Date ")
    'birth_date'
    """
    if not isinstance(value, str):
        raise VocabularyError(f"vocabulary values must be strings, got {value!r}")
    collapsed = _WHITESPACE.sub("_", value.strip())
    if not collapsed:
        raise VocabularyError("vocabulary values must be non-empty strings")
    return collapsed.lower()


class VocabularyTree:
    """The value hierarchy for a single policy attribute.

    Parameters
    ----------
    attribute:
        Name of the policy attribute this tree describes (``"data"``,
        ``"purpose"``, ``"authorized"`` ...).
    root:
        Name of the root node.  Defaults to the attribute name itself, which
        is the convention used by the paper's Figure 1 (the ``data`` tree is
        rooted at a node standing for "any data").
    """

    def __init__(self, attribute: str, root: str | None = None) -> None:
        self.attribute = canonical(attribute)
        self.root = canonical(root) if root is not None else self.attribute
        self._parent: dict[str, str | None] = {self.root: None}
        self._children: dict[str, list[str]] = {self.root: []}
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic mutation counter, bumped on every :meth:`add`.

        Consumers that cache derived data (the memoised grounder, interned
        range masks) stamp this value and detect later mutation instead of
        silently serving stale expansions.
        """
        return self._version

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add(self, value: str, parent: str | None = None) -> str:
        """Add ``value`` under ``parent`` (the root when omitted).

        Returns the canonical form of the added value.  Raises
        :class:`DuplicateTermError` if the value already exists and
        :class:`UnknownTermError` if the parent does not.
        """
        node = canonical(value)
        parent_node = self.root if parent is None else canonical(parent)
        if node in self._parent:
            raise DuplicateTermError(
                f"value {node!r} already exists in the {self.attribute!r} tree"
            )
        if parent_node not in self._parent:
            raise UnknownTermError(self.attribute, parent_node)
        self._parent[node] = parent_node
        self._children[node] = []
        self._children[parent_node].append(node)
        self._version += 1
        return node

    def add_branch(self, parent: str, values: list[str] | tuple[str, ...]) -> list[str]:
        """Add ``parent`` (if missing) under the root and ``values`` under it.

        Convenience for declaring one level of Figure-1-style hierarchy in a
        single call.  Returns the canonical names of the added children.
        """
        parent_node = canonical(parent)
        if parent_node not in self._parent:
            self.add(parent_node)
        return [self.add(value, parent_node) for value in values]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, value: str) -> bool:
        try:
            return canonical(value) in self._parent
        except VocabularyError:
            return False

    def __len__(self) -> int:
        return len(self._parent)

    def __iter__(self) -> Iterator[str]:
        """Iterate over all node names in preorder (root first)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(self._children[node]))

    def _require(self, value: str) -> str:
        node = canonical(value)
        if node not in self._parent:
            raise UnknownTermError(self.attribute, node)
        return node

    def parent(self, value: str) -> str | None:
        """Return the parent of ``value`` (``None`` for the root)."""
        return self._parent[self._require(value)]

    def children(self, value: str) -> tuple[str, ...]:
        """Return the direct children of ``value``."""
        return tuple(self._children[self._require(value)])

    def is_leaf(self, value: str) -> bool:
        """True iff ``value`` has no children, i.e. it is a ground value."""
        return not self._children[self._require(value)]

    def leaves(self) -> tuple[str, ...]:
        """Return every leaf in the tree, in preorder."""
        return tuple(node for node in self if not self._children[node])

    def leaves_under(self, value: str) -> tuple[str, ...]:
        """Return the ground values derivable from ``value``.

        This realises the paper's Definition 3: for a composite value the
        result is the set of leaves of its subtree; for a ground value the
        result is the value itself.
        """
        start = self._require(value)
        found: list[str] = []
        stack = [start]
        while stack:
            node = stack.pop()
            kids = self._children[node]
            if kids:
                stack.extend(reversed(kids))
            else:
                found.append(node)
        return tuple(found)

    def ancestors(self, value: str) -> tuple[str, ...]:
        """Return the ancestors of ``value`` from parent up to the root."""
        node = self._require(value)
        chain: list[str] = []
        parent = self._parent[node]
        while parent is not None:
            chain.append(parent)
            parent = self._parent[parent]
        return tuple(chain)

    def depth(self, value: str) -> int:
        """Return the depth of ``value`` (the root has depth 0)."""
        return len(self.ancestors(value))

    def subsumes(self, ancestor: str, descendant: str) -> bool:
        """True iff ``ancestor`` equals or is an ancestor of ``descendant``.

        Matches the paper's notion that a composite term covers every ground
        term derivable from it.
        """
        top = self._require(ancestor)
        bottom = self._require(descendant)
        if top == bottom:
            return True
        return top in self.ancestors(bottom)

    def height(self) -> int:
        """Return the height of the tree (a lone root has height 0)."""
        return max(self.depth(node) for node in self)

    # ------------------------------------------------------------------
    # serialisation helpers
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Return a JSON-ready nested-dict encoding of the tree."""

        def encode(node: str) -> dict:
            return {
                "name": node,
                "children": [encode(child) for child in self._children[node]],
            }

        return {"attribute": self.attribute, "root": encode(self.root)}

    @classmethod
    def from_dict(cls, payload: dict) -> "VocabularyTree":
        """Rebuild a tree from the :meth:`to_dict` encoding."""
        try:
            attribute = payload["attribute"]
            root = payload["root"]
            root_name = root["name"]
        except (KeyError, TypeError) as exc:
            raise VocabularyError(f"malformed vocabulary tree payload: {exc}") from exc
        tree = cls(attribute, root=root_name)

        def walk(node: dict, parent: str) -> None:
            for child in node.get("children", ()):
                tree.add(child["name"], parent)
                walk(child, child["name"])

        walk(root, root_name)
        return tree

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"VocabularyTree(attribute={self.attribute!r}, "
            f"nodes={len(self)}, leaves={len(self.leaves())})"
        )
