"""ASCII rendering of vocabulary trees (regenerates Figure 1).

The paper's Figure 1 shows the sample privacy policy vocabulary as a
tree.  :func:`render_tree` and :func:`render_vocabulary` reproduce that
artifact for any vocabulary, for docs, CLIs and review material.
"""

from __future__ import annotations

from repro.vocab.tree import VocabularyTree
from repro.vocab.vocabulary import Vocabulary


def render_tree(tree: VocabularyTree) -> str:
    """Render one attribute hierarchy with box-drawing guides."""
    lines = [tree.root]

    def walk(node: str, prefix: str) -> None:
        children = tree.children(node)
        for index, child in enumerate(children):
            last = index == len(children) - 1
            connector = "`-- " if last else "|-- "
            lines.append(f"{prefix}{connector}{child}")
            walk(child, prefix + ("    " if last else "|   "))

    walk(tree.root, "")
    return "\n".join(lines)


def render_vocabulary(vocabulary: Vocabulary) -> str:
    """Render every tree of the vocabulary, Figure 1 style."""
    sections = []
    for tree in vocabulary:
        sections.append(f"[{tree.attribute}]")
        sections.append(render_tree(tree))
        sections.append("")
    return "\n".join(sections).rstrip()
