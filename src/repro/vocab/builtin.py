"""The built-in healthcare vocabulary used throughout the paper's examples.

This reconstructs the "Sample Privacy Policy Vocabulary" of Figure 1 plus
every value mentioned in Section 3.3 (Figure 3) and Section 5 (Table 1):

``data``
    ``demographic`` expands to exactly four ground values (the paper notes
    that the ground set of ``(data, demographic)`` "comprises four ground
    RuleTerms"): ``name``, ``address``, ``gender``, ``birth_date``.
    ``medical_records`` groups the routine clinical record types a nurse
    touches during treatment (``prescription``, ``referral``,
    ``lab_results``), while ``psychiatry`` sits apart under ``clinical`` so
    that a grant on medical records does *not* expose psychiatric notes —
    the distinction Figure 3's fourth audit rule relies on.  ``financial``
    holds ``insurance`` and ``payment_history`` (Definition 5's example rule
    mentions insurance data).

``purpose``
    ``healthcare`` covers care delivery (``treatment``, ``diagnosis``,
    ``emergency_care``); ``operations`` covers the paperwork purposes
    (``billing``, ``registration``, ``insurance_verification``);
    ``secondary_use`` covers ``research`` and ``telemarketing`` (the
    Definition 1 example).

``authorized``
    Roles.  ``clinical_staff`` holds ``physician``, ``doctor`` and
    ``nurse``; ``administrative_staff`` holds ``clerk`` and ``registrar``.
    ``physician`` and ``doctor`` are deliberately distinct leaves: the
    paper's own example depends on it (Table 1's entry t4 records role
    ``Doctor`` yet stays an exception because the store only authorises
    ``physician`` for psychiatry, and Section 5 counts coverage 3/10
    accordingly).
"""

from __future__ import annotations

from repro.vocab.vocabulary import Vocabulary

#: Ground values of ``demographic`` — Figure 1 shows exactly four.
DEMOGRAPHIC_LEAVES = ("name", "address", "gender", "birth_date")

#: Ground values of ``medical_records``.
MEDICAL_RECORD_LEAVES = ("prescription", "referral", "lab_results")

#: Ground values of ``financial`` data.
FINANCIAL_LEAVES = ("insurance", "payment_history")

#: Ground purposes grouped by branch.
HEALTHCARE_PURPOSES = ("treatment", "diagnosis", "emergency_care")
OPERATIONS_PURPOSES = ("billing", "registration", "insurance_verification")
SECONDARY_PURPOSES = ("research", "telemarketing")

#: Ground roles grouped by branch.
CLINICAL_ROLES = ("physician", "doctor", "nurse")
ADMINISTRATIVE_ROLES = ("clerk", "registrar")


def healthcare_vocabulary(strict: bool = False) -> Vocabulary:
    """Build the Figure 1 healthcare vocabulary.

    Parameters
    ----------
    strict:
        Forwarded to :class:`~repro.vocab.vocabulary.Vocabulary`; strict
        vocabularies raise on unknown values instead of treating them as
        ground atoms.

    Returns a fresh, mutable vocabulary, so callers may extend it (e.g. the
    synthetic workload generator adds departments' local record types).
    """
    vocab = Vocabulary("healthcare", strict=strict)

    data = vocab.new_tree("data")
    data.add_branch("demographic", DEMOGRAPHIC_LEAVES)
    data.add("clinical")
    data.add("medical_records", parent="clinical")
    for leaf in MEDICAL_RECORD_LEAVES:
        data.add(leaf, parent="medical_records")
    data.add("psychiatry", parent="clinical")
    data.add_branch("financial", FINANCIAL_LEAVES)

    purpose = vocab.new_tree("purpose")
    purpose.add_branch("healthcare", HEALTHCARE_PURPOSES)
    purpose.add_branch("operations", OPERATIONS_PURPOSES)
    purpose.add_branch("secondary_use", SECONDARY_PURPOSES)

    authorized = vocab.new_tree("authorized", root="staff")
    authorized.add_branch("clinical_staff", CLINICAL_ROLES)
    authorized.add_branch("administrative_staff", ADMINISTRATIVE_ROLES)

    return vocab
