"""The continuous online refinement daemon (the closed loop, live).

:class:`RefineDaemon` turns the paper's offline audit → mine → review →
amend cycle into a background process over the live deployment:

- it **tails** the durable audit store *incrementally*: a persisted
  watermark (entry count) marks how much of the sealed region has been
  consumed, and each :meth:`poll` streams only the sealed segments past
  it — never a full rescan.  Consumed entries fold into the cumulative
  mergeable aggregates of :mod:`repro.parallel` (supports add, user sets
  union), so a mining round is a pure reduce over state proportional to
  the number of *distinct* lifted rules, not the trail length.  By the
  PR 4 merge-equivalence argument, the reduce over the cumulative
  aggregate equals a from-scratch serial ``refine()`` over the whole
  consumed trail — ``tests/test_refine_daemon_sim.py`` pins this
  byte-for-byte against the offline loop.
- mining **triggers** on a poll cadence, a wall-clock interval (under an
  injected clock), or a coverage-drop threshold fed by the incremental
  coverage engine (:class:`repro.coverage.incremental.IncrementalCoverage`),
  which observes every tailed entry as it is consumed.
- candidates pass a pluggable :class:`~repro.refine_daemon.gate.ReviewGate`;
  accepted rules **hot-swap** into the serving snapshot through a
  :class:`PolicyTarget` (the PR 5 copy-on-write admin path when embedded
  in ``repro serve``) without dropping in-flight requests.
- the whole loop state persists next to the store manifest
  (:mod:`repro.refine_daemon.state`), in commit order
  *mine → gate → persist → hot-swap*: a crash anywhere leaves a state
  file from which a restarted daemon **resumes** — the reconcile step at
  the next poll adopts accepted-but-not-yet-swapped rules (idempotent),
  so no candidate is lost and no entry is ever re-mined.

The daemon is synchronous by design: :meth:`poll` does one complete
tail → (maybe) mine → gate → swap cycle and returns a
:class:`PollReport`.  Tests drive it step-by-step; production wraps it
in :class:`~repro.refine_daemon.runner.DaemonThread`.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Protocol

from repro.coverage.engine import compute_coverage
from repro.coverage.incremental import IncrementalCoverage
from repro.errors import DaemonError
from repro.mining.patterns import MiningConfig, Pattern
from repro.mining.sql_patterns import SqlPartialAggregate, finalize_patterns
from repro.obs import trace as obstrace
from repro.obs.runtime import get_registry
from repro.parallel.partials import MapTask, ShardPartial, map_shard
from repro.parallel.shards import shards_past_watermark
from repro.policy.grounding import Grounder
from repro.policy.parser import format_rule, parse_rule
from repro.policy.policy import Policy, PolicySource
from repro.policy.rule import Rule
from repro.policy.store import PolicyStore
from repro.refine_daemon.gate import ReviewGate
from repro.refinement.prune import prune_patterns
from repro.refine_daemon.state import (
    EVIDENCE_LIMIT,
    Candidate,
    DaemonState,
    load_state,
    save_state,
)
from repro.vocab.vocabulary import Vocabulary


class PolicyTarget(Protocol):
    """Where accepted rules land — a bare store or a serving engine."""

    def current_store(self) -> PolicyStore:
        """The policy store candidates are pruned and adopted against."""
        ...  # pragma: no cover - protocol

    def adopt(self, rules, note: str = "") -> int:
        """Adopt ``rules`` (idempotent); returns how many were new."""
        ...  # pragma: no cover - protocol


class StorePolicyTarget:
    """Adopt straight into a :class:`PolicyStore` (standalone mode)."""

    def __init__(self, store: PolicyStore) -> None:
        self.store = store

    def current_store(self) -> PolicyStore:
        """The store itself."""
        return self.store

    def adopt(self, rules, note: str = "") -> int:
        """Add every rule; dedup makes re-adoption a no-op."""
        return self.store.add_all(
            tuple(rules), added_by="refine-daemon", origin="refinement", note=note
        )


class EnginePolicyTarget:
    """Adopt through a serving :class:`~repro.serve.engine.PdpEngine`.

    Each adoption is one copy-on-write snapshot swap (plus decision-cache
    invalidation), so new rules take effect between requests without
    dropping anything in flight.
    """

    def __init__(self, engine) -> None:
        self.engine = engine

    def current_store(self) -> PolicyStore:
        """The live snapshot's policy store."""
        return self.engine.manager.current.policy_store

    def adopt(self, rules, note: str = "") -> int:
        """One hot swap adopting every rule; returns how many were new."""
        _, added = self.engine.adopt_rules(tuple(rules), note=note)
        return added


@dataclass(frozen=True)
class DaemonConfig:
    """Tunables of one :class:`RefineDaemon`.

    ``mining`` carries the Algorithm 4/5 thresholds.  Mining triggers:
    ``mine_every_polls`` (0 disables the cadence), ``mine_interval``
    seconds on the injected ``clock``, and ``coverage_drop`` — mine when
    the incremental entry coverage falls this far below the last mined
    figure.  All triggers additionally require unmined consumed entries,
    except ``coverage_drop`` which may re-mine the same region after a
    policy regression.  ``entry_observer`` is a test hook called with
    every consumed entry's lifted-rule values, in global append order.
    """

    mining: MiningConfig = field(default_factory=MiningConfig)
    mine_every_polls: int = 1
    mine_interval: float | None = None
    coverage_drop: float | None = None
    clock: Callable[[], float] = time.monotonic
    shard_limit: int = 4
    entry_observer: Callable[[tuple[str, ...]], None] | None = None


@dataclass(frozen=True)
class PollReport:
    """What one synchronous :meth:`RefineDaemon.poll` did."""

    poll_index: int
    consumed: int
    watermark: int
    lag: int
    reconciled: int
    trigger: str | None
    patterns_mined: int
    patterns_useful: int
    accepted: tuple[Rule, ...]
    pended: int
    rejected: int
    set_coverage: float | None
    entry_coverage: float | None

    @property
    def mined(self) -> bool:
        """Whether this poll ran a mining round."""
        return self.trigger is not None


class RefineDaemon:
    """Watermark-tailing, incrementally-mining refinement daemon."""

    def __init__(
        self,
        log,
        target: PolicyTarget,
        vocabulary: Vocabulary,
        gate: ReviewGate,
        config: DaemonConfig | None = None,
        name: str = "refine-daemon",
        provenance=None,
    ) -> None:
        #: accepts a DurableAuditLog or a raw AuditStore
        self._store = log.store if hasattr(log, "store") else log
        self.target = target
        self.vocabulary = vocabulary
        self.gate = gate
        self.config = config or DaemonConfig()
        self.name = name
        self._lock = threading.Lock()
        self._grounder = Grounder(vocabulary)
        self._rules: dict[tuple[str, ...], Rule] = {}
        self._obs = get_registry()
        self._tracer = obstrace.get_tracer()
        if provenance is None:
            # an EnginePolicyTarget shares the serving engine's ledger, so
            # candidate evidence resolves to the traces that served it
            provenance = getattr(getattr(target, "engine", None), "provenance", None)
        #: optional ProvenanceLedger mapping evidence entries -> trace ids
        self.provenance = provenance
        self._clock = self.config.clock
        self._last_mine_at = self._clock()
        self.state = load_state(self._store.directory)
        self._tracker = self._build_tracker()

    # ------------------------------------------------------------------
    # resume plumbing
    # ------------------------------------------------------------------
    def _build_tracker(self) -> IncrementalCoverage:
        """Rebuild the incremental coverage engine from persisted state."""
        tracker = IncrementalCoverage(self.vocabulary)
        for rule in self.target.current_store().policy():
            tracker.add_rule(rule)
        for values, count in self.state.rules.items():
            rule = self._rule_for(values)
            for _ in range(count):
                tracker.observe(rule)
        return tracker

    def _rule_for(self, values: tuple[str, ...]) -> Rule:
        """The (cached) lifted rule for one attribute-value tuple."""
        rule = self._rules.get(values)
        if rule is None:
            rule = Rule.from_pairs(list(zip(self.config.mining.attributes, values)))
            self._rules[values] = rule
        return rule

    def _reconcile(self) -> int:
        """Adopt accepted rules missing from the target (crash repair).

        Covers both a crash between persist and hot-swap and CLI
        ``accept`` decisions taken while the daemon was down: adoption is
        idempotent, so replaying the whole accepted ledger is safe.
        """
        store = self.target.current_store()
        backlog = [
            parse_rule(candidate.rule)
            for candidate in self.state.accepted
            if parse_rule(candidate.rule) not in store
        ]
        if not backlog:
            return 0
        added = self.target.adopt(backlog, note="refine-daemon reconcile")
        for rule in backlog:
            self._tracker.add_rule(rule)
        return added

    # ------------------------------------------------------------------
    # the poll cycle
    # ------------------------------------------------------------------
    def poll(self, force_mine: bool = False) -> PollReport:
        """One synchronous tail → trigger → mine → gate → swap cycle."""
        # The root trace opens before the obs span so the span (and every
        # span under consume/mine) lands in the poll's span tree; a poll
        # that adopts rules is force-retained ("refined").
        with self._lock, self._tracer.trace(
            "repro_refine_daemon_poll"
        ), self._obs.span("repro_refine_daemon_poll"):
            # Reload from disk: picks up CLI review decisions and makes
            # every poll a from-persisted-state resume, which is exactly
            # the restart path — so restarts are not a special case.
            self.state = load_state(self._store.directory)
            state = self.state
            state.polls += 1
            reconciled = self._reconcile()
            with self._obs.span("repro_refine_daemon_consume"):
                consumed = self._consume()
            trigger = self._mine_trigger(force_mine)
            if trigger:
                with self._obs.span("repro_refine_daemon_mine"):
                    outcome = self._mine()
            else:
                outcome = None
            # Commit order: mine → gate → persist → hot-swap.  The state
            # file (watermark + ledger) is durable before any rule lands
            # in the serving snapshot; a crash in between is repaired by
            # the next poll's reconcile, never by re-mining.
            save_state(self._store.directory, state)
            if outcome is not None and outcome["accepted"]:
                obstrace.mark_keep("refined")
                self.target.adopt(
                    outcome["accepted"],
                    note=f"refine-daemon round={state.rounds - 1}",
                )
                for rule in outcome["accepted"]:
                    self._tracker.add_rule(rule)
            report = PollReport(
                poll_index=state.polls,
                consumed=consumed,
                watermark=state.watermark,
                lag=len(self._store) - state.watermark,
                reconciled=reconciled,
                trigger=trigger if outcome is not None else None,
                patterns_mined=len(outcome["patterns"]) if outcome else 0,
                patterns_useful=len(outcome["useful"]) if outcome else 0,
                accepted=tuple(outcome["accepted"]) if outcome else (),
                pended=outcome["pended"] if outcome else 0,
                rejected=outcome["rejected"] if outcome else 0,
                set_coverage=state.last_set_coverage,
                entry_coverage=state.last_entry_coverage,
            )
            self._record_metrics(report)
            return report

    def _consume(self) -> int:
        """Tail sealed segments past the watermark into the aggregates."""
        sealed = self._store.sealed_segments()
        total = sum(meta.entries for meta in sealed)
        state = self.state
        if total < state.watermark:
            raise DaemonError(
                f"store at {self._store.directory} holds {total} sealed "
                f"entries but the daemon watermark is {state.watermark}; "
                f"the trail shrank — refusing to tail a rewritten history"
            )
        if total == state.watermark:
            return 0
        shards = shards_past_watermark(
            self._store.directory,
            sealed,
            state.watermark,
            self.config.shard_limit,
            label=self.name,
        )
        task = MapTask(
            attributes=self.config.mining.attributes,
            include_denied=False,
            exclude_suspected=False,
            collect_regular=False,
            miner="sql",
            local_min_support=1,
            collect_exceptions=True,
        )
        consumed = 0
        for shard in shards:
            partial = map_shard(shard, task)
            # shards tail the trail in order, so the global id of a
            # shard-local position is the watermark plus everything the
            # earlier shards of this tail pass contributed
            self._merge_partial(partial, state.watermark + consumed)
            consumed += partial.entries
        if consumed != total - state.watermark:
            raise DaemonError(
                f"tail pass consumed {consumed} entries but the sealed "
                f"region grew by {total - state.watermark}; segment files "
                f"disagree with the manifest — run `repro store verify`"
            )
        state.watermark = total
        state.segments_consumed = [meta.name for meta in sealed]
        return consumed

    def _merge_partial(self, partial: ShardPartial, base: int) -> None:
        """Fold one shard's partial into the cumulative aggregates.

        ``base`` is the global audit-entry index of the shard's first
        entry — what turns the partial's local exception positions into
        the global evidence ids a candidate is stamped with.
        """
        state = self.state
        observer = self.config.entry_observer
        if observer is not None:
            order: list = [None] * partial.entries
            for values, positions in partial.rule_entries.items():
                for position in positions:
                    order[position] = values
            for values in order:
                observer(values)
        for values, positions in partial.rule_entries.items():
            count = len(positions)
            state.rules[values] = state.rules.get(values, 0) + count
            rule = self._rule_for(values)
            for _ in range(count):
                self._tracker.observe(rule)
        for values, (count, users) in partial.groups.items():
            slot = state.groups.get(values)
            if slot is None:
                state.groups[values] = [count, set(users)]
            else:
                slot[0] += count
                slot[1] |= users
        if partial.exception_entries:
            for values, positions in partial.exception_entries.items():
                evidence = state.evidence.setdefault(values, [])
                room = EVIDENCE_LIMIT - len(evidence)
                if room > 0:
                    evidence.extend(base + pos for pos in positions[:room])

    def _mine_trigger(self, force: bool) -> str | None:
        """Which trigger (if any) fires a mining round this poll."""
        state, cfg = self.state, self.config
        if state.watermark == 0:
            return None  # nothing sealed yet: coverage over zero entries
        if force:
            return "forced"
        fresh = state.watermark > state.last_mined_watermark
        if (
            fresh
            and cfg.mine_every_polls > 0
            and state.polls - state.last_mined_poll >= cfg.mine_every_polls
        ):
            return "cadence"
        if (
            fresh
            and cfg.mine_interval is not None
            and self._clock() - self._last_mine_at >= cfg.mine_interval
        ):
            return "interval"
        if (
            cfg.coverage_drop is not None
            and state.last_entry_coverage is not None
            and self._tracker.total_entries > 0
            and state.last_entry_coverage - self._tracker.entry_coverage()
            >= cfg.coverage_drop
        ):
            return "coverage-drop"
        return None

    def _mine(self) -> dict:
        """One mining round: reduce → prune → gate (no rescans)."""
        state, cfg = self.state, self.config
        aggregate = SqlPartialAggregate(
            attributes=cfg.mining.attributes,
            groups={
                values: [count, set(users)]
                for values, (count, users) in state.groups.items()
            },
        )
        patterns = finalize_patterns(aggregate, cfg.mining)
        policy = self.target.current_store().policy()
        prune = prune_patterns(patterns, policy, self.vocabulary, self._grounder)
        audit_policy = Policy(
            (self._rule_for(values) for values in state.rules),
            source=PolicySource.AUDIT_LOG,
            name=f"P_AL({self.name})",
        )
        coverage = compute_coverage(
            policy, audit_policy, self.vocabulary, self._grounder
        )
        covering_mask = coverage.covering.mask
        uncovered = sum(
            count
            for values, count in state.rules.items()
            if self._grounder.ground_mask(self._rule_for(values)) & ~covering_mask
        )
        entry_ratio = (state.watermark - uncovered) / state.watermark
        accepted: list[Rule] = []
        pended = rejected = 0
        decided = state.decided_rules()
        # DSL -> lifted values, to look a pattern's evidence back up
        dsl_values = {
            format_rule(self._rule_for(values)): values for values in state.groups
        }
        poll_trace = obstrace.current_trace_id() or ""
        # A gate that can score candidates (an ExplanationGate) stamps a
        # strength on each; plain gates leave the field None and the
        # pending queue untouched, preserving byte-identity with the
        # offline loop.
        strength_of = getattr(self.gate, "strength_of", None)
        for pattern in prune.useful:
            dsl = format_rule(pattern.rule)
            evidence = state.evidence.get(dsl_values.get(dsl, ()), [])
            existing = state.find_pending(dsl)
            if existing is not None:
                # evidence keeps accruing while the officer deliberates
                existing.support = pattern.support
                existing.distinct_users = pattern.distinct_users
                existing.evidence_entries = list(evidence)
                existing.evidence_traces = self._evidence_traces(evidence)
                if strength_of is not None:
                    existing.strength = strength_of(pattern)
                continue
            if dsl in decided:
                continue  # accepted (awaiting swap) or human-rejected
            verdict = self.gate.decide(pattern)
            candidate = Candidate(
                rule=dsl,
                support=pattern.support,
                distinct_users=pattern.distinct_users,
                round_index=state.rounds,
                evidence_entries=list(evidence),
                evidence_traces=self._evidence_traces(evidence),
                trace_id=poll_trace,
                strength=strength_of(pattern) if strength_of is not None else None,
            )
            if verdict == "accept":
                candidate.decided_by = "auto-gate"
                state.accepted.append(candidate)
                accepted.append(pattern.rule)
            elif verdict == "pend":
                state.pending.append(candidate)
                pended += 1
            else:
                # reject-for-now: NOT sticky — re-judged when support
                # grows, exactly like the offline loop's review policy
                rejected += 1
        if strength_of is not None:
            # Pre-sort the human queue by descending strength; the sort
            # is stable, so equal-strength candidates keep their mined
            # order and the queue stays deterministic.
            state.pending.sort(key=lambda c: -(c.strength or 0.0))
        state.rounds += 1
        state.last_mined_poll = state.polls
        state.last_mined_watermark = state.watermark
        state.last_set_coverage = coverage.ratio
        state.last_entry_coverage = entry_ratio
        self._last_mine_at = self._clock()
        return {
            "patterns": patterns,
            "useful": prune.useful,
            "accepted": accepted,
            "pended": pended,
            "rejected": rejected,
        }

    def _evidence_traces(self, evidence: list[int]) -> list[str]:
        """Trace ids behind the evidence entries (best-effort, sorted)."""
        if self.provenance is None or not evidence:
            return []
        resolved = self.provenance.trace_for_entries(evidence)
        return sorted(set(resolved.values()))

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _record_metrics(self, report: PollReport) -> None:
        reg = self._obs
        if not reg.enabled:
            return
        reg.counter("repro_refine_daemon_polls_total").inc()
        reg.counter("repro_refine_daemon_entries_consumed_total").inc(
            report.consumed
        )
        if report.mined:
            reg.counter("repro_refine_daemon_rounds_total").inc()
            reg.counter("repro_refine_daemon_candidates_mined_total").inc(
                report.patterns_useful
            )
            reg.counter("repro_refine_daemon_candidates_accepted_total").inc(
                len(report.accepted)
            )
            reg.counter("repro_refine_daemon_candidates_rejected_total").inc(
                report.rejected
            )
        reg.gauge("repro_refine_daemon_watermark_entries").set(report.watermark)
        reg.gauge("repro_refine_daemon_watermark_lag_entries").set(report.lag)
        reg.gauge("repro_refine_daemon_pending").set(len(self.state.pending))
        if report.entry_coverage is not None:
            reg.gauge("repro_refine_daemon_coverage").set(report.entry_coverage)

    def status(self) -> dict:
        """JSON-ready daemon state for ``stats`` and ``/healthz``."""
        state = self.state
        trail = len(self._store)
        return {
            "name": self.name,
            "watermark_entries": state.watermark,
            "trail_entries": trail,
            "lag_entries": trail - state.watermark,
            "polls": state.polls,
            "rounds": state.rounds,
            "pending": len(state.pending),
            "accepted": len(state.accepted),
            "coverage": {
                "set": state.last_set_coverage,
                "entry": state.last_entry_coverage,
            },
        }
