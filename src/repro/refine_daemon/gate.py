"""The daemon's review gate: where automation stops (or pauses).

The paper keeps a human in the refinement loop — "human input is prudent
at this stage" — so the daemon never adopts a mined rule without passing
it through a :class:`ReviewGate`.  Two built-ins:

- :class:`AutoAcceptGate` — the automated stand-in, with exactly the
  semantics of :class:`repro.refinement.review.ThresholdReview`: accept
  with enough support and distinct users, otherwise *reject for now*.
  Rejections are **not sticky**: a pattern rejected in round ``r`` is
  re-judged in round ``r+1`` when its evidence has grown, precisely as
  the offline loop re-runs its review policy every round — the byte-
  identity proof in ``tests/test_refine_daemon_sim.py`` depends on this.
- :class:`QueueForReviewGate` — the human mode: every novel candidate
  parks in the persisted pending queue, where the
  ``repro refine-daemon pending|accept|reject`` CLI decides its fate;
  the daemon adopts CLI-accepted rules at its next poll.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.mining.patterns import Pattern

#: A gate verdict: adopt now, re-judge later, or park for a human.
VERDICTS: tuple[str, ...] = ("accept", "reject", "pend")


class ReviewGate(Protocol):
    """Decides what happens to one useful (post-prune) pattern."""

    def decide(self, pattern: Pattern) -> str:
        """Return one of :data:`VERDICTS`."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True, slots=True)
class AutoAcceptGate:
    """Threshold-gated auto-accept (mirrors ``ThresholdReview``)."""

    min_support: int = 10
    min_distinct_users: int = 3

    def decide(self, pattern: Pattern) -> str:
        """Accept with enough independent evidence, else reject-for-now."""
        enough = (
            pattern.support >= self.min_support
            and pattern.distinct_users >= self.min_distinct_users
        )
        return "accept" if enough else "reject"


class QueueForReviewGate:
    """Park every novel candidate for a human decision via the CLI."""

    def decide(self, pattern: Pattern) -> str:
        """Always pend."""
        return "pend"
