"""The daemon's review gate: where automation stops (or pauses).

The paper keeps a human in the refinement loop — "human input is prudent
at this stage" — so the daemon never adopts a mined rule without passing
it through a :class:`ReviewGate`.  Two built-ins:

- :class:`AutoAcceptGate` — the automated stand-in, with exactly the
  semantics of :class:`repro.refinement.review.ThresholdReview`: accept
  with enough support and distinct users, otherwise *reject for now*.
  Rejections are **not sticky**: a pattern rejected in round ``r`` is
  re-judged in round ``r+1`` when its evidence has grown, precisely as
  the offline loop re-runs its review policy every round — the byte-
  identity proof in ``tests/test_refine_daemon_sim.py`` depends on this.
- :class:`QueueForReviewGate` — the human mode: every novel candidate
  parks in the persisted pending queue, where the
  ``repro refine-daemon pending|accept|reject`` CLI decides its fate;
  the daemon adopts CLI-accepted rules at its next poll.
- :class:`ExplanationGate` — explanation-based triage
  (:mod:`repro.explain`): candidates whose aggregate explanation
  strength clears ``auto_accept`` adopt immediately, candidates at or
  below ``auto_reject`` (when set) are rejected-for-now, and the middle
  band falls through to an ``inner`` gate — by default the human queue,
  which the daemon keeps **pre-sorted by descending strength** whenever
  its gate exposes :meth:`~ExplanationGate.strength_of`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.errors import DaemonError
from repro.mining.patterns import Pattern
from repro.policy.rule import Rule

#: A gate verdict: adopt now, re-judge later, or park for a human.
VERDICTS: tuple[str, ...] = ("accept", "reject", "pend")


class ReviewGate(Protocol):
    """Decides what happens to one useful (post-prune) pattern."""

    def decide(self, pattern: Pattern) -> str:
        """Return one of :data:`VERDICTS`."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True, slots=True)
class AutoAcceptGate:
    """Threshold-gated auto-accept (mirrors ``ThresholdReview``)."""

    min_support: int = 10
    min_distinct_users: int = 3

    def decide(self, pattern: Pattern) -> str:
        """Accept with enough independent evidence, else reject-for-now."""
        enough = (
            pattern.support >= self.min_support
            and pattern.distinct_users >= self.min_distinct_users
        )
        return "accept" if enough else "reject"


class QueueForReviewGate:
    """Park every novel candidate for a human decision via the CLI."""

    def decide(self, pattern: Pattern) -> str:
        """Always pend."""
        return "pend"


class StrengthIndex(Protocol):
    """Anything that scores a candidate rule's explanation strength.

    :class:`repro.explain.scoring.ExplanationIndex` is the canonical
    implementation; the protocol keeps this module free of a hard
    dependency on the explain package.
    """

    def strength(self, rule: Rule, default: float = 0.0) -> float:
        """Aggregate explanation strength of ``rule`` in (0, 1)."""
        ...  # pragma: no cover - protocol


@dataclass
class ExplanationGate:
    """Explanation-triaged review: auto-resolve the clear cases.

    ``auto_accept`` adopts candidates whose supporting exceptions are
    well explained (strength at or above the threshold); ``auto_reject``
    (when not ``None``) rejects-for-now candidates at or below it —
    non-sticky, like :class:`AutoAcceptGate`, so a candidate whose
    explanations improve is re-judged.  Everything in between falls
    through to ``inner`` (the human queue by default), which the daemon
    pre-sorts by descending strength via :meth:`strength_of`.

    A rule the index never saw scores ``unscored_strength`` (default
    0.0: no supporting exception was ever scored, so there is no
    evidence of legitimacy).
    """

    index: StrengthIndex
    auto_accept: float = 0.9
    auto_reject: float | None = None
    unscored_strength: float = 0.0
    inner: ReviewGate = field(default_factory=QueueForReviewGate)

    def __post_init__(self) -> None:
        if not 0.0 <= self.auto_accept <= 1.0:
            raise DaemonError(
                f"auto_accept must be in [0, 1], got {self.auto_accept}"
            )
        if self.auto_reject is not None and not (
            0.0 <= self.auto_reject <= self.auto_accept
        ):
            raise DaemonError(
                "auto_reject must satisfy 0 <= auto_reject <= auto_accept, "
                f"got auto_reject={self.auto_reject}, "
                f"auto_accept={self.auto_accept}"
            )

    def strength_of(self, pattern: Pattern) -> float:
        """The candidate's aggregate explanation strength."""
        return self.index.strength(pattern.rule, self.unscored_strength)

    def decide(self, pattern: Pattern) -> str:
        """Auto-resolve clear candidates; defer the middle band."""
        strength = self.strength_of(pattern)
        if strength >= self.auto_accept:
            return "accept"
        if self.auto_reject is not None and strength <= self.auto_reject:
            return "reject"
        return self.inner.decide(pattern)
