"""Run a :class:`~repro.refine_daemon.daemon.RefineDaemon` in the background.

:class:`DaemonThread` is the thin production wrapper around the
synchronous :meth:`~repro.refine_daemon.daemon.RefineDaemon.poll` cycle:
a daemon thread that polls on an interval, woken early whenever the
audit store seals a segment (via the store's seal-listener hook) so
fresh data is tailed promptly instead of waiting out the timer.

Errors from one poll are contained: a :class:`~repro.errors.PrimaError`
is logged and counted, and the loop keeps going — a transient store
hiccup must not kill the refinement loop of a long-running server.
Anything else propagates (and stops the thread): unknown failure modes
should be loud.
"""

from __future__ import annotations

import logging
import threading

from repro.errors import PrimaError
from repro.obs.runtime import get_registry
from repro.refine_daemon.daemon import PollReport, RefineDaemon

logger = logging.getLogger("repro.refine_daemon")


class DaemonThread:
    """Poll a :class:`RefineDaemon` on an interval, woken by seals.

    Usable as a context manager::

        with DaemonThread(daemon, interval=5.0) as runner:
            ...serve traffic...

    ``listen_to`` (default: the daemon's own store) registers a seal
    listener that wakes the loop immediately when a segment seals.
    """

    def __init__(
        self,
        daemon: RefineDaemon,
        interval: float = 5.0,
        listen_to=None,
    ) -> None:
        self.daemon = daemon
        self.interval = interval
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.polls = 0
        self.errors = 0
        self.last_report: PollReport | None = None
        store = listen_to if listen_to is not None else daemon._store
        if hasattr(store, "add_seal_listener"):
            store.add_seal_listener(self._on_seal)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "DaemonThread":
        """Start the background loop (idempotent)."""
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name=f"{self.daemon.name}-thread", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float | None = 10.0) -> None:
        """Signal the loop to exit and join it."""
        self._stop.set()
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def __enter__(self) -> "DaemonThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # signals
    # ------------------------------------------------------------------
    def wake(self) -> None:
        """Ask the loop to poll now instead of waiting out the interval."""
        self._wake.set()

    def _on_seal(self, meta) -> None:
        self.wake()

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self.last_report = self.daemon.poll()
                self.polls += 1
            except PrimaError:
                self.errors += 1
                get_registry().counter("repro_refine_daemon_errors_total").inc()
                logger.exception("refinement daemon poll failed; continuing")
            self._wake.wait(self.interval)
            self._wake.clear()
