"""Continuous online policy refinement: the paper's loop, live.

This package closes the loop the offline experiments only simulate: a
daemon that tails the durable audit store incrementally behind a
persisted watermark, mines candidate rules on a cadence or a
coverage-drop trigger, routes them through a pluggable review gate
(automatic thresholds or a human queue driven by the
``repro refine-daemon`` CLI), and hot-swaps accepted rules into the
serving snapshot without dropping in-flight requests.
"""

from repro.refine_daemon.daemon import (
    DaemonConfig,
    EnginePolicyTarget,
    PollReport,
    PolicyTarget,
    RefineDaemon,
    StorePolicyTarget,
)
from repro.refine_daemon.gate import (
    VERDICTS,
    AutoAcceptGate,
    ExplanationGate,
    QueueForReviewGate,
    ReviewGate,
    StrengthIndex,
)
from repro.refine_daemon.runner import DaemonThread
from repro.refine_daemon.state import (
    STATE_NAME,
    Candidate,
    DaemonState,
    load_state,
    save_state,
    state_path,
)

__all__ = [
    "AutoAcceptGate",
    "Candidate",
    "DaemonConfig",
    "DaemonState",
    "DaemonThread",
    "EnginePolicyTarget",
    "ExplanationGate",
    "PolicyTarget",
    "PollReport",
    "QueueForReviewGate",
    "RefineDaemon",
    "ReviewGate",
    "STATE_NAME",
    "StrengthIndex",
    "StorePolicyTarget",
    "VERDICTS",
    "load_state",
    "save_state",
    "state_path",
]
