"""Durable, resumable state of the online refinement daemon.

One JSON file — ``REFINE_DAEMON.json``, living *next to the store's
manifest* — holds everything a restarted daemon needs to resume instead
of restart:

- the **watermark**: how many entries from the front of the sealed
  region have been consumed.  An entry *count*, not a segment name,
  because compaction renames and merges sealed segments while preserving
  entry order and content — "the first W entries" survives compaction,
  a name list does not.  The consumed segment names are kept purely as
  an advisory trace for humans.
- the **cumulative mining aggregates**: the merged SQL-miner partial
  (``groups``: lifted practice rule → support + distinct-user set) and
  the distinct lifted rules of the whole consumed trail in first-
  occurrence order with entry counts (``rules``) — exactly the mergeable
  state of :mod:`repro.parallel`, so a mining round is a pure reduce
  over this state and never rescans consumed segments.
- the **review ledger**: pending / accepted / (human-)rejected
  candidates, serialised as policy DSL so the file stays reviewable.

Writes go through :func:`repro.store.manifest.atomic_write_bytes`
(write-temp → fsync → rename → dir fsync): a crash mid-save leaves the
previous state intact plus at worst a stray ``.tmp`` file the loader
never reads.  A *corrupt* main file raises :class:`DaemonError` with the
path in the message — fail loudly, never resume from garbage.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import DaemonError
from repro.store.manifest import atomic_write_bytes

#: File name of the daemon state inside a store directory.
STATE_NAME: str = "REFINE_DAEMON.json"

#: State schema version.
STATE_FORMAT: int = 1

#: A lifted-rule key: stringified attribute values, as in repro.parallel.
GroupKey = tuple[str, ...]

#: Evidence entry ids retained per mined group (bounded, oldest first).
EVIDENCE_LIMIT: int = 16


@dataclass
class Candidate:
    """One mined rule in the review ledger (DSL-serialised)."""

    rule: str
    support: int
    distinct_users: int
    round_index: int
    decided_by: str = ""
    note: str = ""
    #: global audit-entry indices of (some of) the exception accesses
    #: that mined this rule — decision provenance, bounded by
    #: :data:`EVIDENCE_LIMIT`
    evidence_entries: list[int] = field(default_factory=list)
    #: trace ids of those accesses, where the provenance ledger could
    #: resolve them (best-effort: only traced, retained decisions map)
    evidence_traces: list[str] = field(default_factory=list)
    #: trace id of the daemon poll that mined/accepted this candidate
    trace_id: str = ""
    #: aggregate explanation strength in (0, 1), stamped only when the
    #: daemon's gate scores candidates (an ExplanationGate); ``None``
    #: under plain gates, and then omitted from the state file so
    #: pre-explanation byte-identity is preserved
    strength: float | None = None

    def to_dict(self) -> dict:
        """JSON-ready mapping (``strength`` present only when scored)."""
        payload = {
            "rule": self.rule,
            "support": self.support,
            "distinct_users": self.distinct_users,
            "round_index": self.round_index,
            "decided_by": self.decided_by,
            "note": self.note,
            "evidence_entries": list(self.evidence_entries),
            "evidence_traces": list(self.evidence_traces),
            "trace_id": self.trace_id,
        }
        if self.strength is not None:
            payload["strength"] = self.strength
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Candidate":
        """Rebuild from a state-file mapping (provenance fields are
        additive — pre-tracing state files load with empty evidence)."""
        return cls(
            rule=str(payload["rule"]),
            support=int(payload["support"]),
            distinct_users=int(payload["distinct_users"]),
            round_index=int(payload["round_index"]),
            decided_by=str(payload.get("decided_by", "")),
            note=str(payload.get("note", "")),
            evidence_entries=[int(e) for e in payload.get("evidence_entries", [])],
            evidence_traces=[str(t) for t in payload.get("evidence_traces", [])],
            trace_id=str(payload.get("trace_id", "")),
            strength=(
                float(payload["strength"]) if "strength" in payload else None
            ),
        )


@dataclass
class DaemonState:
    """The daemon's whole resumable state (see module docstring)."""

    watermark: int = 0
    segments_consumed: list[str] = field(default_factory=list)
    polls: int = 0
    rounds: int = 0
    last_mined_poll: int = 0
    last_mined_watermark: int = 0
    last_set_coverage: float | None = None
    last_entry_coverage: float | None = None
    #: merged practice aggregate: lifted rule values -> [support, user-set]
    groups: dict[GroupKey, list] = field(default_factory=dict)
    #: lifted rule values -> bounded global exception-entry indices (the
    #: evidence behind :attr:`Candidate.evidence_entries`)
    evidence: dict[GroupKey, list[int]] = field(default_factory=dict)
    #: every distinct lifted rule of the consumed trail, first-occurrence
    #: order, with entry counts (drives coverage without rescans)
    rules: dict[GroupKey, int] = field(default_factory=dict)
    pending: list[Candidate] = field(default_factory=list)
    accepted: list[Candidate] = field(default_factory=list)
    rejected: list[Candidate] = field(default_factory=list)

    # ------------------------------------------------------------------
    # ledger queries
    # ------------------------------------------------------------------
    def decided_rules(self) -> set[str]:
        """DSL strings already in the ledger (any state) — a mined
        pattern matching one is not re-gated."""
        ledger = self.pending + self.accepted + self.rejected
        return {candidate.rule for candidate in ledger}

    def find_pending(self, rule: str) -> Candidate | None:
        """The pending candidate for ``rule`` (DSL), if any."""
        for candidate in self.pending:
            if candidate.rule == rule:
                return candidate
        return None

    # ------------------------------------------------------------------
    # (de)serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready mapping (user sets become sorted lists)."""
        return {
            "format": STATE_FORMAT,
            "watermark": self.watermark,
            "segments_consumed": list(self.segments_consumed),
            "polls": self.polls,
            "rounds": self.rounds,
            "last_mined_poll": self.last_mined_poll,
            "last_mined_watermark": self.last_mined_watermark,
            "last_set_coverage": self.last_set_coverage,
            "last_entry_coverage": self.last_entry_coverage,
            "groups": [
                [list(values), count, sorted(users)]
                for values, (count, users) in self.groups.items()
            ],
            "evidence": [
                [list(values), list(entry_ids)]
                for values, entry_ids in self.evidence.items()
            ],
            "rules": [
                [list(values), count] for values, count in self.rules.items()
            ],
            "pending": [candidate.to_dict() for candidate in self.pending],
            "accepted": [candidate.to_dict() for candidate in self.accepted],
            "rejected": [candidate.to_dict() for candidate in self.rejected],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DaemonState":
        """Rebuild the state; raises :class:`DaemonError` on bad shape."""
        try:
            if payload["format"] != STATE_FORMAT:
                raise DaemonError(
                    f"unsupported daemon state format {payload['format']!r} "
                    f"(this build reads format {STATE_FORMAT})"
                )
            state = cls(
                watermark=int(payload["watermark"]),
                segments_consumed=[str(n) for n in payload["segments_consumed"]],
                polls=int(payload["polls"]),
                rounds=int(payload["rounds"]),
                last_mined_poll=int(payload["last_mined_poll"]),
                last_mined_watermark=int(payload["last_mined_watermark"]),
                last_set_coverage=payload["last_set_coverage"],
                last_entry_coverage=payload["last_entry_coverage"],
            )
            for values, count, users in payload["groups"]:
                state.groups[tuple(values)] = [int(count), set(users)]
            # additive: states saved before tracing carry no evidence
            for values, entry_ids in payload.get("evidence", []):
                state.evidence[tuple(values)] = [int(e) for e in entry_ids]
            for values, count in payload["rules"]:
                state.rules[tuple(values)] = int(count)
            for key in ("pending", "accepted", "rejected"):
                getattr(state, key).extend(
                    Candidate.from_dict(item) for item in payload[key]
                )
        except DaemonError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise DaemonError(f"malformed daemon state: {exc}") from exc
        if state.watermark < 0:
            raise DaemonError(
                f"daemon state watermark must be >= 0, got {state.watermark}"
            )
        return state


def state_path(directory: str | Path) -> Path:
    """Path of the daemon state file inside a store directory."""
    return Path(directory) / STATE_NAME


def save_state(directory: str | Path, state: DaemonState) -> None:
    """Atomically and durably replace the daemon state file."""
    data = (json.dumps(state.to_dict(), indent=2, sort_keys=True) + "\n").encode(
        "utf-8"
    )
    atomic_write_bytes(state_path(directory), data)


def load_state(directory: str | Path) -> DaemonState:
    """Read the daemon state; a missing file means a fresh daemon.

    Leftover ``.tmp`` files from a crash mid-save are ignored (the main
    file is intact by construction of the atomic write); a corrupt main
    file raises :class:`DaemonError` naming the path — delete or repair
    it explicitly rather than silently restarting from zero.
    """
    path = state_path(directory)
    if not path.exists():
        return DaemonState()
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise DaemonError(
            f"{path} is not valid JSON ({exc}); delete the file to restart "
            f"the daemon from scratch, at the cost of a full re-mine"
        ) from exc
    return DaemonState.from_dict(payload)
