"""Command-line interface: ``python -m repro <command>``.

Commands:

``paper``
    Reproduce the paper's worked examples (Figure 3 and Table 1) and
    print paper-vs-measured tables.
``coverage``
    Compute both coverage semantics of a policy file over an audit log,
    with gap explanations and per-attribute breakdown.
``refine``
    Run Algorithm 2 over a policy file and an audit log; print the
    candidate rules (optionally with temporal windows).
``classify``
    Triage an audit log's exceptions into practice vs suspected
    violations.
``simulate``
    Run the closed refinement loop on the synthetic hospital and print
    the round-by-round trajectory (optionally replaying a sample of the
    traffic through active enforcement with ``--enforce-sample``; with
    ``--store-dir`` the cumulative history is persisted in a durable
    segmented store and refinement streams it off disk; with
    ``--corpus DIR`` the loop replays a saved corpus bundle's recorded
    trace from the bundle's own documented store).
``corpus``
    Generate (``generate``) and summarise (``stats``) seeded
    HIPAA-derived policy corpora (:mod:`repro.corpus`): hundreds of
    rules, stress scenarios and injected misuse with persisted ground
    truth; ``stats --verify`` regenerates from the manifest spec and
    compares bundle digests.
``triage``
    Mine refinement candidates from a corpus bundle's trace and rank
    them by aggregate explanation strength (:mod:`repro.explain`),
    printing the pre-sorted review queue with verdicts.
``store``
    Inspect and maintain a durable audit store directory:
    ``stats``, ``verify`` (full checksum pass), ``tail`` (newest
    entries), ``compact`` (merge sealed segments).
``metrics``
    Render a telemetry snapshot saved with ``--metrics-out`` as
    Prometheus text or indented JSON.
``serve``
    Run the online policy decision service (NDJSON frames over TCP plus
    ``/healthz``, ``/metrics`` and ``/decide`` over HTTP) on the demo
    clinical database; ``--store-dir`` writes the audit trail through to
    a durable segmented store.
``decide``
    Ask a running decision service for one decision — category-level
    with ``--categories``, or full SQL enforcement with ``--sql``.
``sql``
    Run (``query``) or plan (``explain``) sqlmini statements over an
    audit log materialised as the indexed ``audit_log`` table —
    ``explain`` renders the optimized plan DAG with its index seeks and
    pushed-down predicates.
``trace``
    Inspect a running service's retained request traces: ``list`` /
    ``slow`` summaries, and ``show`` rendering one trace's span tree
    with its decision provenance — or, with ``--store-dir``, an
    accepted refinement candidate's evidence (the concrete exception
    accesses and trace ids that mined it).

Policies are DSL text files (see :mod:`repro.policy.parser`); audit logs
are ``.csv`` or ``.jsonl`` files (see :mod:`repro.audit.io`) or durable
store directories (see :mod:`repro.store`; ``refine --store-dir``); the
vocabulary defaults to the built-in healthcare one and can be overridden
with ``--vocab vocab.json``.

Telemetry: every command runs under the process-wide metrics registry
(:mod:`repro.obs`).  ``--metrics-out PATH`` on ``coverage``, ``refine``
and ``simulate`` saves the end-of-run snapshot as JSON; ``--verbose``
turns on structured DEBUG logging for the ``repro`` logger tree.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.audit import io as audit_io
from repro.audit.classify import classify_exceptions
from repro.audit.log import AuditLog
from repro.coverage.engine import compute_coverage, compute_entry_coverage
from repro.coverage.gaps import analyse_gaps
from repro.coverage.trends import coverage_by_attribute
from repro.errors import PrimaError
from repro.experiments.reporting import format_table
from repro.obs.exposition import (
    load_snapshot,
    render_prometheus,
    render_summary,
    save_snapshot,
)
from repro.obs.logsetup import configure_logging
from repro.obs.runtime import get_registry
from repro.mining.apriori import AprioriPatternMiner
from repro.mining.patterns import MiningConfig
from repro.mining.sql_patterns import SqlPatternMiner
from repro.mining.temporal import hour_extractor, mine_temporal_patterns
from repro.policy.parser import format_rule, parse_policy
from repro.policy.policy import Policy
from repro.refinement.engine import RefinementConfig, refine
from repro.refinement.filtering import filter_practice
from repro.vocab import io as vocab_io
from repro.vocab.builtin import healthcare_vocabulary
from repro.vocab.vocabulary import Vocabulary


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = _build_parser()
    arguments = parser.parse_args(argv)
    if arguments.verbose:
        configure_logging(verbose=True)
    try:
        code = arguments.handler(arguments)
        metrics_out = getattr(arguments, "metrics_out", None)
        if code == 0 and metrics_out:
            save_snapshot(get_registry().snapshot(), metrics_out)
            print(f"metrics snapshot written to {metrics_out}")
        return code
    except PrimaError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


# ----------------------------------------------------------------------
# argument plumbing
# ----------------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PRIMA: privacy policy coverage and refinement for healthcare",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="structured DEBUG logging for the repro logger tree",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    paper = commands.add_parser("paper", help="reproduce the paper's worked examples")
    paper.set_defaults(handler=_cmd_paper)

    coverage = commands.add_parser("coverage", help="coverage of a policy over a log")
    _add_common_inputs(coverage)
    coverage.add_argument(
        "--by", default=None, choices=("authorized", "data", "purpose", "user"),
        help="also break coverage down by this audit attribute",
    )
    _add_metrics_out(coverage)
    coverage.set_defaults(handler=_cmd_coverage)

    refine_cmd = commands.add_parser("refine", help="mine the log for candidate rules")
    _add_common_inputs(refine_cmd, log_required=False)
    refine_cmd.add_argument("--store-dir", default=None, metavar="DIR",
                            help="read the audit log from a durable store "
                                 "directory instead of --log")
    _add_metrics_out(refine_cmd)
    refine_cmd.add_argument("--min-support", type=int, default=5,
                            help="the paper's f threshold (inclusive, default 5)")
    refine_cmd.add_argument("--min-users", type=int, default=2,
                            help="distinct users required (default 2)")
    refine_cmd.add_argument("--miner", choices=("sql", "apriori"), default="sql")
    refine_cmd.add_argument("--screen-violations", action="store_true",
                            help="drop suspected violations before mining")
    refine_cmd.add_argument("--temporal", action="store_true",
                            help="also propose time-windowed conditional rules")
    refine_cmd.add_argument("--ticks-per-hour", type=int, default=1,
                            help="log ticks per hour for --temporal (default 1)")
    refine_cmd.add_argument("--workers", type=int, default=1, metavar="N",
                            help="shard refinement across N worker processes "
                                 "(results identical to serial; default 1)")
    refine_cmd.set_defaults(handler=_cmd_refine)

    report = commands.add_parser(
        "report", help="full compliance report (coverage, trend, triage, candidates)"
    )
    _add_common_inputs(report)
    report.add_argument("--window", type=int, default=None,
                        help="trend window size in ticks (default: span/10)")
    report.set_defaults(handler=_cmd_report)

    classify = commands.add_parser("classify", help="triage exceptions in a log")
    classify.add_argument("--log", required=True, help="audit log (.csv or .jsonl)")
    classify.set_defaults(handler=_cmd_classify)

    simulate = commands.add_parser("simulate",
                                   help="closed-loop simulation on the synthetic hospital")
    simulate.add_argument("--rounds", type=int, default=6)
    simulate.add_argument("--accesses", type=int, default=5000)
    simulate.add_argument("--seed", type=int, default=7)
    simulate.add_argument("--documented", type=float, default=0.4,
                          help="fraction of the true workflow documented at start")
    simulate.add_argument("--review", choices=("accept-all", "threshold"),
                          default="threshold")
    simulate.add_argument("--enforce-sample", type=int, default=200,
                          help="replay this many simulated accesses through "
                               "active enforcement afterwards (0 disables)")
    simulate.add_argument("--store-dir", default=None, metavar="DIR",
                          help="persist the cumulative audit history in a "
                               "durable segmented store at DIR and refine "
                               "straight off disk")
    simulate.add_argument("--workers", type=int, default=1, metavar="N",
                          help="shard each round's refinement across N worker "
                               "processes (default 1)")
    simulate.add_argument("--corpus", default=None, metavar="DIR",
                          help="replay a saved corpus bundle's recorded trace "
                               "from its own documented store instead of "
                               "simulating fresh traffic (--rounds caps the "
                               "replayed rounds; --accesses/--seed/"
                               "--documented are ignored)")
    _add_metrics_out(simulate)
    simulate.set_defaults(handler=_cmd_simulate)

    corpus_cmd = commands.add_parser(
        "corpus", help="generate and inspect HIPAA-derived policy corpora"
    )
    corpus_sub = corpus_cmd.add_subparsers(dest="corpus_command", required=True)
    corpus_generate = corpus_sub.add_parser(
        "generate", help="generate a labelled corpus bundle at a directory"
    )
    corpus_generate.add_argument("--out", required=True, metavar="DIR",
                                 help="bundle directory to write")
    corpus_generate.add_argument("--seed", type=int, default=None)
    corpus_generate.add_argument("--departments", type=int, default=None,
                                 help="clinical departments (default 3)")
    corpus_generate.add_argument("--staff-per-role", type=int, default=None)
    corpus_generate.add_argument("--patients", type=int, default=None)
    corpus_generate.add_argument("--rounds", type=int, default=None)
    corpus_generate.add_argument("--accesses", type=int, default=None,
                                 help="accesses per simulated round")
    corpus_generate.add_argument("--protocol-rules", type=int, default=None,
                                 help="extra ground protocol rules to mint")
    corpus_generate.add_argument("--documented", type=float, default=None,
                                 help="fraction of permits the privacy office "
                                      "documented (default 0.55)")
    corpus_generate.add_argument("--name", default=None)
    corpus_generate.set_defaults(handler=_cmd_corpus_generate)
    corpus_stats = corpus_sub.add_parser(
        "stats", help="summarise a corpus bundle (digest-checked)"
    )
    corpus_stats.add_argument("directory", help="corpus bundle directory")
    corpus_stats.add_argument("--verify", action="store_true",
                              help="regenerate the bundle from its manifest "
                                   "spec and compare digests (exit 1 on "
                                   "mismatch)")
    corpus_stats.set_defaults(handler=_cmd_corpus_stats)

    triage = commands.add_parser(
        "triage",
        help="explanation-ranked triage of mined candidates over a corpus",
    )
    triage.add_argument("--corpus", required=True, metavar="DIR",
                        help="corpus bundle directory (from corpus generate)")
    triage.add_argument("--min-support", type=int, default=5,
                        help="the paper's f threshold (inclusive, default 5)")
    triage.add_argument("--min-users", type=int, default=2,
                        help="distinct users required (default 2)")
    triage.add_argument("--auto-accept", type=float, default=0.75,
                        help="strength at or above which a candidate is "
                             "graded adopt (default 0.75)")
    triage.add_argument("--review-threshold", type=float, default=0.4,
                        help="strength at or above which a candidate is "
                             "graded review rather than investigate "
                             "(default 0.4)")
    triage.add_argument("--json", default=None, metavar="PATH",
                        help="also write the full ranked report as JSON")
    triage.add_argument("-n", "--limit", type=int, default=20,
                        help="print at most N queue rows (default 20)")
    triage.set_defaults(handler=_cmd_triage)

    store_cmd = commands.add_parser(
        "store", help="inspect and maintain a durable audit store"
    )
    store_sub = store_cmd.add_subparsers(dest="store_command", required=True)
    store_stats = store_sub.add_parser("stats", help="summarise a store directory")
    store_stats.add_argument("directory", help="durable audit store directory")
    store_stats.set_defaults(handler=_cmd_store_stats)
    store_verify = store_sub.add_parser(
        "verify", help="full checksum pass over every segment"
    )
    store_verify.add_argument("directory", help="durable audit store directory")
    store_verify.set_defaults(handler=_cmd_store_verify)
    store_tail = store_sub.add_parser("tail", help="print the newest entries")
    store_tail.add_argument("directory", help="durable audit store directory")
    store_tail.add_argument("-n", "--count", type=int, default=10,
                            help="how many entries (default 10)")
    store_tail.set_defaults(handler=_cmd_store_tail)
    store_compact = store_sub.add_parser(
        "compact", help="merge sealed segments into full-sized ones"
    )
    store_compact.add_argument("directory", help="durable audit store directory")
    store_compact.set_defaults(handler=_cmd_store_compact)

    serve = commands.add_parser(
        "serve", help="run the online policy decision service"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7070,
                       help="TCP port (0 picks an ephemeral one; default 7070)")
    serve.add_argument("--rows", type=int, default=200,
                       help="synthetic patient rows in the demo database")
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument("--rules", default=None, metavar="FILE",
                       help="file of ALLOW rules replacing the demo policy "
                            "(one per line, # comments)")
    serve.add_argument("--store-dir", default=None, metavar="DIR",
                       help="write the audit trail through to a durable "
                            "segmented store at DIR")
    serve.add_argument("--workers", type=int, default=1, metavar="N",
                       help="run a fleet of N worker processes behind one "
                            "shared port (requires --store-dir; default 1 "
                            "serves in-process)")
    serve.add_argument("--listener", choices=("auto", "reuseport", "fd"),
                       default="auto",
                       help="fleet listener mode: SO_REUSEPORT per worker, "
                            "or one supervisor-held fd (default: auto)")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the interned decision cache")
    serve.add_argument("--cache-size", type=int, default=4096)
    serve.add_argument("--max-inflight", type=int, default=64,
                       help="decision ops executing at once")
    serve.add_argument("--max-queue", type=int, default=256,
                       help="decisions queued before OVERLOADED shedding")
    serve.add_argument("--segment-entries", type=int, default=None, metavar="N",
                       help="seal the durable trail's active segment every N "
                            "entries (rotation cadence; feeds the daemon)")
    serve.add_argument("--refine-daemon", action="store_true",
                       help="embed the online refinement daemon "
                            "(requires --store-dir)")
    serve.add_argument("--refine-interval", type=float, default=5.0,
                       metavar="SECONDS",
                       help="daemon poll interval (seals wake it early)")
    serve.add_argument("--refine-min-support", type=int, default=5,
                       help="mining threshold frequency f for the daemon")
    serve.add_argument("--refine-min-users", type=int, default=2,
                       help="mining distinct-user floor for the daemon")
    serve.add_argument("--gate", choices=("auto", "queue"), default="auto",
                       help="review gate: auto-accept by thresholds, or "
                            "queue every candidate for `repro refine-daemon`")
    serve.add_argument("--gate-support", type=int, default=10,
                       help="auto gate: minimum support to adopt")
    serve.add_argument("--gate-users", type=int, default=3,
                       help="auto gate: minimum distinct users to adopt")
    serve.add_argument("--idle-timeout", type=float, default=30.0,
                       help="seconds before an idle connection is dropped")
    serve.add_argument("--deadline", type=float, default=10.0,
                       help="default per-request deadline in seconds")
    serve.add_argument("--trace-sample", type=int, default=64, metavar="N",
                       help="head-sample every N-th request trace "
                            "(errors/shed/slow are always retained)")
    serve.add_argument("--no-trace", action="store_true",
                       help="disable request tracing and decision provenance")
    serve.set_defaults(handler=_cmd_serve)

    daemon_cmd = commands.add_parser(
        "refine-daemon",
        help="inspect the online refinement daemon and review its queue",
    )
    daemon_sub = daemon_cmd.add_subparsers(dest="daemon_command", required=True)
    rd_status = daemon_sub.add_parser(
        "status", help="watermark, rounds and ledger sizes"
    )
    rd_status.add_argument("--store-dir", required=True, metavar="DIR",
                           help="the served durable audit store directory")
    rd_status.set_defaults(handler=_cmd_daemon_status)
    rd_pending = daemon_sub.add_parser(
        "pending", help="list candidates awaiting human review"
    )
    rd_pending.add_argument("--store-dir", required=True, metavar="DIR")
    rd_pending.set_defaults(handler=_cmd_daemon_pending)
    rd_accept = daemon_sub.add_parser(
        "accept", help="accept a pending candidate (adopted at next poll)"
    )
    rd_accept.add_argument("--store-dir", required=True, metavar="DIR")
    rd_accept.add_argument("rule", help="candidate index (from `pending`) or "
                                        "its exact rule DSL")
    rd_accept.add_argument("--note", default="", help="review note")
    rd_accept.set_defaults(handler=_cmd_daemon_accept)
    rd_reject = daemon_sub.add_parser(
        "reject", help="reject a pending candidate (a durable human veto)"
    )
    rd_reject.add_argument("--store-dir", required=True, metavar="DIR")
    rd_reject.add_argument("rule", help="candidate index or exact rule DSL")
    rd_reject.add_argument("--note", default="", help="review note")
    rd_reject.set_defaults(handler=_cmd_daemon_reject)

    fleet_cmd = commands.add_parser(
        "fleet", help="inspect a running multi-worker decision fleet"
    )
    fleet_sub = fleet_cmd.add_subparsers(dest="fleet_command", required=True)
    fleet_status = fleet_sub.add_parser(
        "status", help="per-worker liveness, versions and convergence"
    )
    fleet_status.add_argument("--host", default="127.0.0.1")
    fleet_status.add_argument("--port", type=int, default=7070)
    fleet_status.add_argument("--json", action="store_true",
                              help="print the raw status document")
    fleet_status.set_defaults(handler=_cmd_fleet_status)
    fleet_metrics = fleet_sub.add_parser(
        "metrics", help="merged Prometheus text across every worker"
    )
    fleet_metrics.add_argument("--host", default="127.0.0.1")
    fleet_metrics.add_argument("--port", type=int, default=7070)
    fleet_metrics.set_defaults(handler=_cmd_fleet_metrics)

    decide = commands.add_parser(
        "decide", help="ask a running decision service for one decision"
    )
    decide.add_argument("--host", default="127.0.0.1")
    decide.add_argument("--port", type=int, default=7070)
    decide.add_argument("--user", required=True)
    decide.add_argument("--role", required=True)
    decide.add_argument("--purpose", required=True)
    decide.add_argument("--categories", nargs="+", default=None,
                        help="data categories for a category-level decision")
    decide.add_argument("--sql", default=None,
                        help="run full SQL enforcement instead of --categories")
    decide.add_argument("--exception", action="store_true",
                        help="break-the-glass access (audited as exception)")
    decide.add_argument("--deadline-ms", type=float, default=None)
    decide.set_defaults(handler=_cmd_decide)

    metrics = commands.add_parser("metrics",
                                  help="render a saved telemetry snapshot")
    metrics.add_argument("snapshot",
                         help="snapshot JSON written by --metrics-out")
    metrics.add_argument("--format", choices=("prometheus", "json", "summary"),
                         default="prometheus",
                         help="output format (default: prometheus text; "
                              "'summary' interpolates p50/p90/p99 from the "
                              "log buckets and lists trace exemplars)")
    metrics.set_defaults(handler=_cmd_metrics)

    trace_cmd = commands.add_parser(
        "trace", help="inspect retained request traces on a live server"
    )
    trace_sub = trace_cmd.add_subparsers(dest="trace_command", required=True)
    tr_list = trace_sub.add_parser("list", help="newest retained traces")
    tr_list.add_argument("--host", default="127.0.0.1")
    tr_list.add_argument("--port", type=int, default=7070)
    tr_list.add_argument("-n", "--limit", type=int, default=20)
    tr_list.set_defaults(handler=_cmd_trace_list)
    tr_slow = trace_sub.add_parser(
        "slow", help="retained traces by descending duration"
    )
    tr_slow.add_argument("--host", default="127.0.0.1")
    tr_slow.add_argument("--port", type=int, default=7070)
    tr_slow.add_argument("-n", "--limit", type=int, default=20)
    tr_slow.set_defaults(handler=_cmd_trace_slow)
    tr_show = trace_sub.add_parser(
        "show",
        help="span tree of one trace id, or the evidence of a refinement "
             "candidate (with --store-dir)",
    )
    tr_show.add_argument(
        "target",
        help="a 32-hex trace id (fetched from the server), or — with "
             "--store-dir — an accepted/pending candidate's index or rule DSL",
    )
    tr_show.add_argument("--host", default="127.0.0.1")
    tr_show.add_argument("--port", type=int, default=7070)
    tr_show.add_argument("--store-dir", default=None, metavar="DIR",
                         help="resolve the target against this store's "
                              "refinement ledger instead of the trace store")
    tr_show.set_defaults(handler=_cmd_trace_show)

    sql_cmd = commands.add_parser(
        "sql", help="run or explain sqlmini queries over an audit log"
    )
    sql_sub = sql_cmd.add_subparsers(dest="sql_command", required=True)
    sql_explain = sql_sub.add_parser(
        "explain",
        help="render the optimized plan DAG (index seeks, pushed predicates)",
    )
    sql_explain.add_argument("statement", help="a SELECT over the audit_log table")
    sql_explain.add_argument(
        "--log", default=None,
        help="audit log (.csv or .jsonl) to materialise as audit_log; "
             "default: an empty audit_log table",
    )
    sql_explain.set_defaults(handler=_cmd_sql_explain)
    sql_query = sql_sub.add_parser(
        "query", help="execute a SELECT over the audit_log table"
    )
    sql_query.add_argument("statement", help="a SELECT over the audit_log table")
    sql_query.add_argument(
        "--log", default=None,
        help="audit log (.csv or .jsonl) to materialise as audit_log",
    )
    sql_query.add_argument("-n", "--limit", type=int, default=50,
                           help="print at most N rows (default 50)")
    sql_query.set_defaults(handler=_cmd_sql_query)

    return parser


def _add_common_inputs(
    command: argparse.ArgumentParser, log_required: bool = True
) -> None:
    command.add_argument("--store", required=True, help="policy DSL file")
    command.add_argument("--log", required=log_required,
                         help="audit log (.csv or .jsonl)")
    command.add_argument("--vocab", default=None, help="vocabulary JSON (default: built-in)")


def _add_metrics_out(command: argparse.ArgumentParser) -> None:
    command.add_argument("--metrics-out", default=None, metavar="PATH",
                         help="save the telemetry snapshot as JSON on success")


def _load_vocabulary(path: str | None) -> Vocabulary:
    if path is None:
        return healthcare_vocabulary()
    return vocab_io.load(path)


def _load_policy(path: str) -> Policy:
    """Load a policy from DSL text, or from a store JSON (``.json``)."""
    if Path(path).suffix.lower() == ".json":
        from repro.policy import store_io

        return store_io.load(path).policy()
    return parse_policy(Path(path).read_text(encoding="utf-8"), source="PS")


def _load_log(path: str) -> AuditLog:
    suffix = Path(path).suffix.lower()
    if suffix == ".csv":
        return audit_io.load_csv(path)
    if suffix in (".jsonl", ".ndjson"):
        return audit_io.load_jsonl(path)
    raise PrimaError(f"unsupported audit log format {suffix!r} (use .csv or .jsonl)")


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------


def _cmd_paper(arguments: argparse.Namespace) -> int:
    from repro.experiments.paper import reproduce_figure3, reproduce_table1

    fig3 = reproduce_figure3()
    print(
        format_table(
            ["quantity", "paper", "measured"],
            [
                ["#Range(P_PS)", 8, fig3.store_range_size],
                ["#Range(P_AL)", 6, fig3.audit_range_size],
                ["coverage", "50%", f"{fig3.coverage:.0%}"],
            ],
            title="Figure 3 (Section 3.3)",
        )
    )
    print()
    table1 = reproduce_table1()
    print(
        format_table(
            ["quantity", "paper", "measured"],
            [
                ["entry coverage before", "30%",
                 f"{table1.entry_coverage_before.ratio:.0%}"],
                ["patterns mined", 1, len(table1.patterns)],
                ["pattern support", 5, table1.patterns[0].support],
                ["entry coverage after", "80%",
                 f"{table1.entry_coverage_after.ratio:.0%}"],
            ],
            title="Table 1 (Section 5)",
        )
    )
    return 0


def _cmd_coverage(arguments: argparse.Namespace) -> int:
    vocabulary = _load_vocabulary(arguments.vocab)
    store = _load_policy(arguments.store)
    log = _load_log(arguments.log)
    audit_policy = log.to_policy()
    set_report = compute_coverage(store, audit_policy, vocabulary)
    entry_report = compute_entry_coverage(store, iter(audit_policy), vocabulary)
    print(f"set coverage   : {set_report.ratio:.1%} "
          f"({set_report.overlap.cardinality}/{set_report.reference.cardinality})")
    print(f"entry coverage : {entry_report.ratio:.1%} "
          f"({entry_report.matched}/{entry_report.total})")
    gaps = analyse_gaps(set_report, store, vocabulary)
    if gaps.deviations:
        print("\ndeviations:")
        for deviation in gaps.deviations:
            print(f"  - {deviation.describe()}")
    if gaps.unexplained:
        print("\nno near-miss in the store:")
        for rule in gaps.unexplained:
            print(f"  - {rule}")
    if arguments.by:
        print(f"\nentry coverage by {arguments.by}:")
        for item in coverage_by_attribute(store, log, vocabulary, arguments.by):
            print(f"  {item.value:20s} {item.entry_coverage:7.1%} "
                  f"({item.matched}/{item.entries})")
    return 0


def _resolve_refine_log(arguments: argparse.Namespace):
    """Pick the audit source for ``refine``: ``--log`` xor ``--store-dir``."""
    if (arguments.log is None) == (arguments.store_dir is None):
        raise PrimaError(
            "refine needs exactly one audit source: --log FILE or --store-dir DIR"
        )
    if arguments.store_dir is not None:
        from repro.store.durable import DurableAuditLog

        return DurableAuditLog(arguments.store_dir, create=False)
    return _load_log(arguments.log)


def _cmd_refine(arguments: argparse.Namespace) -> int:
    vocabulary = _load_vocabulary(arguments.vocab)
    store = _load_policy(arguments.store)
    log = _resolve_refine_log(arguments)
    execution = None
    if arguments.workers > 1:
        from repro.parallel.execution import ExecutionPolicy

        execution = ExecutionPolicy(workers=arguments.workers)
    config = RefinementConfig(
        mining=MiningConfig(
            min_support=arguments.min_support,
            min_distinct_users=arguments.min_users,
        ),
        miner=AprioriPatternMiner() if arguments.miner == "apriori" else SqlPatternMiner(),
        exclude_suspected_violations=arguments.screen_violations,
        execution=execution,
    )
    result = refine(store, log, vocabulary, config)
    print(result.summary())
    if result.useful_patterns:
        print("\ncandidate rules (policy DSL):")
        for pattern in result.useful_patterns:
            print(f"  {format_rule(pattern.rule)}"
                  f"   # support={pattern.support}, users={pattern.distinct_users}")
    if arguments.temporal:
        practice = filter_practice(log)
        temporal = mine_temporal_patterns(
            practice,
            config.mining,
            hour_of=hour_extractor(ticks_per_hour=arguments.ticks_per_hour),
        )
        if temporal:
            print("\ntime-windowed candidates:")
            for item in temporal:
                print(f"  {item.to_conditional_rule().to_dsl()}"
                      f"   # concentration={item.concentration:.0%}")
    return 0


def _cmd_report(arguments: argparse.Namespace) -> int:
    from repro.audit.reports import compliance_report

    vocabulary = _load_vocabulary(arguments.vocab)
    store = _load_policy(arguments.store)
    log = _load_log(arguments.log)
    result = compliance_report(store, log, vocabulary, window_size=arguments.window)
    print(result.render())
    return 0


def _cmd_classify(arguments: argparse.Namespace) -> int:
    log = _load_log(arguments.log)
    report = classify_exceptions(log)
    print(f"exceptions          : {len(log.exceptions())}")
    print(f"judged practice     : {len(report.practice)}")
    print(f"suspected violations: {len(report.violations)}")
    flagged = [item for item in report.classified if item.verdict == "violation"]
    if flagged:
        print("\nflagged entries:")
        for item in flagged[:20]:
            print(f"  t{item.entry.time} {item.entry.user} {item.entry.to_rule()} "
                  f"(support={item.support}, users={item.distinct_users})")
        if len(flagged) > 20:
            print(f"  ... and {len(flagged) - 20} more")
    return 0


def _cmd_corpus_generate(arguments: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.corpus import (
        CorpusSpec,
        corpus_stats,
        generate_corpus,
        render_stats,
        save_corpus,
        simulate_corpus_trace,
    )

    overrides = {
        field: value
        for field, value in (
            ("seed", arguments.seed),
            ("departments", arguments.departments),
            ("staff_per_role", arguments.staff_per_role),
            ("patients", arguments.patients),
            ("rounds", arguments.rounds),
            ("accesses_per_round", arguments.accesses),
            ("protocol_rules", arguments.protocol_rules),
            ("documented_fraction", arguments.documented),
            ("name", arguments.name),
        )
        if value is not None
    }
    spec = replace(CorpusSpec(), **overrides)
    corpus = generate_corpus(spec)
    trace = simulate_corpus_trace(corpus)
    digest = save_corpus(corpus, trace, arguments.out)
    print(render_stats(corpus_stats(arguments.out)))
    print(f"bundle written to {arguments.out} (digest {digest[:16]}…)")
    return 0


def _cmd_corpus_stats(arguments: argparse.Namespace) -> int:
    from repro.corpus import (
        corpus_stats,
        load_corpus,
        render_stats,
        verify_determinism,
    )

    bundle = load_corpus(arguments.directory)
    print(render_stats(corpus_stats(bundle)))
    if arguments.verify:
        matches, recorded, regenerated = verify_determinism(bundle)
        if not matches:
            print(f"DETERMINISM VIOLATION: recorded digest {recorded} but "
                  f"regeneration produced {regenerated}", file=sys.stderr)
            return 1
        print(f"determinism verified: regeneration reproduces {recorded[:16]}…")
    return 0


def _cmd_triage(arguments: argparse.Namespace) -> int:
    from repro.corpus import load_corpus
    from repro.explain import (
        ExplanationContext,
        TriageThresholds,
        build_index,
        mine_template_weights,
        triage_patterns,
    )
    from repro.policy.grounding import Grounder
    from repro.refinement.extract import extract_patterns
    from repro.refinement.prune import prune_patterns

    bundle = load_corpus(arguments.corpus)
    context = ExplanationContext(bundle.state, bundle.log)
    weights = mine_template_weights(bundle.log, context)
    index = build_index(bundle.log, context, weights)
    patterns = extract_patterns(
        filter_practice(bundle.log),
        MiningConfig(
            min_support=arguments.min_support,
            min_distinct_users=arguments.min_users,
        ),
    )
    prune = prune_patterns(
        patterns, bundle.store.policy(), bundle.vocabulary,
        Grounder(bundle.vocabulary),
    )
    report = triage_patterns(
        prune.useful,
        index,
        TriageThresholds(
            auto_accept=arguments.auto_accept,
            review=arguments.review_threshold,
        ),
    )
    counts = report.counts()
    print(f"candidates: {len(report.candidates)}  "
          f"adopt: {counts['adopt']}  review: {counts['review']}  "
          f"investigate: {counts['investigate']}")
    rows = [
        [rank, f"{candidate.strength:.3f}", candidate.verdict,
         candidate.pattern.support, candidate.pattern.distinct_users,
         format_rule(candidate.pattern.rule)]
        for rank, candidate in enumerate(
            report.candidates[: arguments.limit], start=1
        )
    ]
    if rows:
        print(format_table(
            ["#", "strength", "verdict", "support", "users", "candidate rule"],
            rows,
            title="explanation-ranked review queue",
        ))
    if len(report.candidates) > arguments.limit:
        print(f"... and {len(report.candidates) - arguments.limit} more")
    if arguments.json:
        payload = json.dumps(report.to_dict(), indent=2, sort_keys=True)
        Path(arguments.json).write_text(payload + "\n", encoding="utf-8")
        print(f"full report written to {arguments.json}")
    return 0


def _cmd_simulate(arguments: argparse.Namespace) -> int:
    from repro.experiments.harness import run_refinement_loop, standard_loop_setup
    from repro.refinement.review import AcceptAll, ThresholdReview

    if arguments.corpus is not None:
        return _simulate_corpus_replay(arguments)
    setup = standard_loop_setup(
        documented_fraction=arguments.documented,
        accesses_per_round=arguments.accesses,
        seed=arguments.seed,
    )
    review = AcceptAll() if arguments.review == "accept-all" else ThresholdReview()
    durable = None
    if arguments.store_dir is not None:
        from repro.store.durable import DurableAuditLog

        durable = DurableAuditLog(arguments.store_dir, name="cumulative")
    result = run_refinement_loop(
        setup,
        review,
        rounds=arguments.rounds,
        cumulative_log=durable,
        workers=arguments.workers,
    )
    print(
        format_table(
            ["round", "entries", "exc-rate", "entry-cov", "accepted", "store"],
            [
                [r.round_index, r.entries, f"{r.exception_rate:.1%}",
                 f"{r.entry_coverage_after:.1%}", r.rules_accepted,
                 r.store_size_after]
                for r in result.rounds
            ],
            title=f"refinement loop ({arguments.review} review)",
        )
    )
    if arguments.enforce_sample > 0:
        from repro.experiments.harness import replay_through_enforcement

        stats = replay_through_enforcement(
            result.cumulative_log,
            sample_size=arguments.enforce_sample,
            seed=arguments.seed,
        )
        print(stats.summary())
    if durable is not None:
        durable.sync()
        print(durable.stats().summary())
        durable.close()
        print(f"cumulative history persisted at {arguments.store_dir}")
    return 0


def _simulate_corpus_replay(arguments: argparse.Namespace) -> int:
    """``simulate --corpus``: refinement over a bundle's recorded trace."""
    from repro.corpus import load_corpus
    from repro.experiments.harness import ReplayEnvironment
    from repro.refinement.loop import RefinementLoop
    from repro.refinement.review import AcceptAll, ThresholdReview

    bundle = load_corpus(arguments.corpus)
    spec = bundle.spec
    per_round = spec.accesses_per_round
    entries = tuple(bundle.log)
    windows = [
        entries[start:start + per_round]
        for start in range(0, len(entries), per_round)
    ]
    rounds = min(arguments.rounds, len(windows))
    review = AcceptAll() if arguments.review == "accept-all" else ThresholdReview()
    loop = RefinementLoop(
        ReplayEnvironment(windows[:rounds]),
        bundle.store.clone(),
        bundle.vocabulary,
        review,
    )
    result = loop.run(rounds)
    print(
        format_table(
            ["round", "entries", "exc-rate", "entry-cov", "accepted", "store"],
            [
                [r.round_index, r.entries, f"{r.exception_rate:.1%}",
                 f"{r.entry_coverage_after:.1%}", r.rules_accepted,
                 r.store_size_after]
                for r in result.rounds
            ],
            title=f"corpus replay ({spec.name}, {arguments.review} review)",
        )
    )
    return 0


def _open_store(directory: str):
    """Open an existing durable store directory for a ``store`` subcommand."""
    from repro.store.store import AuditStore

    return AuditStore(directory, create=False)


def _cmd_store_stats(arguments: argparse.Namespace) -> int:
    with _open_store(arguments.directory) as store:
        print(store.stats().summary())
    return 0


def _cmd_store_verify(arguments: argparse.Namespace) -> int:
    with _open_store(arguments.directory) as store:
        report = store.verify()
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_store_tail(arguments: argparse.Namespace) -> int:
    with _open_store(arguments.directory) as store:
        entries = store.tail(arguments.count)
    for entry in entries:
        print(f"t{entry.time} {entry.op.name.lower()} {entry.user} "
              f"{entry.data} {entry.purpose} as {entry.authorized} "
              f"[{entry.status.name.lower()}]")
    if not entries:
        print("(store is empty)")
    return 0


def _cmd_store_compact(arguments: argparse.Namespace) -> int:
    with _open_store(arguments.directory) as store:
        report = store.compact()
    print(report.summary())
    return 0


def _cmd_serve(arguments: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.obs import trace as obstrace
    from repro.serve import PdpServer, ServerConfig, build_demo_engine

    # install the tracer before anything captures it (server, daemon)
    if arguments.no_trace:
        obstrace.set_tracer(obstrace.NULL_TRACER)
    elif arguments.trace_sample != obstrace.get_tracer().sample_every:
        obstrace.set_tracer(obstrace.Tracer(sample_every=arguments.trace_sample))
    rules = None
    if arguments.rules is not None:
        rules = [
            line.strip()
            for line in Path(arguments.rules).read_text(encoding="utf-8").splitlines()
            if line.strip() and not line.strip().startswith("#")
        ]
    if arguments.workers > 1:
        return _serve_fleet(arguments, rules)
    audit_log = None
    if arguments.store_dir is not None:
        from repro.store.durable import DurableAuditLog
        from repro.store.store import StoreConfig

        store_config = None
        if arguments.segment_entries is not None:
            store_config = StoreConfig(max_segment_entries=arguments.segment_entries)
        audit_log = DurableAuditLog(
            arguments.store_dir, config=store_config, name="served"
        )
    engine = build_demo_engine(
        rows=arguments.rows,
        seed=arguments.seed,
        rules=rules,
        audit_log=audit_log,
        cache=not arguments.no_cache,
        cache_size=arguments.cache_size,
    )
    if audit_log is not None and not arguments.no_trace:
        # spool decision provenance next to the store manifest so the
        # why-records (and candidate evidence links) survive the process
        from repro.obs.provenance import PROVENANCE_NAME, ProvenanceLedger

        engine.provenance = ProvenanceLedger(
            Path(arguments.store_dir) / PROVENANCE_NAME
        )
    runner = None
    daemon = None
    if arguments.refine_daemon:
        if audit_log is None:
            print("--refine-daemon needs --store-dir (a durable trail to tail)")
            return 2
        from repro.mining.patterns import MiningConfig
        from repro.refine_daemon import (
            AutoAcceptGate,
            DaemonConfig,
            DaemonThread,
            EnginePolicyTarget,
            QueueForReviewGate,
            RefineDaemon,
        )
        from repro.vocab.builtin import healthcare_vocabulary

        gate = (
            AutoAcceptGate(arguments.gate_support, arguments.gate_users)
            if arguments.gate == "auto"
            else QueueForReviewGate()
        )
        daemon = RefineDaemon(
            audit_log,
            EnginePolicyTarget(engine),
            healthcare_vocabulary(),
            gate,
            DaemonConfig(
                mining=MiningConfig(
                    min_support=arguments.refine_min_support,
                    min_distinct_users=arguments.refine_min_users,
                )
            ),
        )
        runner = DaemonThread(daemon, interval=arguments.refine_interval)
    server = PdpServer(
        engine,
        ServerConfig(
            host=arguments.host,
            port=arguments.port,
            max_inflight=arguments.max_inflight,
            max_queue=arguments.max_queue,
            idle_timeout=arguments.idle_timeout,
            default_deadline=arguments.deadline,
        ),
        daemon=daemon,
    )

    async def _run() -> None:
        await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    signum, lambda: asyncio.ensure_future(server.shutdown())
                )
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread or platform without signal support
        print(f"pdp server listening on {server.host}:{server.port}", flush=True)
        await server.wait_closed()

    if runner is not None:
        runner.start()
        print(
            f"refinement daemon tailing {arguments.store_dir} "
            f"every {arguments.refine_interval:g}s (gate={arguments.gate})",
            flush=True,
        )
    try:
        asyncio.run(_run())
    finally:
        if runner is not None:
            runner.stop()
        engine.provenance.close()
    print("pdp server stopped (audit trail flushed)")
    if audit_log is not None:
        audit_log.close()
        print(f"durable trail persisted at {arguments.store_dir}")
    return 0


def _serve_fleet(arguments: argparse.Namespace, rules) -> int:
    """The ``repro serve --workers N`` path: a supervised process fleet."""
    import signal

    from repro.fleet import FleetConfig, FleetSupervisor

    if arguments.store_dir is None:
        print("--workers needs --store-dir: each worker writes its own "
              "durable audit segment directory under it")
        return 2
    config = FleetConfig(
        store_dir=arguments.store_dir,
        workers=arguments.workers,
        host=arguments.host,
        port=arguments.port,
        rows=arguments.rows,
        seed=arguments.seed,
        rules=tuple(rules) if rules is not None else None,
        cache=not arguments.no_cache,
        cache_size=arguments.cache_size,
        max_inflight=arguments.max_inflight,
        max_queue=arguments.max_queue,
        segment_entries=arguments.segment_entries,
        listener=arguments.listener,
    )
    supervisor = FleetSupervisor(config)
    supervisor.start()
    try:
        if arguments.refine_daemon:
            from repro.mining.patterns import MiningConfig
            from repro.refine_daemon import (
                AutoAcceptGate,
                DaemonConfig,
                QueueForReviewGate,
            )

            gate = (
                AutoAcceptGate(arguments.gate_support, arguments.gate_users)
                if arguments.gate == "auto"
                else QueueForReviewGate()
            )
            supervisor.attach_daemon(
                gate,
                config=DaemonConfig(
                    mining=MiningConfig(
                        min_support=arguments.refine_min_support,
                        min_distinct_users=arguments.refine_min_users,
                    )
                ),
                interval=arguments.refine_interval,
            )
            print(
                f"fleet refinement daemon tailing {arguments.store_dir} "
                f"every {arguments.refine_interval:g}s "
                f"(gate={arguments.gate})",
                flush=True,
            )
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                signal.signal(
                    signum, lambda *_: supervisor.request_shutdown()
                )
            except (ValueError, OSError):
                pass  # non-main thread or platform without signal support
        print(
            f"pdp fleet of {config.workers} workers listening on "
            f"{supervisor.host}:{supervisor.port} "
            f"({supervisor.listener_mode} listener)",
            flush=True,
        )
        supervisor.wait()
    finally:
        supervisor.shutdown()
    print(f"pdp fleet stopped (per-worker trails under {arguments.store_dir})")
    return 0


def _cmd_fleet_status(arguments: argparse.Namespace) -> int:
    from repro.serve import PdpClient

    with PdpClient(arguments.host, arguments.port) as client:
        status = client.fleet_status()
    if not status.get("ok"):
        print(f"fleet status failed: {status.get('error')}")
        return 1
    if arguments.json:
        print(json.dumps({k: v for k, v in status.items() if k != "ok"},
                         indent=2, default=str))
        return 0
    print(f"fleet of {status.get('size')} workers on "
          f"{status.get('host')}:{status.get('port')} "
          f"({status.get('listener')} listener)")
    print(f"  ready / converged : {status.get('ready')} / "
          f"{status.get('converged')}")
    print(f"  control version   : {status.get('control_version')} "
          f"(oplog {status.get('oplog')} ops, "
          f"{status.get('respawns')} respawns)")
    for worker in status.get("workers", ()):
        versions = worker.get("versions") or {}
        print(f"  {worker.get('site')}: pid={worker.get('pid')} "
              f"port={worker.get('port')} ready={worker.get('ready')} "
              f"entries={worker.get('audit_entries', '?')} "
              f"policy=v{versions.get('policy', '?')} "
              f"consent=v{versions.get('consent', '?')}")
    daemon = status.get("refine_daemon")
    if daemon:
        print(f"  refine daemon     : watermark "
              f"{daemon.get('watermark_entries')} "
              f"(lag {daemon.get('lag_entries')}), "
              f"{daemon.get('pending')} pending, "
              f"{daemon.get('accepted')} accepted")
    return 0


def _cmd_fleet_metrics(arguments: argparse.Namespace) -> int:
    from repro.serve import PdpClient

    with PdpClient(arguments.host, arguments.port) as client:
        response = client.fleet_metrics()
    if not response.get("ok"):
        print(f"fleet metrics failed: {response.get('error')}")
        return 1
    print(response.get("metrics", ""), end="")
    return 0


def _resolve_pending(state, token: str):
    """A pending candidate by index (as printed) or exact rule DSL."""
    if token.isdigit():
        index = int(token)
        if 0 <= index < len(state.pending):
            return state.pending[index]
        return None
    return state.find_pending(token)


def _cmd_daemon_status(arguments: argparse.Namespace) -> int:
    from repro.refine_daemon import load_state

    state = load_state(arguments.store_dir)
    print(f"daemon state for {arguments.store_dir}")
    print(f"  watermark entries : {state.watermark}")
    print(f"  segments consumed : {len(state.segments_consumed)}")
    print(f"  polls / rounds    : {state.polls} / {state.rounds}")
    if state.last_set_coverage is not None:
        print(f"  set coverage      : {state.last_set_coverage:.3f}")
        print(f"  entry coverage    : {state.last_entry_coverage:.3f}")
    print(f"  pending / accepted / rejected : "
          f"{len(state.pending)} / {len(state.accepted)} / {len(state.rejected)}")
    return 0


def _cmd_daemon_pending(arguments: argparse.Namespace) -> int:
    from repro.refine_daemon import load_state

    state = load_state(arguments.store_dir)
    if not state.pending:
        print("no candidates pending review")
        return 0
    for index, candidate in enumerate(state.pending):
        print(f"[{index}] {candidate.rule}  "
              f"(support={candidate.support}, "
              f"users={candidate.distinct_users}, "
              f"round={candidate.round_index})")
    print(f"{len(state.pending)} pending; decide with "
          f"`repro refine-daemon accept|reject --store-dir "
          f"{arguments.store_dir} <index|rule>`")
    return 0


def _cmd_daemon_accept(arguments: argparse.Namespace) -> int:
    from repro.refine_daemon import load_state, save_state

    state = load_state(arguments.store_dir)
    candidate = _resolve_pending(state, arguments.rule)
    if candidate is None:
        print(f"no pending candidate matches {arguments.rule!r} "
              f"(see `repro refine-daemon pending`)")
        return 1
    state.pending.remove(candidate)
    candidate.decided_by = "cli-review"
    candidate.note = arguments.note
    state.accepted.append(candidate)
    save_state(arguments.store_dir, state)
    print(f"accepted: {candidate.rule}")
    print("the daemon adopts it into the serving policy at its next poll")
    return 0


def _cmd_daemon_reject(arguments: argparse.Namespace) -> int:
    from repro.refine_daemon import load_state, save_state

    state = load_state(arguments.store_dir)
    candidate = _resolve_pending(state, arguments.rule)
    if candidate is None:
        print(f"no pending candidate matches {arguments.rule!r} "
              f"(see `repro refine-daemon pending`)")
        return 1
    state.pending.remove(candidate)
    candidate.decided_by = "cli-review"
    candidate.note = arguments.note
    state.rejected.append(candidate)
    save_state(arguments.store_dir, state)
    print(f"rejected: {candidate.rule} (a durable veto — it will not be "
          f"re-proposed)")
    return 0


def _cmd_decide(arguments: argparse.Namespace) -> int:
    import json

    from repro.serve import PdpClient

    if (arguments.categories is None) == (arguments.sql is None):
        raise PrimaError(
            "decide needs exactly one request shape: --categories ... or --sql SQL"
        )
    with PdpClient(arguments.host, arguments.port) as client:
        if arguments.sql is not None:
            response = client.query(
                arguments.user, arguments.role, arguments.purpose, arguments.sql,
                exception=arguments.exception, deadline_ms=arguments.deadline_ms,
            )
        else:
            response = client.decide(
                arguments.user, arguments.role, arguments.purpose,
                arguments.categories, exception=arguments.exception,
                deadline_ms=arguments.deadline_ms,
            )
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0 if response.get("ok") else 1


def _cmd_metrics(arguments: argparse.Namespace) -> int:
    import json

    snapshot = load_snapshot(arguments.snapshot)
    if arguments.format == "json":
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    elif arguments.format == "summary":
        print(render_summary(snapshot), end="")
    else:
        print(render_prometheus(snapshot), end="")
    return 0


# ----------------------------------------------------------------------
# trace inspection
# ----------------------------------------------------------------------


def _http_get_json(host: str, port: int, path: str) -> dict:
    """One HTTP GET against the serve shim, decoded as JSON."""
    import json
    from urllib.error import HTTPError, URLError
    from urllib.request import urlopen

    url = f"http://{host}:{port}{path}"
    try:
        with urlopen(url, timeout=10.0) as response:
            return json.loads(response.read().decode("utf-8"))
    except HTTPError as error:
        try:
            return json.loads(error.read().decode("utf-8"))
        except (ValueError, OSError):
            raise PrimaError(f"{url} answered HTTP {error.code}") from error
    except (URLError, OSError, ValueError) as error:
        raise PrimaError(f"could not reach {url}: {error}") from error


def _print_trace_summaries(traces: list[dict]) -> None:
    for trace in traces:
        keep = ",".join(trace.get("keep", [])) or "-"
        print(f"{trace['trace_id']}  {trace['name']:<28} "
              f"{trace['duration_ms']:>9.3f}ms  spans={trace['spans']:<3} "
              f"keep={keep}")


def _cmd_trace_list(arguments: argparse.Namespace) -> int:
    payload = _http_get_json(
        arguments.host, arguments.port, f"/traces?limit={arguments.limit}"
    )
    traces = payload.get("traces", [])
    if not traces:
        print("no retained traces (send traffic, or lower --trace-sample)")
        return 0
    _print_trace_summaries(traces)
    stats = payload.get("tracer", {})
    print(f"{len(traces)} shown; tracer started={stats.get('started')} "
          f"kept={stats.get('kept')} dropped={stats.get('dropped')}")
    return 0


def _cmd_trace_slow(arguments: argparse.Namespace) -> int:
    payload = _http_get_json(
        arguments.host, arguments.port,
        f"/traces?slow=1&limit={arguments.limit}",
    )
    traces = payload.get("traces", [])
    if not traces:
        print("no retained traces (send traffic, or lower --trace-sample)")
        return 0
    _print_trace_summaries(traces)
    return 0


def _render_span_tree(trace: dict) -> list[str]:
    """Indented span-tree lines for one full trace record."""
    spans = trace.get("spans", [])
    ids = {span["span_id"] for span in spans}
    children: dict[str, list[dict]] = {}
    roots: list[dict] = []
    for span in spans:
        if span["parent_id"] in ids:
            children.setdefault(span["parent_id"], []).append(span)
        else:
            roots.append(span)
    for group in children.values():
        group.sort(key=lambda s: s["start_ms"])
    roots.sort(key=lambda s: s["start_ms"])
    lines: list[str] = []

    def walk(span: dict, depth: int) -> None:
        labels = "".join(
            f" {key}={value}" for key, value in sorted(span["labels"].items())
        )
        error = f"  ERROR={span['error']}" if span.get("error") else ""
        lines.append(
            f"{'  ' * depth}- {span['name']}{labels}  "
            f"+{span['start_ms']:.3f}ms  {span['duration_ms']:.3f}ms{error}"
        )
        for child in children.get(span["span_id"], []):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return lines


def _print_full_trace(trace: dict) -> None:
    keep = ",".join(trace.get("keep", [])) or "-"
    print(f"trace {trace['trace_id']}  ({trace['name']}, "
          f"{trace['duration_ms']:.3f}ms, keep={keep})")
    if trace.get("parent_id"):
        print(f"  remote parent span: {trace['parent_id']}")
    annotations = trace.get("annotations") or {}
    for key, value in sorted(annotations.items()):
        print(f"  {key}: {value}")
    for line in _render_span_tree(trace):
        print(f"  {line}")
    for record in trace.get("provenance", []):
        print(f"  provenance: op={record['op']} decision={record['decision']} "
              f"cache={record['cache']} entries={record['entry_ids']} "
              f"matched={record['matched_rules']}")


def _cmd_trace_show(arguments: argparse.Namespace) -> int:
    import re as _re

    if arguments.store_dir is None:
        if not _re.fullmatch(r"[0-9a-f]{32}", arguments.target):
            print(f"{arguments.target!r} is not a 32-hex trace id; to look "
                  f"up a refinement candidate, pass --store-dir DIR")
            return 2
        trace = _http_get_json(
            arguments.host, arguments.port, f"/traces/{arguments.target}"
        )
        if "trace_id" not in trace:
            print(trace.get("error", f"no retained trace {arguments.target}"))
            return 1
        _print_full_trace(trace)
        return 0

    from repro.refine_daemon import load_state

    state = load_state(arguments.store_dir)
    ledger = state.accepted + state.pending
    candidate = None
    if arguments.target.isdigit() and int(arguments.target) < len(ledger):
        candidate = ledger[int(arguments.target)]
    else:
        for entry in ledger:
            if entry.rule == arguments.target:
                candidate = entry
                break
    if candidate is None:
        print(f"no accepted/pending candidate matches {arguments.target!r} "
              f"in {arguments.store_dir}")
        return 1
    print(f"candidate: {candidate.rule}")
    print(f"  support={candidate.support} users={candidate.distinct_users} "
          f"round={candidate.round_index} decided_by={candidate.decided_by or '-'}")
    if candidate.trace_id:
        print(f"  mined by daemon poll trace: {candidate.trace_id}")
    if candidate.evidence_entries:
        print(f"  evidence audit entries: {candidate.evidence_entries}")
    else:
        print("  evidence audit entries: (none recorded — pre-tracing state?)")
    if candidate.evidence_traces:
        print(f"  evidence traces: {candidate.evidence_traces}")
    for trace_id in [candidate.trace_id, *candidate.evidence_traces]:
        if not trace_id:
            continue
        try:
            trace = _http_get_json(
                arguments.host, arguments.port, f"/traces/{trace_id}"
            )
        except PrimaError:
            print(f"  (server unreachable — cannot render trace {trace_id})")
            break
        if "trace_id" in trace:
            _print_full_trace(trace)
        else:
            print(f"  trace {trace_id}: no longer retained on the server")
    return 0


def _sql_database(log_path: str | None):
    from repro.audit.schema import audit_table_schema, create_audit_indexes
    from repro.sqlmini.database import Database

    database = Database("cli")
    if log_path:
        log = _load_log(log_path)
        log.to_table(database, "audit_log", index=True)
    else:
        table = database.create_table(audit_table_schema("audit_log"))
        create_audit_indexes(table)
    return database


def _cmd_sql_explain(arguments: argparse.Namespace) -> int:
    database = _sql_database(arguments.log)
    print(database.explain(arguments.statement))
    return 0


def _cmd_sql_query(arguments: argparse.Namespace) -> int:
    database = _sql_database(arguments.log)
    result = database.query(arguments.statement)
    print("\t".join(result.columns))
    shown = result.rows[: max(arguments.limit, 0)]
    for row in shown:
        print("\t".join("NULL" if value is None else str(value) for value in row))
    if len(result.rows) > len(shown):
        print(f"... and {len(result.rows) - len(shown)} more rows")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
