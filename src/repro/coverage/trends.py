"""Coverage trend analytics over audit history.

The PRIMA loop needs more than a single coverage number: stakeholders ask
*is coverage improving over time* (Figure 2's arrow) and *where is the
policy weakest* (Section 2's role-delineation discussion).  This module
answers both:

- :func:`coverage_series` — coverage per fixed-size time window of the
  log, the data behind a coverage-over-time chart;
- :func:`coverage_by_attribute` — entry coverage broken down by one
  audit attribute (per role, per data category, per purpose), pointing
  the privacy officer at the most under-documented corner of the
  workflow.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.audit.log import AuditLog
from repro.audit.schema import AUDIT_ATTRIBUTES, RULE_ATTRIBUTES
from repro.errors import AuditError, CoverageError
from repro.policy.grounding import Grounder
from repro.policy.policy import Policy
from repro.vocab.vocabulary import Vocabulary


@dataclass(frozen=True, slots=True)
class WindowPoint:
    """Coverage numbers for one time window of the log."""

    start: int
    end: int
    entries: int
    entry_coverage: float
    set_coverage: float
    exception_rate: float


def coverage_series(
    policy: Policy,
    log: AuditLog,
    vocabulary: Vocabulary,
    window_size: int,
    attributes: tuple[str, ...] = RULE_ATTRIBUTES,
) -> tuple[WindowPoint, ...]:
    """Coverage of ``policy`` per ``window_size``-tick window of ``log``.

    Windows are aligned to the log's first timestamp; empty windows are
    skipped (they carry no coverage information).
    """
    if window_size < 1:
        raise CoverageError(f"window_size must be >= 1, got {window_size}")
    if len(log) == 0:
        raise AuditError("cannot compute a coverage series over an empty log")
    grounder = Grounder(vocabulary)
    covered_mask = grounder.range_of(policy).mask
    first, last = log.time_range()
    points: list[WindowPoint] = []
    start = first
    while start <= last:
        end = start + window_size
        window = log.window(start, end)
        if len(window):
            matched = 0
            distinct: set = set()
            distinct_covered: set = set()
            exceptions = 0
            for entry in window:
                rule = entry.to_rule(attributes)
                distinct.add(rule)
                hit = grounder.ground_mask(rule) & ~covered_mask == 0
                if hit:
                    matched += 1
                    distinct_covered.add(rule)
                if entry.is_exception and entry.is_allowed:
                    exceptions += 1
            allowed = sum(1 for entry in window if entry.is_allowed)
            points.append(
                WindowPoint(
                    start=start,
                    end=end,
                    entries=len(window),
                    entry_coverage=matched / len(window),
                    set_coverage=len(distinct_covered) / len(distinct),
                    exception_rate=exceptions / allowed if allowed else 0.0,
                )
            )
        start = end
    return tuple(points)


@dataclass(frozen=True, slots=True)
class AttributeCoverage:
    """Entry coverage of the slice of the log with one attribute value."""

    value: str
    entries: int
    matched: int

    @property
    def entry_coverage(self) -> float:
        return self.matched / self.entries


def coverage_by_attribute(
    policy: Policy,
    log: AuditLog,
    vocabulary: Vocabulary,
    attribute: str = "authorized",
    rule_attributes: tuple[str, ...] = RULE_ATTRIBUTES,
) -> tuple[AttributeCoverage, ...]:
    """Entry coverage of ``policy`` per distinct value of ``attribute``.

    Sorted worst-covered first, so the head of the result is where the
    policy most needs refinement.
    """
    if attribute not in AUDIT_ATTRIBUTES:
        raise AuditError(f"unknown audit attribute {attribute!r}")
    if len(log) == 0:
        raise AuditError("cannot break down coverage of an empty log")
    grounder = Grounder(vocabulary)
    covered_mask = grounder.range_of(policy).mask
    totals: dict[str, int] = defaultdict(int)
    matches: dict[str, int] = defaultdict(int)
    for entry in log:
        key = str(getattr(entry, attribute))
        totals[key] += 1
        rule = entry.to_rule(rule_attributes)
        if grounder.ground_mask(rule) & ~covered_mask == 0:
            matches[key] += 1
    slices = [
        AttributeCoverage(value=value, entries=count, matched=matches[value])
        for value, count in totals.items()
    ]
    slices.sort(key=lambda s: (s.entry_coverage, s.value))
    return tuple(slices)
